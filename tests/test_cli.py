"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestTree:
    def test_prints_metadata_tree(self, capsys):
        assert main(["tree"]) == 0
        out = capsys.readouterr().out
        assert "MINE SCORM Meta-data" in out
        assert "assessment" in out


class TestRules:
    def test_prints_all_four_examples(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for number in (1, 2, 3, 4):
            assert f"Example {number}" in out
            assert f"Rule {number}" in out

    def test_example_1_flags_option_c(self, capsys):
        main(["rules"])
        out = capsys.readouterr().out
        assert "option(s) C attracted nobody" in out


class TestSimulate:
    def test_prints_full_report(self, capsys):
        assert main(["simulate", "--students", "44", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Number representation" in out
        assert "Signal representation" in out
        assert "Two-way specification table" in out

    def test_too_few_students_rejected(self, capsys):
        assert main(["simulate", "--students", "4"]) == 2

    def test_custom_split(self, capsys):
        assert main(["simulate", "--students", "40", "--split", "0.3"]) == 0

    def test_vectorized_sim_engine(self, capsys):
        assert main(
            ["simulate", "--students", "44", "--sim-engine", "vectorized"]
        ) == 0
        out = capsys.readouterr().out
        assert "Number representation" in out
        assert "Signal representation" in out

    def test_auto_sim_engine_export(self, capsys):
        import json

        assert main(
            ["export", "--students", "20", "--sim-engine", "auto"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["scores"]) == 20


class TestPackageAndInspect:
    def test_package_then_inspect(self, tmp_path, capsys):
        out_path = str(tmp_path / "exam.zip")
        assert main(["package", "--out", out_path]) == 0
        first = capsys.readouterr().out
        assert "wrote" in first
        assert main(["inspect", out_path]) == 0
        second = capsys.readouterr().out
        assert "manifest: pkg-classroom-mid" in second
        assert "resources:" in second

    def test_inspect_missing_file(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "ghost.zip")]) == 2
        assert "cannot read package" in capsys.readouterr().err


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestExport:
    def test_json_export_parses(self, capsys):
        import json

        assert main(["export", "--students", "20", "--seed", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["title"] == "Classroom Midterm"
        assert len(payload["questions"]) == 10
        assert payload["time_analysis"]["time_limit_seconds"] == 2700

    def test_csv_export_has_paper_header(self, capsys):
        assert main(["export", "--students", "20", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("No,PH,PL,D=PH-PL,P=(PH+PL)/2,signal")
        assert len(out.strip().splitlines()) == 11

    def test_too_few_students_rejected(self):
        assert main(["export", "--students", "4"]) == 2


class TestProfile:
    def test_profile_prints_span_tree_to_stderr(self, capsys):
        assert main(["simulate", "--students", "20", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "Number representation" in captured.out  # report untouched
        err = captured.err
        assert "cli.simulate" in err
        assert "sim.generate" in err
        assert "analyze.columnar" in err
        assert "report.build" in err
        assert "sim.learners.generated" in err

    def test_profile_available_on_every_subcommand(self, capsys):
        assert main(["tree", "--profile"]) == 0
        assert "cli.tree" in capsys.readouterr().err
        assert main(["rules", "--profile"]) == 0
        assert "cli.rules" in capsys.readouterr().err

    def test_profile_path_writes_parseable_jsonl(self, tmp_path, capsys):
        from repro.obs import parse_jsonl

        path = tmp_path / "profile.jsonl"
        assert main(
            ["simulate", "--students", "20", "--profile", str(path)]
        ) == 0
        events = parse_jsonl(path.read_text(encoding="utf-8"))
        kinds = {event["type"] for event in events}
        assert "span" in kinds and "counters" in kinds
        (root,) = [e for e in events if e["type"] == "span"]
        assert root["name"] == "cli.simulate"
        child_names = {child["name"] for child in root["children"]}
        assert "sim.generate" in child_names
        assert "report.build" in child_names

    def test_profile_cleans_up_registry(self, capsys):
        from repro import obs

        assert main(["tree", "--profile"]) == 0
        capsys.readouterr()
        assert obs.enabled() is False
        assert obs.get_registry().sinks == []
        assert obs.snapshot()["spans"] == []

    def test_without_profile_nothing_recorded(self, capsys):
        from repro import obs

        assert main(["simulate", "--students", "20"]) == 0
        capsys.readouterr()
        assert obs.snapshot()["spans"] == []


class TestPaper:
    def test_paper_rendered(self, capsys):
        assert main(["paper", "--questions", "3"]) == 0
        out = capsys.readouterr().out
        assert "Classroom Midterm" in out
        assert "1. Question 1" in out
        assert "(A) alpha" in out

    def test_answer_key(self, capsys):
        assert main(["paper", "--questions", "3", "--key"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Answer key")
        assert "[q01]" in out


class TestServe:
    def test_serve_boots_restores_state_and_answers_http(self, tmp_path):
        import http.client
        import json
        import subprocess
        import sys

        from repro.lms.learners import Learner
        from repro.lms.lms import Lms
        from repro.lms.persistence import save_lms
        from repro.sim.workloads import classroom_exam

        # a pre-existing state file the server must restore at boot
        lms = Lms()
        lms.offer_exam(classroom_exam(3))
        lms.register_learner(Learner(learner_id="amy", name="Amy"))
        state = tmp_path / "lms.json"
        save_lms(lms, state)

        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--state", str(state),
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            line = process.stdout.readline().strip()
            assert line.startswith("serving on http://"), line
            host, port = line.rsplit("/", 1)[1].split(":")
            connection = http.client.HTTPConnection(
                host, int(port), timeout=10
            )
            try:
                connection.request("GET", "/exams")
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read()) == {
                    "exams": ["classroom-mid"]
                }
                connection.request("GET", "/learners/amy")
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["name"] == "Amy"
            finally:
                connection.close()
        finally:
            process.terminate()
            assert process.wait(timeout=10) is not None


class TestLoadgen:
    def test_loadgen_against_in_process_server(self, tmp_path, capsys):
        import json

        from repro.server.app import ExamServer

        out = tmp_path / "loadgen.json"
        with ExamServer() as server:
            code = main(
                [
                    "loadgen",
                    "--url", server.url,
                    "--students", "12",
                    "--questions", "4",
                    "--seed", "5",
                    "--workers", "3",
                    "--out", str(out),
                ]
            )
        assert code == 0
        printed = capsys.readouterr().out
        assert "12 learners x 4 questions" in printed
        assert "answer" in printed
        summary = json.loads(out.read_text())
        assert summary["learners"] == 12
        assert summary["errors"] == 0
        assert summary["routes"]["answer"]["count"] == 12 * 4
        assert summary["throughput_rps"] > 0

    def test_loadgen_url_required(self):
        with pytest.raises(SystemExit):
            main(["loadgen"])
