"""Tests for the top-level public API facade (import repro)."""

import subprocess
import sys

import pytest

import repro


class TestSurface:
    def test_all_is_sorted_and_complete(self):
        assert repro.__all__[0] == "__version__"
        body = repro.__all__[1:]
        assert body == sorted(body)
        assert set(body) == set(repro._EXPORTS)

    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_dir_covers_all_without_resolving(self):
        assert set(repro.__all__) <= set(dir(repro))

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no_such_name"):
            repro.no_such_name


class TestIdentity:
    """Facade names are the canonical objects, not copies."""

    def test_core_names(self):
        from repro.core.question_analysis import analyze_cohort

        assert repro.analyze_cohort is analyze_cohort

    def test_author_alias(self):
        from repro.exams.authoring import ExamBuilder

        assert repro.author is ExamBuilder
        assert repro.ExamBuilder is ExamBuilder

    def test_build_package_alias(self):
        from repro.scorm.package import package_exam

        assert repro.build_package is package_exam
        assert repro.package_exam is package_exam

    def test_obs_is_the_module(self):
        import repro.obs as obs_module

        assert repro.obs is obs_module

    def test_resolution_is_cached(self):
        first = repro.Lms
        assert "Lms" in vars(repro)  # cached into module globals
        assert repro.Lms is first


class TestLaziness:
    def test_import_repro_loads_no_layers(self):
        code = (
            "import sys, repro\n"
            "heavy = [m for m in sys.modules if m.startswith('repro.')]\n"
            "print(','.join(sorted(heavy)) or 'none')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == "none"

    def test_access_loads_only_the_needed_layer(self):
        code = (
            "import sys, repro\n"
            "repro.GroupSplit\n"
            "assert any(m == 'repro.core.grouping' for m in sys.modules)\n"
            "assert not any(m.startswith('repro.lms') for m in sys.modules)\n"
            "assert not any(m.startswith('repro.scorm') for m in sys.modules)\n"
            "print('ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == "ok"


class TestEndToEnd:
    def test_facade_only_pipeline(self):
        exam = repro.classroom_exam(5)
        data = repro.simulate_sitting_data(
            exam,
            repro.classroom_parameters(5),
            repro.make_population(12, seed=3),
            seed=4,
        )
        analysis = repro.analyze_cohort(
            data.responses, data.specs, split=repro.GroupSplit()
        )
        assert len(analysis.questions) == 5
        report = repro.build_report(exam.title, analysis)
        assert exam.title in report.render()

    def test_version_matches_pyproject(self):
        import re
        from pathlib import Path

        pyproject = (
            Path(__file__).resolve().parents[1] / "pyproject.toml"
        ).read_text(encoding="utf-8")
        declared = re.search(
            r'^version = "([^"]+)"', pyproject, re.MULTILINE
        ).group(1)
        assert repro.__version__ == declared
