"""Tests for the aggregated report (repro.core.report)."""

from repro.core.cognition import CognitionLevel
from repro.core.question_analysis import (
    ExamineeResponses,
    QuestionSpec,
    analyze_cohort,
)
from repro.core.report import build_report
from repro.core.spec_table import SpecificationTable, TaggedQuestion


def build_everything():
    specs = [
        QuestionSpec(options=("A", "B", "C", "D"), correct="A", subject="sorting"),
        QuestionSpec(options=("A", "B", "C", "D"), correct="B", subject="hashing"),
    ]
    responses = []
    for index in range(20):
        if index < 10:
            selections = ["A", "B"]
        else:
            selections = ["B", "C"]
        responses.append(ExamineeResponses.of(f"s{index:02d}", selections))
    cohort = analyze_cohort(responses, specs)
    flags = {
        response.examinee_id: [
            selection == spec.correct
            for selection, spec in zip(response.selections, specs)
        ]
        for response in responses
    }
    answer_times = [[30.0 * (i + 1) for i in range(2)] for _ in range(20)]
    table = SpecificationTable.from_questions(
        [
            TaggedQuestion(1, "sorting", CognitionLevel.KNOWLEDGE),
            TaggedQuestion(2, "hashing", CognitionLevel.APPLICATION),
        ],
        concepts=["sorting", "hashing", "graphs"],
    )
    return build_report(
        "Midterm",
        cohort,
        correct_flags=flags,
        answer_times=answer_times,
        time_limit_seconds=120.0,
        spec_table=table,
    )


class TestBuildReport:
    def test_all_components_present(self):
        report = build_everything()
        assert report.time_analysis is not None
        assert report.score_difficulty is not None
        assert report.spec_table is not None

    def test_minimal_report(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        responses = [
            ExamineeResponses.of(f"s{i}", ["A" if i < 4 else "B"])
            for i in range(8)
        ]
        cohort = analyze_cohort(responses, specs)
        report = build_report("Quiz", cohort)
        assert report.time_analysis is None
        assert report.score_difficulty is None
        text = report.render()
        assert "Number representation" in text


class TestRender:
    def test_sections_in_paper_order(self):
        text = build_everything().render()
        number_pos = text.index("Number representation")
        signal_pos = text.index("Signal representation")
        time_pos = text.index("Time vs answered")
        score_pos = text.index("Score vs difficulty")
        spec_pos = text.index("Two-way specification")
        assert number_pos < signal_pos < time_pos < score_pos < spec_pos

    def test_lost_concept_reported(self):
        text = build_everything().render()
        assert "Concept lost in the exam: graphs" in text

    def test_pyramid_violation_reported(self):
        # knowledge=1, application=1: comprehension(0) < application(1)
        text = build_everything().render()
        assert "Cognition-level ordering violated" in text

    def test_paint_present(self):
        assert "Distribution paint" in build_everything().render()

    def test_title_in_header(self):
        assert "Midterm" in build_everything().render()


class TestAnalysisRecords:
    def test_one_record_per_question(self):
        report = build_everything()
        records = report.analysis_records()
        assert [record.question_number for record in records] == [1, 2]

    def test_records_carry_signal_and_indices(self):
        report = build_everything()
        record = report.analysis_records()[0]
        assert record.signal in ("green", "yellow", "red")
        assert record.difficulty is not None
        assert record.discrimination is not None
        assert record.advice
