"""Tests for Bloom's taxonomy model (repro.core.cognition)."""

import pytest

from repro.core.cognition import (
    COGNITIVE_LEVELS,
    CognitionLevel,
    Domain,
    expected_pyramid,
)


class TestDomain:
    def test_three_domains(self):
        assert {domain.value for domain in Domain} == {
            "cognitive",
            "psychomotor",
            "affective",
        }

    def test_str(self):
        assert str(Domain.COGNITIVE) == "cognitive"


class TestCognitionLevel:
    def test_six_levels_in_order(self):
        assert [level.name for level in COGNITIVE_LEVELS] == [
            "KNOWLEDGE",
            "COMPREHENSION",
            "APPLICATION",
            "ANALYSIS",
            "SYNTHESIS",
            "EVALUATION",
        ]

    def test_letters_a_to_f(self):
        assert [level.letter for level in COGNITIVE_LEVELS] == list("ABCDEF")

    def test_ordering_knowledge_lowest(self):
        assert CognitionLevel.KNOWLEDGE < CognitionLevel.COMPREHENSION
        assert CognitionLevel.EVALUATION > CognitionLevel.SYNTHESIS
        assert max(COGNITIVE_LEVELS) is CognitionLevel.EVALUATION

    def test_sorting(self):
        shuffled = [
            CognitionLevel.EVALUATION,
            CognitionLevel.KNOWLEDGE,
            CognitionLevel.ANALYSIS,
        ]
        assert sorted(shuffled) == [
            CognitionLevel.KNOWLEDGE,
            CognitionLevel.ANALYSIS,
            CognitionLevel.EVALUATION,
        ]

    def test_label(self):
        assert CognitionLevel.COMPREHENSION.label == "Comprehension"
        assert str(CognitionLevel.SYNTHESIS) == "Synthesis"

    @pytest.mark.parametrize(
        "letter,expected",
        [
            ("A", CognitionLevel.KNOWLEDGE),
            ("b", CognitionLevel.COMPREHENSION),
            ("C", CognitionLevel.APPLICATION),
            ("d", CognitionLevel.ANALYSIS),
            ("E", CognitionLevel.SYNTHESIS),
            ("f", CognitionLevel.EVALUATION),
        ],
    )
    def test_from_letter(self, letter, expected):
        assert CognitionLevel.from_letter(letter) is expected

    @pytest.mark.parametrize("bad", ["G", "", "AA", "1x"])
    def test_from_letter_rejects(self, bad):
        with pytest.raises(ValueError):
            CognitionLevel.from_letter(bad)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("knowledge", CognitionLevel.KNOWLEDGE),
            ("Knowledge", CognitionLevel.KNOWLEDGE),
            ("EVALUATION", CognitionLevel.EVALUATION),
            ("a", CognitionLevel.KNOWLEDGE),
            ("F", CognitionLevel.EVALUATION),
            (3, CognitionLevel.APPLICATION),
            ("4", CognitionLevel.ANALYSIS),
            (CognitionLevel.SYNTHESIS, CognitionLevel.SYNTHESIS),
        ],
    )
    def test_parse(self, text, expected):
        assert CognitionLevel.parse(text) is expected

    @pytest.mark.parametrize("bad", ["", "  ", "wisdom", "7", 0, 7])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            CognitionLevel.parse(bad)


class TestExpectedPyramid:
    def test_monotone_counts_pass(self):
        assert expected_pyramid([10, 8, 6, 4, 2, 1]) == []

    def test_equal_counts_pass(self):
        assert expected_pyramid([3, 3, 3, 3, 3, 3]) == []

    def test_single_violation_located(self):
        # comprehension (index 1) has more than knowledge (index 0)
        assert expected_pyramid([2, 5, 4, 3, 1, 0]) == [0]

    def test_multiple_violations(self):
        assert expected_pyramid([1, 2, 1, 2, 1, 2]) == [0, 2, 4]

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            expected_pyramid([1, 2, 3])
