"""Tests for the psychometric indices (repro.core.indices)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import AnalysisError
from repro.core.indices import (
    DistractionReport,
    difficulty_index,
    discrimination_index,
    distraction_analysis,
    instructional_sensitivity_index,
    proportion_correct,
    split_difficulty_index,
)


class TestDifficultyIndex:
    def test_paper_worked_example(self):
        """§3.3: R=800, N=1000 -> P = 0.8 (80%)."""
        assert difficulty_index(800, 1000) == pytest.approx(0.8)

    def test_all_correct(self):
        assert difficulty_index(10, 10) == 1.0

    def test_none_correct(self):
        assert difficulty_index(0, 10) == 0.0

    def test_zero_total_rejected(self):
        with pytest.raises(AnalysisError):
            difficulty_index(0, 0)

    def test_negative_right_rejected(self):
        with pytest.raises(AnalysisError):
            difficulty_index(-1, 10)

    def test_right_above_total_rejected(self):
        with pytest.raises(AnalysisError):
            difficulty_index(11, 10)

    @given(
        total=st.integers(min_value=1, max_value=10_000),
        data=st.data(),
    )
    def test_always_a_proportion(self, total, data):
        right = data.draw(st.integers(min_value=0, max_value=total))
        assert 0.0 <= difficulty_index(right, total) <= 1.0


class TestSplitDifficultyIndex:
    def test_paper_question_2(self):
        """§4.1.2 worked example no.2: PH=0.91, PL=0.36 -> P = 0.635."""
        assert split_difficulty_index(0.91, 0.36) == pytest.approx(0.635)

    def test_paper_question_6(self):
        """Worked example no.6: PH=0.45, PL=0.36 -> P = 0.405 (≈0.41)."""
        assert split_difficulty_index(0.45, 0.36) == pytest.approx(0.405)

    def test_symmetric(self):
        assert split_difficulty_index(0.2, 0.8) == split_difficulty_index(0.8, 0.2)

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(AnalysisError):
            split_difficulty_index(bad, 0.5)
        with pytest.raises(AnalysisError):
            split_difficulty_index(0.5, bad)

    @given(
        p_high=st.floats(min_value=0, max_value=1),
        p_low=st.floats(min_value=0, max_value=1),
    )
    def test_between_the_two_inputs(self, p_high, p_low):
        p = split_difficulty_index(p_high, p_low)
        assert min(p_high, p_low) <= p <= max(p_high, p_low)


class TestDiscriminationIndex:
    def test_paper_question_2(self):
        """Worked example no.2: D = 0.91 - 0.36 = 0.55."""
        assert discrimination_index(0.91, 0.36) == pytest.approx(0.55)

    def test_paper_question_6(self):
        """Worked example no.6: D = 0.45 - 0.36 = 0.09."""
        assert discrimination_index(0.45, 0.36) == pytest.approx(0.09)

    def test_perfect_discrimination(self):
        assert discrimination_index(1.0, 0.0) == 1.0

    def test_negative_discrimination(self):
        assert discrimination_index(0.2, 0.9) == pytest.approx(-0.7)

    @given(
        p_high=st.floats(min_value=0, max_value=1),
        p_low=st.floats(min_value=0, max_value=1),
    )
    def test_bounded(self, p_high, p_low):
        assert -1.0 <= discrimination_index(p_high, p_low) <= 1.0


class TestInstructionalSensitivity:
    def test_teaching_gain(self):
        assert instructional_sensitivity_index(0.3, 0.8) == pytest.approx(0.5)

    def test_no_gain(self):
        assert instructional_sensitivity_index(0.5, 0.5) == 0.0

    def test_negative_when_post_is_worse(self):
        assert instructional_sensitivity_index(0.8, 0.3) == pytest.approx(-0.5)

    def test_rejects_non_proportions(self):
        with pytest.raises(AnalysisError):
            instructional_sensitivity_index(1.5, 0.5)


class TestProportionCorrect:
    def test_basic(self):
        assert proportion_correct([True, True, False, False]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            proportion_correct([])


class TestDistractionAnalysis:
    def test_dead_distractor_found(self):
        """Paper Example 1: option C attracts nobody."""
        report = distraction_analysis(
            high_counts={"A": 12, "B": 2, "C": 0, "D": 3, "E": 3},
            low_counts={"A": 6, "B": 4, "C": 0, "D": 5, "E": 5},
            correct_option="A",
        )
        assert report.dead_options == ("C",)

    def test_correct_option_never_dead(self):
        report = distraction_analysis(
            high_counts={"A": 0, "B": 5},
            low_counts={"A": 0, "B": 5},
            correct_option="A",
        )
        assert "A" not in report.dead_options

    def test_inverted_distractor_found(self):
        """Paper Example 2: wrong option E attracts the high group more."""
        report = distraction_analysis(
            high_counts={"A": 1, "B": 2, "C": 10, "D": 0, "E": 7},
            low_counts={"A": 2, "B": 2, "C": 13, "D": 1, "E": 2},
            correct_option="C",
        )
        assert "E" in report.inverted_options

    def test_selection_rates_sum_to_one(self):
        report = distraction_analysis(
            high_counts={"A": 3, "B": 7},
            low_counts={"A": 6, "B": 4},
            correct_option="A",
        )
        assert sum(report.selection_rates.values()) == pytest.approx(1.0)
        assert report.selection_rates["A"] == pytest.approx(9 / 20)

    def test_explicit_total_counts_used(self):
        report = distraction_analysis(
            high_counts={"A": 1, "B": 1},
            low_counts={"A": 1, "B": 1},
            correct_option="A",
            total_counts={"A": 30, "B": 10},
        )
        assert report.selection_rates["A"] == pytest.approx(0.75)

    def test_mismatched_option_sets_rejected(self):
        with pytest.raises(AnalysisError):
            distraction_analysis(
                high_counts={"A": 1},
                low_counts={"B": 1},
                correct_option="A",
            )

    def test_unknown_correct_option_rejected(self):
        with pytest.raises(AnalysisError):
            distraction_analysis(
                high_counts={"A": 1, "B": 1},
                low_counts={"A": 1, "B": 1},
                correct_option="Z",
            )

    def test_describe_healthy(self):
        report = DistractionReport(
            correct_option="A",
            selection_rates={"A": 0.6, "B": 0.4},
            dead_options=(),
            inverted_options=(),
        )
        assert report.describe() == "distractors functioning"

    def test_describe_flags_problems(self):
        report = DistractionReport(
            correct_option="A",
            selection_rates={},
            dead_options=("C",),
            inverted_options=("E",),
        )
        text = report.describe()
        assert "C" in text and "E" in text
