"""Tests for the §4.1 single-question analysis pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AnalysisError, EmptyCohortError
from repro.core.grouping import GroupSplit
from repro.core.question_analysis import (
    ExamineeResponses,
    QuestionSpec,
    analyze_cohort,
    analyze_matrix,
    number_representation_rows,
    render_number_representation,
)
from repro.core.rules import OptionMatrix
from repro.core.signals import Signal


def paper_question_2_matrix():
    """§4.1.2 worked example, question no.2 (class 44, groups of 11)."""
    return OptionMatrix.from_rows([0, 0, 10, 1], [3, 2, 4, 2], correct="C")


def paper_question_6_matrix():
    """§4.1.2 worked example, question no.6."""
    return OptionMatrix.from_rows([1, 1, 4, 5], [0, 2, 4, 4], correct="D")


class TestPaperWorkedExampleQuestion2:
    def setup_method(self):
        self.analysis = analyze_matrix(
            paper_question_2_matrix(), high_size=11, low_size=11, number=2
        )

    def test_ph(self):
        assert self.analysis.p_high == pytest.approx(10 / 11, abs=1e-9)

    def test_pl(self):
        assert self.analysis.p_low == pytest.approx(4 / 11, abs=1e-9)

    def test_discrimination(self):
        # paper rounds: 0.91 - 0.36 = 0.55; exact: 6/11 = 0.5454...
        assert self.analysis.discrimination == pytest.approx(6 / 11, abs=1e-9)
        assert self.analysis.discrimination > 0.3

    def test_signal_green(self):
        assert self.analysis.signal is Signal.GREEN

    def test_difficulty(self):
        # paper: (0.91 + 0.36) / 2 = 0.635; exact: 7/11 = 0.6363...
        assert self.analysis.difficulty == pytest.approx(7 / 11, abs=1e-9)


class TestPaperWorkedExampleQuestion6:
    def setup_method(self):
        self.analysis = analyze_matrix(
            paper_question_6_matrix(), high_size=11, low_size=11, number=6
        )

    def test_discrimination_low(self):
        # paper: 0.45 - 0.36 = 0.09; exact: 1/11 = 0.0909...
        assert self.analysis.discrimination == pytest.approx(1 / 11, abs=1e-9)

    def test_signal_red(self):
        assert self.analysis.signal is Signal.RED

    def test_rule_1_flags_option_a(self):
        assert self.analysis.rules.rule_fired(1)
        match = next(m for m in self.analysis.rules.matches if m.rule == 1)
        assert match.options == ("A",)

    def test_difficulty(self):
        # paper: (0.45 + 0.36) / 2 = 0.405 (prints 0.41); exact 9/22
        assert self.analysis.difficulty == pytest.approx(9 / 22, abs=1e-9)

    def test_advice_mentions_elimination(self):
        assert "Eliminate" in self.analysis.advice.headline


class TestAnalyzeMatrixValidation:
    def test_zero_group_size_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_matrix(paper_question_2_matrix(), high_size=0, low_size=11)

    def test_negative_group_size_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_matrix(paper_question_2_matrix(), high_size=11, low_size=-1)


def make_cohort(n=20, questions=2):
    """A deterministic synthetic cohort: the top half answers everything
    correctly, the bottom half always picks option B."""
    specs = [
        QuestionSpec(options=("A", "B", "C", "D"), correct="A")
        for _ in range(questions)
    ]
    responses = []
    for index in range(n):
        choice = "A" if index < n // 2 else "B"
        responses.append(
            ExamineeResponses.of(f"s{index:02d}", [choice] * questions)
        )
    return responses, specs


class TestAnalyzeCohort:
    def test_perfectly_discriminating_question(self):
        responses, specs = make_cohort()
        result = analyze_cohort(responses, specs)
        for analysis in result.questions:
            assert analysis.p_high == 1.0
            assert analysis.p_low == 0.0
            assert analysis.discrimination == 1.0
            assert analysis.signal is Signal.GREEN

    def test_group_sizes_follow_split(self):
        responses, specs = make_cohort(n=40)
        result = analyze_cohort(responses, specs)
        assert len(result.high_group) == 10
        assert len(result.low_group) == 10

    def test_scores_recorded_for_everyone(self):
        responses, specs = make_cohort(n=20, questions=3)
        result = analyze_cohort(responses, specs)
        assert len(result.scores) == 20
        assert set(result.scores.values()) == {0, 3}

    def test_custom_split_fraction(self):
        responses, specs = make_cohort(n=40)
        result = analyze_cohort(responses, specs, split=GroupSplit(fraction=0.5))
        assert len(result.high_group) == 20

    def test_skipped_answers_allowed(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        responses = [
            ExamineeResponses.of("s1", ["A"]),
            ExamineeResponses.of("s2", ["A"]),
            ExamineeResponses.of("s3", [None]),
            ExamineeResponses.of("s4", [None]),
            ExamineeResponses.of("s5", ["B"]),
            ExamineeResponses.of("s6", ["B"]),
            ExamineeResponses.of("s7", ["B"]),
            ExamineeResponses.of("s8", ["A"]),
        ]
        result = analyze_cohort(responses, specs)
        # the matrix only counts actual selections
        total = result.questions[0].matrix.high_sum + result.questions[0].matrix.low_sum
        assert total <= 4

    def test_unknown_option_rejected(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        responses = [ExamineeResponses.of(f"s{i}", ["Z"]) for i in range(8)]
        with pytest.raises(AnalysisError):
            analyze_cohort(responses, specs)

    def test_empty_cohort_rejected(self):
        with pytest.raises(EmptyCohortError):
            analyze_cohort([], [QuestionSpec(options=("A",), correct="A")])

    def test_no_questions_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_cohort([ExamineeResponses.of("s1", [])], [])

    def test_ragged_responses_rejected(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")] * 2
        responses = [ExamineeResponses.of("s1", ["A"])] * 8
        with pytest.raises(AnalysisError):
            analyze_cohort(responses, specs)

    @pytest.mark.parametrize("engine", ["columnar", "reference"])
    def test_ragged_responses_error_names_the_examinee(self, engine):
        """Regression: a selections/answer-key length mismatch must raise a
        clear AnalysisError naming the examinee and both lengths — never
        silently mis-group."""
        specs = [QuestionSpec(options=("A", "B"), correct="A")] * 3
        responses = [
            ExamineeResponses.of(f"s{i}", ["A", "B", "A"]) for i in range(7)
        ] + [ExamineeResponses.of("truncated", ["A", "B"])]
        with pytest.raises(
            AnalysisError,
            match=r"'truncated' answered 2 questions; exam has 3",
        ):
            analyze_cohort(responses, specs, engine=engine)

    @pytest.mark.parametrize("engine", ["columnar", "reference"])
    def test_overlong_responses_rejected(self, engine):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        responses = [
            ExamineeResponses.of(f"s{i}", ["A"]) for i in range(7)
        ] + [ExamineeResponses.of("padded", ["A", "B"])]
        with pytest.raises(
            AnalysisError, match=r"'padded' answered 2 questions; exam has 1"
        ):
            analyze_cohort(responses, specs, engine=engine)

    @pytest.mark.parametrize("engine", ["columnar", "reference"])
    def test_duplicate_examinee_ids_rejected(self, engine):
        """Regression: duplicate ids used to mis-group silently (the score
        table kept one sitting while the matrices counted both)."""
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        responses = [
            ExamineeResponses.of(f"s{i}", ["A"]) for i in range(8)
        ] + [ExamineeResponses.of("s3", ["B"])]
        with pytest.raises(AnalysisError, match="duplicate examinee id 's3'"):
            analyze_cohort(responses, specs, engine=engine)

    def test_question_lookup(self):
        responses, specs = make_cohort(questions=3)
        result = analyze_cohort(responses, specs)
        assert result.question(2).number == 2
        with pytest.raises(AnalysisError):
            result.question(99)

    def test_high_and_low_groups_disjoint(self):
        responses, specs = make_cohort(n=24)
        result = analyze_cohort(responses, specs)
        assert not set(result.high_group) & set(result.low_group)


class TestNumberRepresentation:
    def test_rows_shape(self):
        responses, specs = make_cohort(questions=3)
        result = analyze_cohort(responses, specs)
        rows = number_representation_rows(result.questions)
        assert len(rows) == 3
        number, ph, pl, d, p = rows[0]
        assert number == 1
        assert d == pytest.approx(ph - pl)
        assert p == pytest.approx((ph + pl) / 2)

    def test_render_contains_header(self):
        responses, specs = make_cohort()
        result = analyze_cohort(responses, specs)
        text = render_number_representation(result.questions)
        assert "D=PH-PL" in text
        assert "P=(PH+PL)/2" in text
        assert "1.00" in text  # PH of the perfect question

    def test_render_empty(self):
        text = render_number_representation([])
        assert "No" in text


class TestCohortProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=60),
        questions=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_random_cohorts_produce_valid_indices(self, n, questions, seed):
        import random

        rng = random.Random(seed)
        options = ("A", "B", "C", "D")
        specs = [
            QuestionSpec(options=options, correct=rng.choice(options))
            for _ in range(questions)
        ]
        responses = [
            ExamineeResponses.of(
                f"s{i}", [rng.choice(options) for _ in range(questions)]
            )
            for i in range(n)
        ]
        result = analyze_cohort(responses, specs)
        for analysis in result.questions:
            assert 0.0 <= analysis.p_high <= 1.0
            assert 0.0 <= analysis.p_low <= 1.0
            assert -1.0 <= analysis.discrimination <= 1.0
            assert 0.0 <= analysis.difficulty <= 1.0
            assert analysis.signal in set(Signal)
