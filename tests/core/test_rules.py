"""Tests for the four diagnostic rules (repro.core.rules).

The four example matrices come verbatim from paper §4.1.2.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import AnalysisError
from repro.core.rules import (
    DEFAULT_SPREAD_THRESHOLD,
    STATUSES_BY_RULE,
    OptionMatrix,
    Status,
    evaluate_rules,
)


def matrix(high, low, correct="A"):
    return OptionMatrix.from_rows(high, low, correct=correct)


class TestOptionMatrix:
    def test_from_rows_default_labels(self):
        m = matrix([1, 2, 3], [4, 5, 6])
        assert m.options == ("A", "B", "C")
        assert m.high["C"] == 3
        assert m.low["A"] == 4

    def test_aggregates(self):
        m = matrix([5, 1, 0, 2, 4], [3, 3, 3, 3, 3])
        assert m.high_sum == 12
        assert m.low_sum == 15
        assert m.high_max == 5
        assert m.high_min == 0
        assert m.low_max == m.low_min == 3

    def test_proportions_use_group_size(self):
        m = matrix([10, 1, 0, 0], [4, 3, 2, 2], correct="A")
        assert m.proportion_high_correct(11) == pytest.approx(10 / 11)
        assert m.proportion_low_correct(11) == pytest.approx(4 / 11)

    def test_proportions_default_to_column_sums(self):
        m = matrix([10, 10], [5, 15], correct="A")
        assert m.proportion_high_correct() == pytest.approx(0.5)
        assert m.proportion_low_correct() == pytest.approx(0.25)

    def test_render_contains_counts(self):
        text = matrix([12, 2, 0, 3, 3], [6, 4, 0, 5, 5]).render()
        assert "Option A" in text
        assert "High Score Group" in text
        assert "12" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            OptionMatrix.from_rows([1, 2], [1, 2, 3], correct="A")

    def test_negative_count_rejected(self):
        with pytest.raises(AnalysisError):
            matrix([1, -2], [0, 0])

    def test_unknown_correct_rejected(self):
        with pytest.raises(AnalysisError):
            matrix([1, 2], [3, 4], correct="Z")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(AnalysisError):
            OptionMatrix.from_rows([1, 2], [3, 4], correct="A", options=["A", "A"])

    def test_missing_option_in_counts_rejected(self):
        with pytest.raises(AnalysisError):
            OptionMatrix(
                options=("A", "B"),
                high={"A": 1},
                low={"A": 1, "B": 1},
                correct="A",
            )

    def test_empty_options_rejected(self):
        with pytest.raises(AnalysisError):
            OptionMatrix(options=(), high={}, low={}, correct="A")


class TestPaperExample1:
    """Rule 1: option C has LC = 0 -> the option's allure is low."""

    def setup_method(self):
        self.outcome = evaluate_rules(
            matrix([12, 2, 0, 3, 3], [6, 4, 0, 5, 5], correct="A")
        )

    def test_rule_1_fires(self):
        assert self.outcome.rule_fired(1)

    def test_dead_option_is_c(self):
        match = next(m for m in self.outcome.matches if m.rule == 1)
        assert match.options == ("C",)

    def test_status_is_low_allure(self):
        match = next(m for m in self.outcome.matches if m.rule == 1)
        assert match.statuses == (Status.LOW_ALLURE,)

    def test_rules_3_4_do_not_fire(self):
        # low counts 6,4,0,5,5: spread 6 > 20*0.2=4
        assert not self.outcome.rule_fired(3)
        assert not self.outcome.rule_fired(4)


class TestPaperExample2:
    """Rule 2: correct option C has HC < LC; wrong option E has HE > LE."""

    def setup_method(self):
        self.outcome = evaluate_rules(
            matrix([1, 2, 10, 0, 7], [2, 2, 13, 1, 2], correct="C")
        )

    def test_rule_2_fires(self):
        assert self.outcome.rule_fired(2)

    def test_both_problem_options_flagged(self):
        match = next(m for m in self.outcome.matches if m.rule == 2)
        assert set(match.options) == {"C", "E"}

    def test_statuses_match_table_2(self):
        match = next(m for m in self.outcome.matches if m.rule == 2)
        assert set(match.statuses) == {
            Status.OPTION_NOT_CLEAR,
            Status.CARELESS,
            Status.NOT_ONLY_ONE_ANSWER,
        }


class TestPaperExample3:
    """Rule 3: low group spread |5-2|=3 <= 20*20%=4 -> low group lacks
    concept; high group is uneven so Rule 4 must not fire."""

    def setup_method(self):
        self.outcome = evaluate_rules(
            matrix([15, 2, 2, 0, 1], [5, 4, 5, 4, 2], correct="A")
        )

    def test_rule_3_fires(self):
        assert self.outcome.rule_fired(3)

    def test_rule_4_does_not_fire(self):
        # high spread |15-0| = 15 > 20*20% = 4
        assert not self.outcome.rule_fired(4)

    def test_status(self):
        match = next(m for m in self.outcome.matches if m.rule == 3)
        assert match.statuses == (Status.LOW_GROUP_LACKS_CONCEPT,)


class TestPaperExample4:
    """Rule 4: both spreads small -> both groups lack the concept."""

    def setup_method(self):
        self.outcome = evaluate_rules(
            matrix([4, 4, 4, 2, 6], [5, 4, 5, 4, 2], correct="A")
        )

    def test_rule_3_fires(self):
        assert self.outcome.rule_fired(3)

    def test_rule_4_fires(self):
        # |LM-Lm| = 3 <= 4 and |HM-Hm| = 4 <= 4
        assert self.outcome.rule_fired(4)

    def test_rule_4_statuses(self):
        match = next(m for m in self.outcome.matches if m.rule == 4)
        assert set(match.statuses) == {
            Status.LOW_GROUP_LACKS_CONCEPT,
            Status.HIGH_GROUP_LACKS_CONCEPT,
        }


class TestPaperQuestion6Rule1:
    """§4.1.2's second worked example: 'Rule1: ... The allure of option A
    is low' — LA = 0 on question no. 6."""

    def test_rule_1_flags_option_a(self):
        outcome = evaluate_rules(
            matrix([1, 1, 4, 5], [0, 2, 4, 4], correct="D")
        )
        assert outcome.rule_fired(1)
        match = next(m for m in outcome.matches if m.rule == 1)
        assert match.options == ("A",)


class TestRuleMechanics:
    def test_clean_question_fires_nothing(self):
        # good discrimination, every option attracts some low-group takers,
        # low group clearly prefers a wrong answer (uneven spread)
        outcome = evaluate_rules(matrix([15, 2, 2, 1], [2, 10, 4, 4], correct="A"))
        assert outcome.matches == []
        assert outcome.statuses == ()

    def test_rule_2_correct_option_only(self):
        outcome = evaluate_rules(matrix([3, 9], [8, 1], correct="A"))
        match = next(m for m in outcome.matches if m.rule == 2)
        assert set(match.options) == {"A", "B"}

    def test_rule_2_equality_does_not_fire(self):
        # HN == LN everywhere -> no rule 2 (strict inequalities in the paper)
        outcome = evaluate_rules(matrix([9, 5], [9, 5], correct="A"))
        assert not outcome.rule_fired(2)

    def test_rule_3_boundary_is_inclusive(self):
        # |LM-Lm| == LS*threshold exactly -> fires (paper: <=)
        # low = [6, 2, 4, 4, 4]: LM=6, Lm=2, LS=20, |6-2|=4 == 4
        outcome = evaluate_rules(
            matrix([20, 0, 0, 0, 0], [6, 2, 4, 4, 4], correct="A")
        )
        assert outcome.rule_fired(3)

    def test_rule_3_just_over_boundary_does_not_fire(self):
        # low = [7, 2, 4, 4, 3]: LM=7, Lm=2, LS=20, |7-2|=5 > 4
        outcome = evaluate_rules(
            matrix([20, 0, 0, 0, 0], [7, 2, 4, 4, 3], correct="A")
        )
        assert not outcome.rule_fired(3)

    def test_rule_4_requires_rule_3(self):
        # high group even but low group uneven -> neither 3 nor 4
        outcome = evaluate_rules(matrix([4, 4, 4, 4], [15, 1, 0, 0], correct="A"))
        assert not outcome.rule_fired(4)

    def test_custom_spread_threshold(self):
        m = matrix([20, 0, 0, 0, 0], [7, 2, 4, 4, 3], correct="A")
        assert not evaluate_rules(m, spread_threshold=0.20).rule_fired(3)
        assert evaluate_rules(m, spread_threshold=0.30).rule_fired(3)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.2, 1.5])
    def test_bad_threshold_rejected(self, bad):
        with pytest.raises(AnalysisError):
            evaluate_rules(matrix([1, 1], [1, 1]), spread_threshold=bad)

    def test_all_zero_low_group_fires_rule_1_not_rule_3(self):
        outcome = evaluate_rules(matrix([5, 5], [0, 0], correct="A"))
        assert outcome.rule_fired(1)
        # LS == 0: the evenness predicate is vacuous, not "lacking concept"
        assert not outcome.rule_fired(3)

    def test_matches_sorted_by_rule_number(self):
        outcome = evaluate_rules(matrix([4, 4, 4, 4, 4], [4, 4, 4, 4, 0]))
        assert list(outcome.fired_rules) == sorted(outcome.fired_rules)

    def test_statuses_deduplicated(self):
        outcome = evaluate_rules(matrix([4, 4, 4, 4, 4], [4, 4, 4, 4, 4]))
        statuses = outcome.statuses
        assert len(statuses) == len(set(statuses))

    def test_table_2_status_map(self):
        assert STATUSES_BY_RULE[1] == (Status.LOW_ALLURE,)
        assert len(STATUSES_BY_RULE[2]) == 3
        assert STATUSES_BY_RULE[4] == (
            Status.LOW_GROUP_LACKS_CONCEPT,
            Status.HIGH_GROUP_LACKS_CONCEPT,
        )

    def test_default_threshold_is_20_percent(self):
        assert DEFAULT_SPREAD_THRESHOLD == 0.20


class TestRuleProperties:
    @given(
        high=st.lists(st.integers(min_value=0, max_value=30), min_size=5, max_size=5),
        low=st.lists(st.integers(min_value=0, max_value=30), min_size=5, max_size=5),
    )
    def test_rule_4_implies_rule_3(self, high, low):
        outcome = evaluate_rules(matrix(high, low))
        if outcome.rule_fired(4):
            assert outcome.rule_fired(3)

    @given(
        high=st.lists(st.integers(min_value=0, max_value=30), min_size=5, max_size=5),
        low=st.lists(st.integers(min_value=1, max_value=30), min_size=5, max_size=5),
    )
    def test_rule_1_iff_some_low_zero(self, high, low):
        outcome = evaluate_rules(matrix(high, low))
        assert not outcome.rule_fired(1)  # all low counts positive

    @given(
        high=st.lists(st.integers(min_value=0, max_value=30), min_size=4, max_size=6),
        low=st.lists(st.integers(min_value=0, max_value=30), min_size=4, max_size=6),
    )
    def test_evaluation_is_deterministic(self, high, low):
        size = min(len(high), len(low))
        m = matrix(high[:size], low[:size])
        first = evaluate_rules(m)
        second = evaluate_rules(m)
        assert first.fired_rules == second.fired_rules
        assert first.statuses == second.statuses
