"""Tests for report export (repro.core.export)."""

import csv
import io
import json

from repro.core.cognition import CognitionLevel
from repro.core.export import (
    number_representation_csv,
    report_to_dict,
    report_to_json,
)
from repro.core.question_analysis import (
    ExamineeResponses,
    QuestionSpec,
    analyze_cohort,
)
from repro.core.report import build_report
from repro.core.spec_table import SpecificationTable, TaggedQuestion


def full_report():
    specs = [
        QuestionSpec(options=("A", "B", "C"), correct="A", subject="s1"),
        QuestionSpec(options=("A", "B", "C"), correct="B", subject="s2"),
    ]
    responses = [
        ExamineeResponses.of(
            f"x{i}", ["A", "B"] if i < 8 else ["B", "C"]
        )
        for i in range(16)
    ]
    cohort = analyze_cohort(responses, specs)
    flags = {
        r.examinee_id: [s == spec.correct for s, spec in zip(r.selections, specs)]
        for r in responses
    }
    times = [[15.0, 40.0]] * 16
    table = SpecificationTable.from_questions(
        [
            TaggedQuestion(1, "s1", CognitionLevel.KNOWLEDGE),
            TaggedQuestion(2, "s2", CognitionLevel.EVALUATION),
        ]
    )
    return build_report(
        "Export test",
        cohort,
        correct_flags=flags,
        answer_times=times,
        time_limit_seconds=120.0,
        spec_table=table,
    )


class TestReportToDict:
    def test_questions_serialized(self):
        payload = report_to_dict(full_report())
        assert payload["title"] == "Export test"
        assert len(payload["questions"]) == 2
        question = payload["questions"][0]
        assert question["number"] == 1
        assert question["signal"] in ("green", "yellow", "red")
        assert question["option_matrix"]["correct"] == "A"
        assert isinstance(question["rules_fired"], list)

    def test_optional_sections_present(self):
        payload = report_to_dict(full_report())
        assert payload["time_analysis"]["time_enough"] is True
        assert payload["score_difficulty"]
        assert payload["specification_table"]["concepts"] == ["s1", "s2"]

    def test_pyramid_violations_serialized(self):
        payload = report_to_dict(full_report())
        violations = payload["specification_table"]["pyramid_violations"]
        assert ["synthesis", "evaluation"] in violations

    def test_minimal_report_omits_optional_sections(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        responses = [
            ExamineeResponses.of(f"x{i}", ["A" if i < 4 else "B"])
            for i in range(8)
        ]
        report = build_report("Mini", analyze_cohort(responses, specs))
        payload = report_to_dict(report)
        assert "time_analysis" not in payload
        assert "score_difficulty" not in payload
        assert "specification_table" not in payload


class TestReportToJson:
    def test_round_trips_through_json(self):
        text = report_to_json(full_report())
        payload = json.loads(text)
        assert payload["title"] == "Export test"

    def test_distraction_included(self):
        payload = json.loads(report_to_json(full_report()))
        assert payload["questions"][0]["distraction"] is not None


class TestCsv:
    def test_header_matches_paper(self):
        text = number_representation_csv(full_report())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["No", "PH", "PL", "D=PH-PL", "P=(PH+PL)/2", "signal"]
        assert len(rows) == 3

    def test_identities_hold_in_csv(self):
        text = number_representation_csv(full_report())
        rows = list(csv.reader(io.StringIO(text)))[1:]
        for row in rows:
            ph, pl, d, p = map(float, row[1:5])
            assert abs(d - (ph - pl)) < 1e-6
            assert abs(p - (ph + pl) / 2) < 1e-6
