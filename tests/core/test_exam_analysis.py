"""Tests for the whole-test analyses (repro.core.exam_analysis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AnalysisError, EmptyCohortError
from repro.core.exam_analysis import (
    average_time,
    score_vs_difficulty,
    time_limit_adequacy,
    time_vs_answered,
)
from repro.core.question_analysis import (
    ExamineeResponses,
    QuestionSpec,
    analyze_cohort,
)


class TestTimeVsAnswered:
    def test_series_is_cumulative(self):
        # one examinee answering at 10, 20, 30 seconds
        analysis = time_vs_answered([[10.0, 20.0, 30.0]], samples=7)
        answered = [point.answered for point in analysis.series]
        assert answered == sorted(answered)
        assert answered[0] == 0.0
        assert answered[-1] == 3.0

    def test_series_averages_across_examinees(self):
        fast = [1.0, 2.0, 3.0]
        slow = [10.0, 20.0, 30.0]
        analysis = time_vs_answered([fast, slow], samples=31)
        final = analysis.series[-1]
        assert final.answered == 3.0
        midpoint = next(
            point for point in analysis.series if point.time_seconds >= 5.0
        )
        assert midpoint.answered == pytest.approx(1.5)

    def test_time_enough_verdict_positive(self):
        times = [[5.0, 10.0] for _ in range(10)]
        analysis = time_vs_answered(times, time_limit_seconds=20.0)
        assert analysis.time_enough is True
        assert analysis.fraction_finished_in_limit == 1.0

    def test_time_not_enough_verdict(self):
        times = [[5.0, 30.0] for _ in range(10)]
        analysis = time_vs_answered(
            times, time_limit_seconds=20.0, adequacy_threshold=0.9
        )
        assert analysis.time_enough is False
        assert analysis.fraction_finished_in_limit == 0.0

    def test_threshold_boundary(self):
        times = [[5.0]] * 9 + [[50.0]]
        analysis = time_vs_answered(
            times, time_limit_seconds=20.0, adequacy_threshold=0.9
        )
        assert analysis.fraction_finished_in_limit == pytest.approx(0.9)
        assert analysis.time_enough is True

    def test_no_limit_gives_no_verdict(self):
        analysis = time_vs_answered([[1.0]])
        assert analysis.time_enough is None
        assert analysis.fraction_finished_in_limit is None

    def test_empty_cohort_rejected(self):
        with pytest.raises(EmptyCohortError):
            time_vs_answered([])

    def test_negative_times_rejected(self):
        with pytest.raises(AnalysisError):
            time_vs_answered([[-1.0]])

    def test_too_few_samples_rejected(self):
        with pytest.raises(AnalysisError):
            time_vs_answered([[1.0]], samples=1)

    def test_bad_threshold_rejected(self):
        with pytest.raises(AnalysisError):
            time_vs_answered([[1.0]], adequacy_threshold=0.0)

    def test_examinee_with_no_answers(self):
        analysis = time_vs_answered([[], [5.0]], time_limit_seconds=10.0)
        # the empty sitting finished (vacuously) within the limit
        assert analysis.fraction_finished_in_limit == 1.0

    @settings(max_examples=25, deadline=None)
    @given(
        times=st.lists(
            st.lists(
                st.floats(min_value=0, max_value=1000, allow_nan=False),
                max_size=20,
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_series_monotone_for_any_cohort(self, times):
        analysis = time_vs_answered(times)
        answered = [point.answered for point in analysis.series]
        assert all(a <= b + 1e-9 for a, b in zip(answered, answered[1:]))


def cohort_with_mixed_difficulty():
    """20 examinees, 3 questions: Q1 easy (most get it), Q3 hard."""
    specs = [QuestionSpec(options=("A", "B"), correct="A") for _ in range(3)]
    responses = []
    for index in range(20):
        q1 = "A" if index < 18 else "B"  # easy
        q2 = "A" if index < 10 else "B"  # medium
        q3 = "A" if index < 3 else "B"  # hard
        responses.append(ExamineeResponses.of(f"s{index:02d}", [q1, q2, q3]))
    return responses, specs


class TestScoreVsDifficulty:
    def setup_method(self):
        self.responses, self.specs = cohort_with_mixed_difficulty()
        self.cohort = analyze_cohort(self.responses, self.specs)
        self.correct_flags = {
            response.examinee_id: [
                selection == spec.correct
                for selection, spec in zip(response.selections, self.specs)
            ]
            for response in self.responses
        }

    def test_bands_cover_all_scores(self):
        analysis = score_vs_difficulty(
            self.cohort.scores, self.correct_flags, self.cohort.questions
        )
        assert set(analysis.scores) == set(self.cohort.scores.values())

    def test_band_examinee_counts_sum_to_cohort(self):
        analysis = score_vs_difficulty(
            self.cohort.scores, self.correct_flags, self.cohort.questions
        )
        assert sum(band.examinees for band in analysis.bands) == 20

    def test_low_scorers_succeed_only_on_easy_questions(self):
        analysis = score_vs_difficulty(
            self.cohort.scores, self.correct_flags, self.cohort.questions
        )
        by_score = {band.score: band for band in analysis.bands}
        # score-1 examinees only got the easy (high P) question right
        lowest_band = by_score[min(b for b in by_score if b > 0)]
        highest_band = by_score[max(by_score)]
        assert (
            lowest_band.mean_difficulty_of_correct
            >= highest_band.mean_difficulty_of_correct
        )

    def test_zero_score_band_has_no_difficulty(self):
        scores = {"s1": 0}
        flags = {"s1": [False, False, False]}
        analysis = score_vs_difficulty(scores, flags, self.cohort.questions)
        assert analysis.bands[0].mean_difficulty_of_correct is None

    def test_empty_scores_rejected(self):
        with pytest.raises(EmptyCohortError):
            score_vs_difficulty({}, {}, self.cohort.questions)

    def test_mismatched_examinees_rejected(self):
        with pytest.raises(AnalysisError):
            score_vs_difficulty({"s1": 1}, {"s2": [True]}, self.cohort.questions)

    def test_ragged_flags_rejected(self):
        with pytest.raises(AnalysisError):
            score_vs_difficulty(
                {"s1": 1}, {"s1": [True]}, self.cohort.questions
            )


class TestExamAggregates:
    def test_average_time(self):
        assert average_time([100.0, 200.0, 300.0]) == 200.0

    def test_average_time_empty_rejected(self):
        with pytest.raises(EmptyCohortError):
            average_time([])

    def test_average_time_negative_rejected(self):
        with pytest.raises(AnalysisError):
            average_time([10.0, -1.0])

    def test_time_limit_adequacy(self):
        assert time_limit_adequacy([10, 20, 30, 40], 25) == 0.5

    def test_time_limit_boundary_inclusive(self):
        assert time_limit_adequacy([25.0], 25.0) == 1.0

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(AnalysisError):
            time_limit_adequacy([10.0], 0)

    def test_adequacy_empty_rejected(self):
        with pytest.raises(EmptyCohortError):
            time_limit_adequacy([], 10)
