"""Tests for the traffic-light signal model (repro.core.signals)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import AnalysisError
from repro.core.signals import (
    DEFAULT_POLICY,
    Signal,
    SignalPolicy,
    render_signal_board,
)


class TestTable3Classification:
    """Table 3: Good/Green D >= 0.30; Fix/Yellow 0.20-0.29; Red <= 0.19."""

    def test_paper_question_2_is_green(self):
        """Worked example no.2: D = 0.55 > 0.3 -> 'The signal is green.'"""
        assert DEFAULT_POLICY.classify(0.55) is Signal.GREEN

    def test_paper_question_6_is_red(self):
        """Worked example no.6: D = 0.09 -> red band."""
        assert DEFAULT_POLICY.classify(0.09) is Signal.RED

    @pytest.mark.parametrize(
        "d,expected",
        [
            (0.30, Signal.GREEN),
            (0.31, Signal.GREEN),
            (1.0, Signal.GREEN),
            (0.29, Signal.YELLOW),
            (0.20, Signal.YELLOW),
            (0.25, Signal.YELLOW),
            (0.19, Signal.RED),
            (0.0, Signal.RED),
            (-0.5, Signal.RED),
        ],
    )
    def test_band_boundaries(self, d, expected):
        assert DEFAULT_POLICY.classify(d) is expected

    def test_out_of_range_rejected(self):
        with pytest.raises(AnalysisError):
            DEFAULT_POLICY.classify(1.5)
        with pytest.raises(AnalysisError):
            DEFAULT_POLICY.classify(-1.5)


class TestSignalMeta:
    def test_status_labels_match_table_3(self):
        assert Signal.GREEN.status == "Good"
        assert Signal.YELLOW.status == "Fix"
        assert Signal.RED.status == "Eliminate or fix"

    def test_glyphs(self):
        assert [s.glyph for s in (Signal.GREEN, Signal.YELLOW, Signal.RED)] == [
            "G",
            "Y",
            "R",
        ]

    def test_str(self):
        assert str(Signal.RED) == "red"


class TestSignalPolicy:
    def test_default_cut_points(self):
        assert DEFAULT_POLICY.green_min == 0.30
        assert DEFAULT_POLICY.yellow_min == 0.20

    def test_custom_policy(self):
        lenient = SignalPolicy(green_min=0.20, yellow_min=0.10)
        assert lenient.classify(0.25) is Signal.GREEN
        assert lenient.classify(0.15) is Signal.YELLOW
        assert lenient.classify(0.05) is Signal.RED

    @pytest.mark.parametrize(
        "green,yellow",
        [(0.2, 0.3), (0.3, 0.3), (0.0, -0.1), (1.2, 0.2), (0.3, 0.0)],
    )
    def test_invalid_cut_points_rejected(self, green, yellow):
        with pytest.raises(AnalysisError):
            SignalPolicy(green_min=green, yellow_min=yellow)

    def test_bands_describe_table_3(self):
        bands = DEFAULT_POLICY.bands()
        assert bands[0][0] is Signal.GREEN
        assert "0.3" in bands[0][1]
        assert bands[1][1] == "0.20-0.29"
        assert bands[2][1] == "Lower 0.19"

    @given(d=st.floats(min_value=-1, max_value=1))
    def test_classification_total(self, d):
        assert DEFAULT_POLICY.classify(d) in set(Signal)

    @given(
        d1=st.floats(min_value=-1, max_value=1),
        d2=st.floats(min_value=-1, max_value=1),
    )
    def test_classification_monotone(self, d1, d2):
        """Higher D never yields a worse signal."""
        order = {Signal.RED: 0, Signal.YELLOW: 1, Signal.GREEN: 2}
        low, high = min(d1, d2), max(d1, d2)
        assert order[DEFAULT_POLICY.classify(low)] <= order[
            DEFAULT_POLICY.classify(high)
        ]


class TestSignalBoard:
    def test_board_numbers_questions(self):
        board = render_signal_board([Signal.GREEN, Signal.RED, Signal.YELLOW])
        assert "Q01:G" in board
        assert "Q02:R" in board
        assert "Q03:Y" in board

    def test_board_wraps_rows(self):
        board = render_signal_board([Signal.GREEN] * 25, per_row=10)
        lines = board.splitlines()
        # 3 rows of lights + legend
        assert len(lines) == 4
        assert lines[0].count("Q") == 10
        assert lines[2].count("Q") == 5

    def test_board_has_legend(self):
        board = render_signal_board([Signal.GREEN])
        assert "legend" in board
        assert "eliminate or fix" in board

    def test_empty_board(self):
        board = render_signal_board([])
        assert "legend" in board

    def test_bad_per_row_rejected(self):
        with pytest.raises(AnalysisError):
            render_signal_board([Signal.GREEN], per_row=0)
