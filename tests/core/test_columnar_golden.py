"""Golden-file tests pinning the paper's worked numbers.

``golden/paper_examples.json`` holds the paper's §3.3 difficulty example
(R=800, N=1000 → P=0.8), the Table 1 option-matrix rule examples, the
§4.1.2 worked questions (class of 44, groups of 11), the Table 3 signal
bands, and one pinned randomized cohort.  Every value is asserted against
*both* engines where a cohort is involved, so neither the columnar fast
path nor the reference pipeline can drift from the paper's numbers
without failing here.
"""

import json
from pathlib import Path

import pytest
from columnar_cases import make_random_cohort

from repro.core.columnar import fast_analyze_cohort
from repro.core.indices import difficulty_index
from repro.core.question_analysis import analyze_cohort, analyze_matrix
from repro.core.rules import OptionMatrix, Status, evaluate_rules
from repro.core.signals import DEFAULT_POLICY

GOLDEN_PATH = Path(__file__).parent / "golden" / "paper_examples.json"


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def test_section_3_3_difficulty_example(golden):
    example = golden["section_3_3_difficulty"]
    assert difficulty_index(example["right"], example["total"]) == example["P"]


@pytest.mark.parametrize(
    "name", ["rule1_example", "rule2_example", "rule3_example", "rule4_example"]
)
def test_table1_rule_examples(golden, name):
    example = golden["table1_rule_examples"][name]
    matrix = OptionMatrix.from_rows(
        example["high"], example["low"], correct=example["correct"]
    )
    outcome = evaluate_rules(matrix)
    assert list(outcome.fired_rules) == example["fired_rules"]
    for match in outcome.matches:
        assert (
            list(match.options)
            == example["options_flagged"][str(match.rule)]
        )
    assert [status.name for status in outcome.statuses] == example["statuses"]
    # sanity: every pinned status is a real Table 2 status
    for status_name in example["statuses"]:
        assert Status[status_name] in Status


@pytest.mark.parametrize("name", ["question_2", "question_6"])
def test_worked_example_questions(golden, name):
    example = golden[name]
    analysis = analyze_matrix(
        OptionMatrix.from_rows(
            example["high"], example["low"], correct=example["correct"]
        ),
        high_size=example["group_size"],
        low_size=example["group_size"],
    )
    assert analysis.p_high == example["p_high"]
    assert analysis.p_low == example["p_low"]
    assert analysis.discrimination == example["discrimination"]
    assert analysis.difficulty == example["difficulty"]
    assert analysis.signal.value == example["signal"]
    assert list(analysis.rules.fired_rules) == example["fired_rules"]


def test_question_2_matches_paper_arithmetic(golden):
    """The paper's own numbers, independent of the JSON: PH = 10/11,
    PL = 4/11, D = 6/11 (≈0.55, green), P = 7/11 (≈0.64)."""
    example = golden["question_2"]
    assert example["p_high"] == pytest.approx(10 / 11)
    assert example["p_low"] == pytest.approx(4 / 11)
    assert example["discrimination"] == pytest.approx(6 / 11)
    assert example["difficulty"] == pytest.approx(7 / 11)
    assert example["signal"] == "green"


def test_table3_signal_bands(golden):
    for discrimination, expected in golden["table3_signal_bands"]:
        assert DEFAULT_POLICY.classify(discrimination).value == expected


@pytest.mark.parametrize("engine", ["columnar", "reference"])
def test_pinned_cohort(golden, engine):
    """A full randomized cohort pinned field-by-field: any drift in either
    engine (grouping, counts, indices, signals, rules) fails here."""
    pin = golden["pinned_cohort"]
    responses, specs = make_random_cohort(
        pin["seed"],
        pin["size"],
        pin["questions"],
        pin["option_count"],
        pin["skip_rate"],
        pin["tie_heavy"],
    )
    result = analyze_cohort(responses, specs, engine=engine)
    assert result.high_group == pin["high_group"]
    assert result.low_group == pin["low_group"]
    assert sum(result.scores.values()) == pin["score_total"]
    assert len(result.questions) == len(pin["per_question"])
    for analysis, expected in zip(result.questions, pin["per_question"]):
        assert analysis.number == expected["number"]
        # exact equality: these floats are pinned, not approximated
        assert analysis.p_high == expected["p_high"]
        assert analysis.p_low == expected["p_low"]
        assert analysis.discrimination == expected["discrimination"]
        assert analysis.difficulty == expected["difficulty"]
        assert analysis.signal.value == expected["signal"]
        assert list(analysis.rules.fired_rules) == expected["fired_rules"]
        assert dict(analysis.matrix.high) == expected["high_counts"]
        assert dict(analysis.matrix.low) == expected["low_counts"]


def test_both_engines_agree_on_pinned_cohort(golden):
    pin = golden["pinned_cohort"]
    responses, specs = make_random_cohort(
        pin["seed"],
        pin["size"],
        pin["questions"],
        pin["option_count"],
        pin["skip_rate"],
        pin["tie_heavy"],
    )
    assert fast_analyze_cohort(responses, specs) == analyze_cohort(
        responses, specs, engine="reference"
    )
