"""Tests for the two-way specification table (repro.core.spec_table)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cognition import COGNITIVE_LEVELS, CognitionLevel
from repro.core.errors import AnalysisError
from repro.core.spec_table import SpecificationTable, TaggedQuestion


def tag(number, concept, level):
    return TaggedQuestion(number=number, concept=concept, level=level)


def sample_table():
    """A small exam over three concepts."""
    questions = [
        tag(1, "sorting", CognitionLevel.KNOWLEDGE),
        tag(2, "sorting", CognitionLevel.KNOWLEDGE),
        tag(3, "sorting", CognitionLevel.COMPREHENSION),
        tag(4, "hashing", CognitionLevel.KNOWLEDGE),
        tag(5, "hashing", CognitionLevel.APPLICATION),
        tag(6, "trees", CognitionLevel.EVALUATION),
    ]
    return SpecificationTable.from_questions(
        questions, concepts=["sorting", "hashing", "trees", "graphs"]
    )


class TestCellSemantics:
    def test_count_sum_xi(self):
        """§4.2.2 (4): SUM(Xi) is the question count of level X in
        concept i."""
        table = sample_table()
        assert table.count("sorting", CognitionLevel.KNOWLEDGE) == 2
        assert table.count("sorting", CognitionLevel.COMPREHENSION) == 1
        assert table.count("sorting", CognitionLevel.EVALUATION) == 0

    def test_has_true_false_semantics(self):
        """§4.2.2 (3): a cell is TRUE when at least one question of that
        level exists in that concept."""
        table = sample_table()
        assert table.has("sorting", CognitionLevel.KNOWLEDGE)
        assert not table.has("graphs", CognitionLevel.KNOWLEDGE)

    def test_concept_sum(self):
        """§4.2.2 (5): SUM(Ai-Fi) is all questions in concept i."""
        table = sample_table()
        assert table.concept_sum("sorting") == 3
        assert table.concept_sum("graphs") == 0

    def test_level_sum(self):
        """§4.2.2 (6): SUM(X1-Xi) is all questions of level X."""
        table = sample_table()
        assert table.level_sum(CognitionLevel.KNOWLEDGE) == 3
        assert table.level_sum(CognitionLevel.SYNTHESIS) == 0

    def test_level_sums_in_order(self):
        table = sample_table()
        assert table.level_sums() == [3, 1, 1, 0, 0, 1]

    def test_total(self):
        assert sample_table().total() == 6

    def test_questions_in_cell(self):
        table = sample_table()
        assert table.questions_in_cell("sorting", CognitionLevel.KNOWLEDGE) == (1, 2)

    def test_paper_example_sum_f3(self):
        """§4.2.2 ex: SUM(F3)=3 — three evaluation questions in concept 3."""
        questions = [
            tag(i, "concept3", CognitionLevel.EVALUATION) for i in range(1, 4)
        ]
        table = SpecificationTable.from_questions(questions)
        assert table.count("concept3", CognitionLevel.EVALUATION) == 3


class TestLostConcepts:
    def test_lost_concept_detected(self):
        """§4.2.3 (1): a concept with an all-FALSE row is lost."""
        table = sample_table()
        assert table.lost_concepts() == ["graphs"]

    def test_no_lost_concepts_when_all_covered(self):
        table = SpecificationTable.from_questions(
            [tag(1, "a", CognitionLevel.KNOWLEDGE)], concepts=["a"]
        )
        assert table.lost_concepts() == []

    def test_lost_concept_requires_declared_inventory(self):
        # without the declared concept list, unexamined concepts are unknown
        table = SpecificationTable.from_questions(
            [tag(1, "a", CognitionLevel.KNOWLEDGE)]
        )
        assert table.lost_concepts() == []


class TestPyramid:
    def test_holds_for_pyramid_shaped_exam(self):
        questions = []
        number = 1
        for level, count in zip(COGNITIVE_LEVELS, [5, 4, 3, 2, 1, 1]):
            for _ in range(count):
                questions.append(tag(number, "c", level))
                number += 1
        table = SpecificationTable.from_questions(questions)
        assert table.pyramid_violations() == []

    def test_violation_identified(self):
        questions = [
            tag(1, "c", CognitionLevel.KNOWLEDGE),
            tag(2, "c", CognitionLevel.EVALUATION),
            tag(3, "c", CognitionLevel.EVALUATION),
        ]
        table = SpecificationTable.from_questions(questions)
        violations = table.pyramid_violations()
        assert (CognitionLevel.SYNTHESIS, CognitionLevel.EVALUATION) in violations

    def test_sample_table_violation(self):
        # sample: [3, 1, 1, 0, 0, 1] — evaluation (1) > synthesis (0)
        assert sample_table().pyramid_violations() == [
            (CognitionLevel.SYNTHESIS, CognitionLevel.EVALUATION)
        ]


class TestPaint:
    def test_paint_has_header_and_rows(self):
        lines = sample_table().paint()
        assert lines[0].split() == ["A", "B", "C", "D", "E", "F"]
        assert len(lines) == 1 + 4  # header + four concepts

    def test_empty_cells_are_blank(self):
        lines = sample_table().paint()
        graphs_row = next(line for line in lines if line.startswith("graphs"))
        assert set(graphs_row[10:].replace(" ", "")) == set()

    def test_denser_cells_use_denser_glyphs(self):
        questions = [tag(i, "c", CognitionLevel.KNOWLEDGE) for i in range(10)]
        questions.append(tag(11, "c", CognitionLevel.EVALUATION))
        table = SpecificationTable.from_questions(questions)
        row = table.paint()[1]
        cells = row[10::2]  # glyphs sit at every other column after the label
        assert cells[0] == "#"  # 10 questions: the densest shade
        assert cells[5] == "."  # 1 question: the lightest non-zero shade

    def test_custom_shades_validated(self):
        with pytest.raises(AnalysisError):
            sample_table().paint(shades="x")


class TestRender:
    def test_counts_render(self):
        text = sample_table().render()
        assert "Knowledge" in text
        assert "Evaluation" in text
        assert "sorting" in text
        assert "SUM" in text

    def test_boolean_render(self):
        text = sample_table().render(boolean=True)
        assert "TRUE" in text
        assert "FALSE" in text

    def test_row_sums_in_render(self):
        text = sample_table().render()
        sorting_line = next(
            line for line in text.splitlines() if line.startswith("sorting")
        )
        assert sorting_line.rstrip().endswith("3")


class TestValidation:
    def test_empty_concept_name_rejected(self):
        with pytest.raises(AnalysisError):
            SpecificationTable.from_questions(
                [tag(1, "", CognitionLevel.KNOWLEDGE)]
            )

    def test_concepts_preserve_declaration_order(self):
        table = SpecificationTable.from_questions(
            [], concepts=["z", "a", "m"]
        )
        assert table.concepts == ["z", "a", "m"]


class TestSpecTableProperties:
    @given(
        data=st.lists(
            st.tuples(
                st.sampled_from(["c1", "c2", "c3"]),
                st.sampled_from(list(COGNITIVE_LEVELS)),
            ),
            max_size=60,
        )
    )
    def test_total_equals_sum_of_level_sums_and_concept_sums(self, data):
        questions = [
            tag(i + 1, concept, level) for i, (concept, level) in enumerate(data)
        ]
        table = SpecificationTable.from_questions(questions)
        assert table.total() == len(data)
        assert sum(table.level_sums()) == len(data)
        assert sum(table.concept_sum(c) for c in table.concepts) == len(data)

    @given(
        data=st.lists(
            st.tuples(
                st.sampled_from(["c1", "c2"]),
                st.sampled_from(list(COGNITIVE_LEVELS)),
            ),
            max_size=40,
        )
    )
    def test_has_iff_count_positive(self, data):
        questions = [
            tag(i + 1, concept, level) for i, (concept, level) in enumerate(data)
        ]
        table = SpecificationTable.from_questions(questions)
        for concept in table.concepts:
            for level in COGNITIVE_LEVELS:
                assert table.has(concept, level) == (
                    table.count(concept, level) > 0
                )
