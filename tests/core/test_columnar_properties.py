"""Property-based invariants of the §4.1 indices and grouping, checked
against the columnar engine (and, by the differential suite, the
reference engine too).

Invariants from the paper:

* ``D = PH − PL`` and ``P = (PH + PL) / 2`` — exactly, not approximately;
* ``P`` (difficulty) lies in [0, 1], ``D`` in [-1, 1];
* the high and low groups are disjoint, each of size
  ``int(N × fraction)`` ≤ ``ceil(0.25·N)`` for the paper's split;
* the split is stable under ties: boundary ties resolve by original
  cohort order, so equal inputs give identical groups.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from columnar_cases import make_random_cohort

from repro.core.columnar import fast_analyze_cohort
from repro.core.grouping import GroupSplit
from repro.core.question_analysis import ExamineeResponses, analyze_cohort
from repro.core.signals import DEFAULT_POLICY

cohort_shapes = st.tuples(
    st.integers(min_value=0, max_value=2**31),  # seed
    st.integers(min_value=8, max_value=120),  # size
    st.integers(min_value=1, max_value=10),  # questions
    st.integers(min_value=2, max_value=8),  # option count
    st.floats(min_value=0.0, max_value=0.9),  # skip rate
    st.booleans(),  # tie heavy
)


@settings(max_examples=40, deadline=None)
@given(shape=cohort_shapes)
def test_indices_invariants(shape):
    seed, size, questions, option_count, skip_rate, tie_heavy = shape
    responses, specs = make_random_cohort(
        seed, size, questions, option_count, skip_rate, tie_heavy
    )
    result = fast_analyze_cohort(responses, specs)
    for analysis in result.questions:
        # exact float identities, by construction of analyze_matrix
        assert analysis.discrimination == analysis.p_high - analysis.p_low
        assert analysis.difficulty == (analysis.p_high + analysis.p_low) / 2.0
        assert 0.0 <= analysis.p_high <= 1.0
        assert 0.0 <= analysis.p_low <= 1.0
        assert 0.0 <= analysis.difficulty <= 1.0
        assert -1.0 <= analysis.discrimination <= 1.0
        assert analysis.signal is DEFAULT_POLICY.classify(
            analysis.discrimination
        )


@settings(max_examples=40, deadline=None)
@given(
    shape=cohort_shapes,
    fraction=st.sampled_from((0.25, 0.27, 0.33, 0.5)),
)
def test_grouping_invariants(shape, fraction):
    seed, size, questions, option_count, skip_rate, tie_heavy = shape
    responses, specs = make_random_cohort(
        seed, size, questions, option_count, skip_rate, tie_heavy
    )
    split = GroupSplit(fraction=fraction)
    result = fast_analyze_cohort(responses, specs, split=split)

    expected_size = int(size * fraction)
    assert len(result.high_group) == expected_size
    assert len(result.low_group) == expected_size
    assert expected_size <= math.ceil(fraction * size)
    assert not set(result.high_group) & set(result.low_group)
    assert set(result.scores) == {r.examinee_id for r in responses}

    # the high group holds the N highest scores, the low group the N
    # lowest, with boundary ties broken by cohort order (stable split)
    order = sorted(
        range(size),
        key=lambda index: (-result.scores[responses[index].examinee_id], index),
    )
    assert result.high_group == [
        responses[index].examinee_id for index in order[:expected_size]
    ]
    assert result.low_group == [
        responses[index].examinee_id for index in order[-expected_size:]
    ]


@settings(max_examples=25, deadline=None)
@given(shape=cohort_shapes)
def test_scores_count_correct_selections(shape):
    seed, size, questions, option_count, skip_rate, tie_heavy = shape
    responses, specs = make_random_cohort(
        seed, size, questions, option_count, skip_rate, tie_heavy
    )
    result = fast_analyze_cohort(responses, specs)
    for response in responses:
        expected = sum(
            1
            for selection, spec in zip(response.selections, specs)
            if selection == spec.correct
        )
        assert result.scores[response.examinee_id] == expected


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    size=st.integers(min_value=8, max_value=60),
)
def test_tie_stability_under_reordering_is_deterministic(seed, size):
    """Shuffling then restoring the cohort order reproduces the groups:
    the split depends only on (score, original position)."""
    responses, specs = make_random_cohort(seed, size, 3, 3, 0.0, True)
    first = fast_analyze_cohort(responses, specs)
    again = fast_analyze_cohort(list(responses), specs)
    assert first.high_group == again.high_group
    assert first.low_group == again.low_group

    # a genuinely reordered cohort may pick different tie members, but
    # the multiset of group *scores* is order-independent
    shuffled = list(responses)
    random.Random(seed ^ 0xBEEF).shuffle(shuffled)
    reordered = fast_analyze_cohort(shuffled, specs)
    assert sorted(
        reordered.scores[i] for i in reordered.high_group
    ) == sorted(first.scores[i] for i in first.high_group)
    assert sorted(
        reordered.scores[i] for i in reordered.low_group
    ) == sorted(first.scores[i] for i in first.low_group)


@settings(max_examples=25, deadline=None)
@given(shape=cohort_shapes)
def test_rule_4_implies_rule_3_and_option_sums_bound(shape):
    seed, size, questions, option_count, skip_rate, tie_heavy = shape
    responses, specs = make_random_cohort(
        seed, size, questions, option_count, skip_rate, tie_heavy
    )
    result = fast_analyze_cohort(responses, specs)
    group_size = len(result.high_group)
    for analysis in result.questions:
        if analysis.rules.rule_fired(4):
            assert analysis.rules.rule_fired(3)
        # skipped selections are simply absent from the matrix sums
        assert analysis.matrix.high_sum <= group_size
        assert analysis.matrix.low_sum <= group_size


@settings(max_examples=30, deadline=None)
@given(
    shape=cohort_shapes,
    stray_rate=st.sampled_from((0.0, 0.0, 0.15)),
)
def test_extend_equals_repeated_add_sitting(shape, stray_rate):
    """Bulk ``extend`` and one-at-a-time ``add_sitting`` build identical
    matrices — codes, scores, ids, and interning tables — including when
    some selections are labels outside the question's options (the
    interning path, exercised at ``stray_rate``)."""
    from repro.core.columnar import ResponseMatrix

    seed, size, questions, option_count, skip_rate, tie_heavy = shape
    responses, specs = make_random_cohort(
        seed, size, questions, option_count, skip_rate, tie_heavy
    )
    if stray_rate:
        rng = random.Random(seed ^ 0xACE)
        responses = [
            ExamineeResponses.of(
                response.examinee_id,
                [
                    f"?{rng.randrange(3)}"
                    if rng.random() < stray_rate
                    else selection
                    for selection in response.selections
                ],
            )
            for response in responses
        ]

    bulk = ResponseMatrix(specs)
    bulk.extend(responses)
    incremental = ResponseMatrix(specs)
    for response in responses:
        incremental.add_sitting(response)

    assert bytes(bulk._codes) == bytes(incremental._codes)
    assert bulk.scores == incremental.scores
    assert bulk.examinee_ids == incremental.examinee_ids
    assert bulk._labels == incremental._labels
    assert bulk._tables == incremental._tables
    if not stray_rate:
        # stray labels can make analyze() raise (by design, matching the
        # reference engine); clean cohorts must analyze identically
        assert bulk.analyze() == incremental.analyze()


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    duplicate_of=st.integers(min_value=0, max_value=7),
)
def test_duplicate_ids_always_rejected(seed, duplicate_of):
    import pytest

    from repro.core.errors import AnalysisError

    responses, specs = make_random_cohort(seed, 8, 2, 3, 0.0, False)
    responses.append(
        ExamineeResponses.of(
            responses[duplicate_of].examinee_id, ["A", "A"]
        )
    )
    for engine in ("columnar", "reference"):
        with pytest.raises(AnalysisError, match="duplicate examinee id"):
            analyze_cohort(responses, specs, engine=engine)
