"""Tests for the high/low group split (repro.core.grouping)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import GroupSplitError
from repro.core.grouping import (
    ACCEPTABLE_RANGE,
    KELLY_OPTIMUM,
    PAPER_FRACTION,
    GroupSplit,
    split_by_score,
)


class TestConstants:
    def test_paper_constants(self):
        assert KELLY_OPTIMUM == 0.27
        assert ACCEPTABLE_RANGE == (0.25, 0.33)
        assert PAPER_FRACTION == 0.25


class TestGroupSplitPolicy:
    def test_default_is_paper_fraction(self):
        assert GroupSplit().fraction == 0.25

    @pytest.mark.parametrize("bad", [0.0, -0.1, 0.51, 1.0])
    def test_rejects_bad_fractions(self, bad):
        with pytest.raises(GroupSplitError):
            GroupSplit(fraction=bad)

    def test_strict_accepts_kelly_range(self):
        GroupSplit(fraction=0.25, strict=True)
        GroupSplit(fraction=0.27, strict=True)
        GroupSplit(fraction=0.33, strict=True)

    @pytest.mark.parametrize("bad", [0.2, 0.34, 0.5])
    def test_strict_rejects_outside_kelly_range(self, bad):
        with pytest.raises(GroupSplitError):
            GroupSplit(fraction=bad, strict=True)

    def test_paper_class_of_44_gives_groups_of_11(self):
        """§4.1.2: 'class size is 44 students, the high score group and
        low score group is 11.'"""
        assert GroupSplit().group_size(44) == 11

    def test_group_size_truncates(self):
        assert GroupSplit().group_size(43) == 10

    def test_tiny_cohort_rejected(self):
        with pytest.raises(GroupSplitError):
            GroupSplit().group_size(3)

    def test_nonpositive_cohort_rejected(self):
        with pytest.raises(GroupSplitError):
            GroupSplit().group_size(0)


class TestSplit:
    def test_high_group_has_highest_scores(self):
        scores = [10, 50, 30, 90, 70, 20, 80, 60, 40, 100, 5, 55]
        high, low = split_by_score(scores)
        # 12 * 0.25 = 3 per group
        assert len(high) == len(low) == 3
        assert sorted(scores[i] for i in high) == [80, 90, 100]
        assert sorted(scores[i] for i in low) == [5, 10, 20]

    def test_groups_disjoint(self):
        scores = list(range(20))
        high, low = split_by_score(scores)
        assert not set(high) & set(low)

    def test_ties_broken_by_original_order(self):
        scores = [1.0] * 8
        high, low = split_by_score(scores)
        assert high == [0, 1]
        assert low == [6, 7]

    def test_split_with_objects(self):
        examinees = [("amy", 90), ("bob", 10), ("cat", 50), ("dan", 70),
                     ("eve", 30), ("fay", 80), ("gus", 20), ("hal", 60)]
        high, low = GroupSplit().split(examinees, lambda pair: pair[1])
        assert [name for name, _ in high] == ["amy", "fay"]
        assert {name for name, _ in low} == {"bob", "gus"}

    @given(
        scores=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=4,
            max_size=200,
        )
    )
    def test_every_high_scores_at_least_every_low(self, scores):
        high, low = split_by_score(scores)
        min_high = min(scores[i] for i in high)
        max_low = max(scores[i] for i in low)
        assert min_high >= max_low

    @given(
        size=st.integers(min_value=4, max_value=500),
        fraction=st.floats(min_value=0.05, max_value=0.5),
    )
    def test_group_sizes_match_policy(self, size, fraction):
        expected = int(size * fraction)
        if expected < 1:
            return  # policy would reject; covered elsewhere
        scores = [float(i) for i in range(size)]
        high, low = split_by_score(scores, fraction=fraction)
        assert len(high) == len(low) == expected
