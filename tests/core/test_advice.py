"""Tests for the advice engine (repro.core.advice)."""

from repro.core.advice import advise
from repro.core.rules import OptionMatrix, evaluate_rules
from repro.core.signals import Signal


def outcome_for(high, low, correct="A"):
    return evaluate_rules(OptionMatrix.from_rows(high, low, correct=correct))


class TestAdvise:
    def test_green_clean_question(self):
        advice = advise(Signal.GREEN, [])
        assert advice.signal is Signal.GREEN
        assert "Good" in advice.headline
        assert advice.actions == ()
        assert advice.explanations == ()

    def test_red_headline_mentions_elimination(self):
        advice = advise(Signal.RED, [])
        assert "Eliminate" in advice.headline

    def test_yellow_headline_mentions_fixing(self):
        advice = advise(Signal.YELLOW, [])
        assert "fixed" in advice.headline

    def test_rule_1_action_mentions_distractor(self):
        matches = outcome_for([12, 2, 0, 3, 3], [6, 4, 0, 5, 5]).matches
        advice = advise(Signal.YELLOW, matches)
        assert any("distractor" in action for action in advice.actions)

    def test_rule_2_actions_cover_all_three_statuses(self):
        matches = outcome_for([1, 2, 10, 0, 7], [2, 2, 13, 1, 2], "C").matches
        advice = advise(Signal.RED, matches)
        joined = " ".join(advice.actions)
        assert "wording" in joined
        assert "careless" in joined.lower()
        assert "one defensible correct answer" in joined

    def test_rule_3_action_mentions_remedial_course(self):
        matches = outcome_for([15, 2, 2, 0, 1], [5, 4, 5, 4, 2]).matches
        advice = advise(Signal.GREEN, matches)
        # note: this matrix also fires rule 1 (LD is never 0 here, but
        # low counts contain no zero) — verify remedial advice present
        assert any("remedial" in action for action in advice.actions)

    def test_rule_4_action_mentions_whole_class(self):
        matches = outcome_for([4, 4, 4, 2, 6], [5, 4, 5, 4, 2]).matches
        advice = advise(Signal.RED, matches)
        assert any("whole class" in action for action in advice.actions)

    def test_duplicate_statuses_collapsed(self):
        matches = outcome_for([4, 4, 4, 2, 6], [5, 4, 5, 4, 2]).matches
        advice = advise(Signal.RED, matches)
        # rules 3 and 4 both assert LOW_GROUP_LACKS_CONCEPT; one action only
        remedial = [a for a in advice.actions if "remedial" in a]
        assert len(remedial) == 1

    def test_explanations_preserved(self):
        matches = outcome_for([12, 2, 0, 3, 3], [6, 4, 0, 5, 5]).matches
        advice = advise(Signal.GREEN, matches)
        assert len(advice.explanations) == len(matches)
        assert "Rule 1" in advice.explanations[0]


class TestRender:
    def test_render_leads_with_signal_glyph(self):
        advice = advise(Signal.RED, [])
        assert advice.render().startswith("[R]")

    def test_render_numbers_actions(self):
        matches = outcome_for([1, 2, 10, 0, 7], [2, 2, 13, 1, 2], "C").matches
        text = advise(Signal.YELLOW, matches).render()
        assert "  1. " in text
        assert "  2. " in text

    def test_render_includes_explanations(self):
        matches = outcome_for([12, 2, 0, 3, 3], [6, 4, 0, 5, 5]).matches
        text = advise(Signal.GREEN, matches).render()
        assert "Rule 1" in text
