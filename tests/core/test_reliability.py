"""Tests for whole-test reliability statistics (repro.core.reliability)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AnalysisError, EmptyCohortError
from repro.core.reliability import (
    cronbach_alpha,
    kr20,
    split_half_reliability,
    standard_error_of_measurement,
)


def consistent_matrix(examinees=30, items=10, seed=1):
    """Ability-driven responses: strongly internally consistent."""
    rng = random.Random(seed)
    matrix = []
    for _ in range(examinees):
        ability = rng.gauss(0, 1)
        row = [
            rng.random() < 1 / (1 + pow(2.718, -(ability - (i - items / 2) / 2)))
            for i in range(items)
        ]
        matrix.append(row)
    return matrix


def random_matrix(examinees=30, items=10, seed=2):
    """Coin-flip responses: no internal consistency."""
    rng = random.Random(seed)
    return [
        [rng.random() < 0.5 for _ in range(items)] for _ in range(examinees)
    ]


class TestKr20:
    def test_consistent_test_scores_high(self):
        assert kr20(consistent_matrix(examinees=200, items=20)) > 0.6

    def test_random_test_scores_low(self):
        assert kr20(random_matrix(examinees=200, items=20)) < 0.3

    def test_consistent_beats_random(self):
        assert kr20(consistent_matrix()) > kr20(random_matrix())

    def test_upper_bound(self):
        assert kr20(consistent_matrix(examinees=300, items=40)) <= 1.0

    def test_longer_tests_more_reliable(self):
        short = kr20(consistent_matrix(examinees=300, items=5, seed=3))
        long = kr20(consistent_matrix(examinees=300, items=40, seed=3))
        assert long > short

    def test_single_item_rejected(self):
        with pytest.raises(AnalysisError):
            kr20([[True], [False]])

    def test_single_examinee_rejected(self):
        with pytest.raises(AnalysisError):
            kr20([[True, False]])

    def test_zero_variance_rejected(self):
        with pytest.raises(AnalysisError):
            kr20([[True, False], [True, False]])

    def test_empty_rejected(self):
        with pytest.raises(EmptyCohortError):
            kr20([])

    def test_ragged_rejected(self):
        with pytest.raises(AnalysisError):
            kr20([[True, False], [True]])


class TestCronbachAlpha:
    def test_matches_kr20_for_dichotomous(self):
        matrix = consistent_matrix()
        as_scores = [[1.0 if flag else 0.0 for flag in row] for row in matrix]
        assert cronbach_alpha(as_scores) == pytest.approx(kr20(matrix))

    def test_partial_credit_scores(self):
        rng = random.Random(4)
        matrix = []
        for _ in range(100):
            quality = rng.uniform(0, 1)
            matrix.append(
                [quality * 5 + rng.gauss(0, 0.5) for _ in range(8)]
            )
        assert cronbach_alpha(matrix) > 0.9

    def test_zero_variance_rejected(self):
        with pytest.raises(AnalysisError):
            cronbach_alpha([[1.0, 2.0], [1.0, 2.0]])


class TestSem:
    def test_perfect_reliability_gives_zero(self):
        assert standard_error_of_measurement([1.0, 5.0, 9.0], 1.0) == 0.0

    def test_zero_reliability_gives_sd(self):
        scores = [2.0, 4.0, 6.0, 8.0]
        sem = standard_error_of_measurement(scores, 0.0)
        mean = sum(scores) / 4
        sd = (sum((s - mean) ** 2 for s in scores) / 4) ** 0.5
        assert sem == pytest.approx(sd)

    def test_monotone_in_reliability(self):
        scores = [1.0, 3.0, 7.0, 9.0]
        assert standard_error_of_measurement(
            scores, 0.9
        ) < standard_error_of_measurement(scores, 0.5)

    def test_bad_reliability_rejected(self):
        with pytest.raises(AnalysisError):
            standard_error_of_measurement([1.0, 2.0], 1.5)

    def test_empty_rejected(self):
        with pytest.raises(EmptyCohortError):
            standard_error_of_measurement([], 0.5)


class TestSplitHalf:
    def test_consistent_test_scores_high(self):
        matrix = [
            [1.0 if flag else 0.0 for flag in row]
            for row in consistent_matrix(examinees=300, items=20)
        ]
        assert split_half_reliability(matrix) > 0.5

    def test_agrees_roughly_with_alpha(self):
        matrix = [
            [1.0 if flag else 0.0 for flag in row]
            for row in consistent_matrix(examinees=400, items=30, seed=9)
        ]
        assert abs(split_half_reliability(matrix) - cronbach_alpha(matrix)) < 0.15

    def test_single_item_rejected(self):
        with pytest.raises(AnalysisError):
            split_half_reliability([[1.0], [0.0]])

    def test_zero_half_variance_rejected(self):
        # odd-position scores identical across examinees
        with pytest.raises(AnalysisError):
            split_half_reliability([[1.0, 2.0], [1.0, 5.0]])


class TestReliabilityProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_kr20_never_exceeds_one(self, seed):
        matrix = consistent_matrix(examinees=25, items=8, seed=seed)
        totals = [sum(row) for row in matrix]
        if len(set(totals)) < 2:
            return  # zero variance is rejected, covered elsewhere
        assert kr20(matrix) <= 1.0
