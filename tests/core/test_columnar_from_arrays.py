"""Tests for the array-native ingestion path
(``ResponseMatrix.from_arrays`` / ``extend_codes``)."""

import pytest

from columnar_cases import make_random_cohort

from repro.core.columnar import (
    SKIP,
    LiveCohortAnalysis,
    ResponseMatrix,
    fast_analyze_cohort,
)
from repro.core.errors import AnalysisError
from repro.core.question_analysis import QuestionSpec

try:
    import numpy
except ImportError:  # pragma: no cover
    numpy = None


def encode_cohort(responses, specs):
    """Reference encoding: option index per cell, SKIP for None."""
    buffer = bytearray()
    for response in responses:
        for selection, spec in zip(response.selections, specs):
            buffer.append(
                SKIP if selection is None else spec.options.index(selection)
            )
    return bytes(buffer)


class TestFromArrays:
    def test_equals_object_ingestion(self):
        responses, specs = make_random_cohort(3, 60, 8, 5, 0.2, False)
        ids = [response.examinee_id for response in responses]
        matrix = ResponseMatrix.from_arrays(
            specs, ids, encode_cohort(responses, specs)
        )
        assert matrix.analyze() == fast_analyze_cohort(responses, specs)
        assert matrix.scores == [
            sum(
                1
                for selection, spec in zip(response.selections, specs)
                if selection == spec.correct
            )
            for response in responses
        ]

    @pytest.mark.skipif(numpy is None, reason="needs numpy")
    def test_accepts_2d_uint8_array(self):
        responses, specs = make_random_cohort(4, 40, 6, 4, 0.1, False)
        ids = [response.examinee_id for response in responses]
        flat = numpy.frombuffer(
            encode_cohort(responses, specs), dtype=numpy.uint8
        )
        matrix = ResponseMatrix.from_arrays(specs, ids, flat.reshape(40, 6))
        assert matrix.analyze() == fast_analyze_cohort(responses, specs)

    def test_empty_append_is_noop(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        matrix = ResponseMatrix(specs)
        matrix.extend_codes([], b"")
        assert len(matrix) == 0

    def test_incremental_extend_codes(self):
        responses, specs = make_random_cohort(5, 50, 4, 4, 0.0, False)
        ids = [response.examinee_id for response in responses]
        buffer = encode_cohort(responses, specs)
        matrix = ResponseMatrix(specs)
        matrix.extend_codes(ids[:20], buffer[: 20 * 4])
        matrix.extend_codes(ids[20:], buffer[20 * 4 :])
        assert matrix.analyze() == fast_analyze_cohort(responses, specs)

    def test_shape_mismatch_rejected(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")] * 2
        with pytest.raises(AnalysisError, match="needs"):
            ResponseMatrix.from_arrays(specs, ["s1"], b"\x00\x01\x00")

    def test_out_of_range_code_rejected(self):
        specs = [QuestionSpec(options=("A", "B", "C"), correct="A")]
        with pytest.raises(AnalysisError, match="only 3 options"):
            ResponseMatrix.from_arrays(specs, ["s1", "s2"], bytes([1, 3]))

    def test_skip_code_accepted(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        matrix = ResponseMatrix.from_arrays(specs, ["s1"], bytes([SKIP]))
        assert matrix.scores == [0]

    def test_duplicate_ids_rejected(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        with pytest.raises(AnalysisError, match="duplicate examinee id"):
            ResponseMatrix.from_arrays(specs, ["s1", "s1"], bytes([0, 1]))
        matrix = ResponseMatrix.from_arrays(specs, ["s1"], bytes([0]))
        with pytest.raises(AnalysisError, match="duplicate examinee id"):
            matrix.extend_codes(["s1"], bytes([1]))

    def test_mixes_with_add_sitting(self):
        responses, specs = make_random_cohort(6, 30, 5, 4, 0.1, False)
        split_at = 15
        matrix = ResponseMatrix(specs)
        for response in responses[:split_at]:
            matrix.add_sitting(response)
        tail = responses[split_at:]
        matrix.extend_codes(
            [response.examinee_id for response in tail],
            encode_cohort(tail, specs),
        )
        assert matrix.analyze() == fast_analyze_cohort(responses, specs)


class TestLiveExtendCodes:
    def test_live_sink_matches_object_path(self):
        responses, specs = make_random_cohort(7, 40, 5, 4, 0.0, False)
        live = LiveCohortAnalysis(specs)
        live.extend_codes(
            [response.examinee_id for response in responses],
            encode_cohort(responses, specs),
        )
        assert len(live) == 40
        assert live.width == 5
        assert live.analysis() == fast_analyze_cohort(responses, specs)

    def test_extend_codes_invalidates_cache(self):
        responses, specs = make_random_cohort(8, 40, 5, 4, 0.0, False)
        live = LiveCohortAnalysis(specs)
        head, tail = responses[:30], responses[30:]
        live.extend_codes(
            [response.examinee_id for response in head],
            encode_cohort(head, specs),
        )
        first = live.analysis()
        live.extend_codes(
            [response.examinee_id for response in tail],
            encode_cohort(tail, specs),
        )
        assert len(live.analysis().scores) == 40
        assert live.analysis() is not first
