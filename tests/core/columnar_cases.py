"""Shared cohort generators for the columnar-engine test suites.

The differential, property, and golden suites all need randomized but
reproducible cohorts with controllable shape: size, option count, skip
rate, and tie-heaviness (many examinees on few distinct scores, which
stresses the stable tie-breaking of the high/low split).
"""

import random
import string
from typing import List, Optional, Tuple

from repro.core.question_analysis import ExamineeResponses, QuestionSpec

OPTION_ALPHABET = string.ascii_uppercase


def make_specs(
    rng: random.Random, questions: int, option_count: int
) -> List[QuestionSpec]:
    """Question specs with ``option_count`` labeled options each."""
    options = tuple(OPTION_ALPHABET[:option_count])
    return [
        QuestionSpec(options=options, correct=rng.choice(options))
        for _ in range(questions)
    ]


def make_random_cohort(
    seed: int,
    size: int,
    questions: int,
    option_count: int = 4,
    skip_rate: float = 0.0,
    tie_heavy: bool = False,
) -> Tuple[List[ExamineeResponses], List[QuestionSpec]]:
    """A seeded random cohort.

    ``tie_heavy`` quantizes ability to three levels so scores pile up on
    few distinct values and the 25% boundary lands inside a tie run.
    ``skip_rate`` is the per-cell probability of a ``None`` selection.
    """
    rng = random.Random(seed)
    specs = make_specs(rng, questions, option_count)
    responses = []
    for index in range(size):
        if tie_heavy:
            p_correct = rng.choice((0.2, 0.5, 0.8))
        else:
            p_correct = min(0.95, max(0.05, rng.gauss(0.5, 0.25)))
        selections: List[Optional[str]] = []
        for spec in specs:
            if skip_rate and rng.random() < skip_rate:
                selections.append(None)
            elif rng.random() < p_correct:
                selections.append(spec.correct)
            else:
                selections.append(rng.choice(spec.options))
        responses.append(ExamineeResponses.of(f"s{index:05d}", selections))
    return responses, specs
