"""Tests for the MINE SCORM metadata model (repro.core.metadata)."""

import pytest

from repro.core.cognition import CognitionLevel
from repro.core.errors import MetadataValidationError
from repro.core.metadata import (
    LOM_SECTION_NAMES,
    MINE_SECTION_NAMES,
    AssessmentAnalysisRecord,
    AssessmentRecord,
    DisplayType,
    MineMetadata,
    QuestionStyle,
)


class TestSectionInventory:
    def test_nine_lom_sections(self):
        """§2.1: LOM 'provides nine categories to describe learning
        resource'."""
        assert len(LOM_SECTION_NAMES) == 9

    def test_ten_sections_total(self):
        """Figure 1: 'Our proposed assessment tree consists of ten
        sections'."""
        assert len(MINE_SECTION_NAMES) == 10
        assert MINE_SECTION_NAMES[-1] == "assessment"

    def test_document_exposes_all_sections(self):
        metadata = MineMetadata()
        for name in metadata.section_names():
            assert hasattr(metadata, name)


class TestQuestionStyles:
    def test_six_styles_of_section_3_2(self):
        values = {style.value for style in QuestionStyle}
        assert values == {
            "essay",
            "true_false",
            "multiple_choice",
            "match",
            "completion",
            "questionnaire",
        }

    def test_display_types(self):
        assert {d.value for d in DisplayType} == {"fixed_order", "random_order"}


class TestDefaults:
    def test_fresh_document_is_valid(self):
        metadata = MineMetadata()
        metadata.validate()
        assert metadata.is_valid()

    def test_questionnaire_defaults(self):
        q = MineMetadata().assessment.questionnaire
        assert q.resumable is True
        assert q.display_type is DisplayType.FIXED_ORDER

    def test_individual_test_defaults_unset(self):
        ind = MineMetadata().assessment.individual_test
        assert ind.item_difficulty_index is None
        assert ind.item_discrimination_index is None
        assert ind.cognition_level is None


class TestValidation:
    def test_difficulty_out_of_range(self):
        metadata = MineMetadata()
        metadata.assessment.individual_test.item_difficulty_index = 1.2
        with pytest.raises(MetadataValidationError) as excinfo:
            metadata.validate()
        assert any("item_difficulty_index" in v for v in excinfo.value.violations)

    def test_discrimination_out_of_range(self):
        metadata = MineMetadata()
        metadata.assessment.individual_test.item_discrimination_index = -1.5
        assert not metadata.is_valid()

    def test_negative_times_flagged(self):
        metadata = MineMetadata()
        metadata.assessment.exam.average_time_seconds = -3
        metadata.assessment.exam.test_time_seconds = -1
        with pytest.raises(MetadataValidationError) as excinfo:
            metadata.validate()
        assert len(excinfo.value.violations) == 2

    def test_negative_record_score_flagged(self):
        metadata = MineMetadata()
        metadata.assessment.records.append(
            AssessmentRecord(learner_id="s1", score=-5)
        )
        assert not metadata.is_valid()

    def test_negative_record_duration_flagged(self):
        metadata = MineMetadata()
        metadata.assessment.records.append(
            AssessmentRecord(learner_id="s1", duration_seconds=-1)
        )
        assert not metadata.is_valid()

    def test_negative_size_flagged(self):
        metadata = MineMetadata()
        metadata.technical.size_bytes = -1
        assert not metadata.is_valid()

    def test_valid_rich_document(self):
        metadata = MineMetadata()
        metadata.general.title = "Midterm"
        metadata.assessment.cognition_level = CognitionLevel.APPLICATION
        metadata.assessment.question_style = QuestionStyle.MULTIPLE_CHOICE
        metadata.assessment.individual_test.item_difficulty_index = 0.635
        metadata.assessment.individual_test.item_discrimination_index = 0.55
        metadata.assessment.exam.test_time_seconds = 3600
        metadata.assessment.records.append(
            AssessmentRecord(learner_id="s1", score=80, duration_seconds=1800)
        )
        metadata.validate()

    def test_all_violations_reported_at_once(self):
        metadata = MineMetadata()
        metadata.assessment.individual_test.item_difficulty_index = 2.0
        metadata.assessment.individual_test.item_discrimination_index = 2.0
        metadata.assessment.exam.test_time_seconds = -1
        with pytest.raises(MetadataValidationError) as excinfo:
            metadata.validate()
        assert len(excinfo.value.violations) == 3


class TestFigure1Tree:
    def test_root_line(self):
        lines = MineMetadata().tree_lines()
        assert lines[0] == "MINE SCORM Meta-data"

    def test_all_ten_sections_present(self):
        text = MineMetadata().render_tree()
        for name in MINE_SECTION_NAMES:
            assert name in text

    def test_assessment_subtree(self):
        text = MineMetadata().render_tree()
        for leaf in (
            "cognition_level",
            "question_style",
            "questionnaire",
            "individual_test",
            "exam",
            "item_difficulty_index",
            "item_discrimination_index",
            "distraction",
            "resumable",
            "display_type",
            "instructional_sensitivity_index",
        ):
            assert leaf in text

    def test_analysis_record_fields(self):
        record = AssessmentAnalysisRecord(
            question_number=2,
            difficulty=0.635,
            discrimination=0.55,
            signal="green",
        )
        assert record.question_number == 2
        assert record.statuses == []
