"""Error-hierarchy contracts and a larger-scale analysis sanity check."""

import random

import pytest

from repro.core import errors
from repro.core.errors import (
    AnalysisError,
    AssessmentError,
    BankError,
    DeliveryError,
    MetadataError,
    MetadataValidationError,
)
from repro.core.grouping import GroupSplit
from repro.core.question_analysis import (
    ExamineeResponses,
    QuestionSpec,
    analyze_cohort,
)
from repro.items.base import Picture


class TestErrorHierarchy:
    def test_every_error_is_an_assessment_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, AssessmentError)

    def test_subsystem_bases(self):
        assert issubclass(errors.EmptyCohortError, AnalysisError)
        assert issubclass(errors.GroupSplitError, AnalysisError)
        assert issubclass(errors.DuplicateIdError, BankError)
        assert issubclass(errors.NotFoundError, BankError)
        assert issubclass(errors.SessionStateError, DeliveryError)
        assert issubclass(errors.TimeLimitExceeded, DeliveryError)
        assert issubclass(errors.MetadataValidationError, MetadataError)
        assert issubclass(errors.ManifestError, errors.PackagingError)
        assert issubclass(errors.BlueprintError, errors.AuthoringError)

    def test_validation_error_lists_violations(self):
        error = MetadataValidationError(["first problem", "second problem"])
        assert error.violations == ["first problem", "second problem"]
        assert "first problem" in str(error)
        assert "second problem" in str(error)

    def test_one_base_catches_everything(self):
        with pytest.raises(AssessmentError):
            raise errors.TimeLimitExceeded("out of time")


class TestPicture:
    def test_defaults(self):
        picture = Picture(resource="a.gif")
        assert (picture.x, picture.y) == (0, 0)

    def test_empty_resource_rejected(self):
        from repro.core.errors import ItemError

        with pytest.raises(ItemError):
            Picture(resource="")


class TestLargeScaleAnalysis:
    """The analysis must stay correct (and fast enough to live inside an
    LMS request) at a realistic course scale: 500 examinees x 30
    questions."""

    def test_500_by_30(self):
        rng = random.Random(99)
        question_count = 30
        options = ("A", "B", "C", "D", "E")
        specs = [
            QuestionSpec(options=options, correct=rng.choice(options))
            for _ in range(question_count)
        ]
        responses = []
        for index in range(500):
            ability = rng.gauss(0, 1)
            selections = []
            for spec in specs:
                if rng.random() < 1 / (1 + 2.718 ** (-ability)):
                    selections.append(spec.correct)
                else:
                    selections.append(rng.choice(options))
            responses.append(ExamineeResponses.of(f"s{index:03d}", selections))
        analysis = analyze_cohort(responses, specs, split=GroupSplit())
        assert len(analysis.questions) == question_count
        assert len(analysis.high_group) == 125
        # with ability-driven responses every question discriminates
        # positively at this sample size
        assert all(q.discrimination > 0 for q in analysis.questions)
        # matrices account for every selection
        for question in analysis.questions:
            assert question.matrix.high_sum == 125
            assert question.matrix.low_sum == 125
