"""Tests for the SVG figure renderers (repro.core.svg_figures)."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.errors import AnalysisError
from repro.core.exam_analysis import time_vs_answered
from repro.core.signals import Signal
from repro.core.svg_figures import (
    svg_signal_board,
    svg_time_figure,
    svg_xy_chart,
)


def parse_svg(text):
    """SVG must be well-formed XML."""
    return ET.fromstring(text)


class TestSvgXyChart:
    def test_well_formed(self):
        root = parse_svg(svg_xy_chart([(0, 0), (1, 2), (2, 1)]))
        assert root.tag.endswith("svg")

    def test_one_circle_per_point(self):
        points = [(0, 0), (1, 2), (2, 1), (3, 5)]
        svg = svg_xy_chart(points)
        assert svg.count("<circle") == len(points)

    def test_line_path_when_connected(self):
        assert "<path" in svg_xy_chart([(0, 0), (1, 1)], connect=True)
        assert "<path" not in svg_xy_chart([(0, 0), (1, 1)], connect=False)

    def test_labels_escaped(self):
        svg = svg_xy_chart([(0, 0)], x_label="a<b>", title="c&d")
        assert "a&lt;b&gt;" in svg
        assert "c&amp;d" in svg
        parse_svg(svg)

    def test_empty_series_still_valid(self):
        parse_svg(svg_xy_chart([]))

    def test_too_small_rejected(self):
        with pytest.raises(AnalysisError):
            svg_xy_chart([(0, 0)], width=10, height=10)


class TestSvgTimeFigure:
    def test_limit_line_drawn(self):
        analysis = time_vs_answered([[5.0, 10.0]] * 4, time_limit_seconds=8.0)
        svg = svg_time_figure(analysis)
        parse_svg(svg)
        assert "stroke-dasharray" in svg

    def test_no_limit_no_line(self):
        analysis = time_vs_answered([[5.0, 10.0]] * 4)
        assert "stroke-dasharray" not in svg_time_figure(analysis)


class TestSvgSignalBoard:
    def test_one_light_per_question(self):
        signals = [Signal.GREEN, Signal.YELLOW, Signal.RED]
        svg = svg_signal_board(signals)
        parse_svg(svg)
        assert svg.count("<circle") == 3

    def test_colors_match_signals(self):
        svg = svg_signal_board([Signal.GREEN, Signal.RED])
        assert "#2ca02c" in svg
        assert "#d62728" in svg
        assert "#ffbf00" not in svg

    def test_wraps_rows(self):
        svg = svg_signal_board([Signal.GREEN] * 25, per_row=10)
        root = parse_svg(svg)
        # 3 rows of cell=34 plus chrome
        assert float(root.get("height")) > 34 * 3

    def test_question_numbers_rendered(self):
        svg = svg_signal_board([Signal.GREEN] * 3)
        assert ">1<" in svg and ">3<" in svg

    def test_empty_board_valid(self):
        parse_svg(svg_signal_board([]))

    def test_bad_per_row_rejected(self):
        with pytest.raises(AnalysisError):
            svg_signal_board([Signal.GREEN], per_row=0)
