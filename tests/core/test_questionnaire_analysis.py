"""Tests for questionnaire tabulation (repro.core.questionnaire_analysis)."""

import pytest

from repro.core.errors import AnalysisError, EmptyCohortError
from repro.core.questionnaire_analysis import tabulate_questionnaire

SCALE = ("strongly disagree", "disagree", "agree", "strongly agree")


class TestTabulate:
    def test_counts(self):
        responses = ["agree", "agree", "disagree", None, "strongly agree"]
        summary = tabulate_questionnaire("Paced well?", responses, SCALE)
        assert summary.counts["agree"] == 2
        assert summary.counts["disagree"] == 1
        assert summary.counts["strongly disagree"] == 0
        assert summary.respondents == 4
        assert summary.omissions == 1

    def test_response_rate(self):
        summary = tabulate_questionnaire(
            "Q?", ["agree", None, None, "agree"], SCALE
        )
        assert summary.response_rate == 0.5

    def test_proportion(self):
        summary = tabulate_questionnaire(
            "Q?", ["agree", "agree", "disagree"], SCALE
        )
        assert summary.proportion("agree") == pytest.approx(2 / 3)

    def test_proportion_unknown_label_rejected(self):
        summary = tabulate_questionnaire("Q?", ["agree"], SCALE)
        with pytest.raises(AnalysisError):
            summary.proportion("maybe")

    def test_mean_position(self):
        # positions: disagree=2, agree=3 -> mean 2.5
        summary = tabulate_questionnaire("Q?", ["disagree", "agree"], SCALE)
        assert summary.mean_position == pytest.approx(2.5)

    def test_free_text_has_no_mean(self):
        summary = tabulate_questionnaire("Q?", ["loved it", "meh"])
        assert summary.mean_position is None
        assert summary.counts == {"loved it": 1, "meh": 1}

    def test_off_scale_response_rejected(self):
        with pytest.raises(AnalysisError):
            tabulate_questionnaire("Q?", ["whatever"], SCALE)

    def test_empty_rejected(self):
        with pytest.raises(EmptyCohortError):
            tabulate_questionnaire("Q?", [])

    def test_duplicate_scale_rejected(self):
        with pytest.raises(AnalysisError):
            tabulate_questionnaire("Q?", ["a"], ("a", "a"))

    def test_all_omitted(self):
        summary = tabulate_questionnaire("Q?", [None, None], SCALE)
        assert summary.respondents == 0
        assert summary.response_rate == 0.0
        assert summary.mean_position is None


class TestRender:
    def test_render_shows_bars_and_counts(self):
        summary = tabulate_questionnaire(
            "Pace OK?", ["agree", "agree", "disagree"], SCALE
        )
        text = summary.render()
        assert "Pace OK?" in text
        assert "agree" in text
        assert "#" not in text.split("\n")[1]  # zero-count row has no bar
        assert "mean position" in text

    def test_render_free_text(self):
        summary = tabulate_questionnaire("Q?", ["x", "y", "x"])
        text = summary.render()
        assert "x" in text and "y" in text
        assert "mean position" not in text
