"""Differential harness: the columnar engine must be *exactly* equal to
the reference §4.1 pipeline — field for field, including rule outcomes
and signal colors — on randomized cohorts.

This is the correctness story for ``repro.core.columnar``: any drift
between ``fast_analyze_cohort`` and the reference ``analyze_cohort``
fails here before it can reach the delivery, simulation, or LMS layers.
"""

import pytest
from columnar_cases import make_random_cohort

from repro.core.columnar import (
    LiveCohortAnalysis,
    ResponseMatrix,
    fast_analyze_cohort,
)
from repro.core.errors import AnalysisError, EmptyCohortError
from repro.core.grouping import GroupSplit
from repro.core.question_analysis import (
    ExamineeResponses,
    QuestionSpec,
    analyze_cohort,
)

#: ≥ 20 seeded cohort shapes: sizes, option counts, skip rates, tie-heavy
#: score distributions, and split-fraction variations.
COHORT_CASES = [
    # (seed, size, questions, option_count, skip_rate, tie_heavy, fraction)
    (0, 8, 1, 2, 0.0, False, 0.25),
    (1, 12, 3, 3, 0.0, False, 0.25),
    (2, 20, 5, 4, 0.0, False, 0.25),
    (3, 44, 10, 5, 0.0, False, 0.25),  # the paper's class of 44
    (4, 60, 8, 4, 0.1, False, 0.25),
    (5, 75, 12, 5, 0.3, False, 0.25),
    (6, 100, 6, 4, 0.6, False, 0.25),  # skip-heavy
    (7, 100, 6, 4, 0.9, False, 0.25),  # nearly everything skipped
    (8, 50, 4, 4, 0.0, True, 0.25),  # tie-heavy
    (9, 80, 5, 5, 0.0, True, 0.25),
    (10, 120, 3, 3, 0.2, True, 0.25),  # ties + skips
    (11, 200, 10, 4, 0.0, True, 0.25),
    (12, 33, 7, 6, 0.05, False, 0.25),
    (13, 9, 2, 2, 0.5, False, 0.25),  # tiny cohort, heavy skips
    (14, 150, 20, 4, 0.0, False, 0.25),
    (15, 64, 1, 8, 0.15, False, 0.25),  # single question, many options
    (16, 40, 10, 2, 0.0, True, 0.25),  # binary items tie constantly
    (17, 44, 10, 5, 0.1, True, 0.27),  # Kelly's optimum fraction
    (18, 90, 8, 4, 0.0, False, 0.33),
    (19, 90, 8, 4, 0.25, True, 0.5),  # everyone in a group
    (20, 300, 15, 5, 0.05, False, 0.25),
    (21, 16, 4, 26, 0.0, False, 0.25),  # full A-Z option alphabet
    (22, 55, 9, 3, 0.4, True, 0.3),
    (23, 500, 5, 4, 0.0, True, 0.25),  # big tie-heavy cohort
    (24, 40, 520, 4, 0.0, False, 0.25),  # >512 questions: wide gather offsets
    (25, 30, 1000, 4, 0.0, False, 0.25),  # very wide exam
]


def both_engines(responses, specs, fraction=0.25):
    split = GroupSplit(fraction=fraction)
    fast = fast_analyze_cohort(responses, specs, split=split)
    reference = analyze_cohort(responses, specs, split=split, engine="reference")
    return fast, reference


@pytest.mark.parametrize(
    "seed,size,questions,option_count,skip_rate,tie_heavy,fraction",
    COHORT_CASES,
)
def test_engines_bit_identical(
    seed, size, questions, option_count, skip_rate, tie_heavy, fraction
):
    responses, specs = make_random_cohort(
        seed, size, questions, option_count, skip_rate, tie_heavy
    )
    fast, reference = both_engines(responses, specs, fraction)

    # whole-tree equality first (dataclass eq covers every nested field) ...
    assert fast == reference

    # ... then field-for-field so a failure pinpoints the drifting field
    assert fast.high_group == reference.high_group
    assert fast.low_group == reference.low_group
    assert fast.scores == reference.scores
    assert len(fast.questions) == len(reference.questions)
    for ours, theirs in zip(fast.questions, reference.questions):
        assert ours.number == theirs.number
        assert ours.matrix.options == theirs.matrix.options
        assert dict(ours.matrix.high) == dict(theirs.matrix.high)
        assert dict(ours.matrix.low) == dict(theirs.matrix.low)
        assert ours.matrix.correct == theirs.matrix.correct
        # exact float equality, not approx: the engines share analyze_matrix
        assert ours.p_high == theirs.p_high
        assert ours.p_low == theirs.p_low
        assert ours.difficulty == theirs.difficulty
        assert ours.discrimination == theirs.discrimination
        assert ours.signal is theirs.signal
        assert ours.rules.fired_rules == theirs.rules.fired_rules
        assert ours.rules.statuses == theirs.rules.statuses
        assert [m.explanation for m in ours.rules.matches] == [
            m.explanation for m in theirs.rules.matches
        ]
        assert ours.advice == theirs.advice
        assert ours.distraction == theirs.distraction


@pytest.mark.parametrize("spread_threshold", [0.05, 0.2, 0.5])
@pytest.mark.parametrize("seed", [30, 31])
def test_engines_agree_across_spread_thresholds(seed, spread_threshold):
    responses, specs = make_random_cohort(seed, 48, 6, 4, 0.1, True)
    fast = fast_analyze_cohort(
        responses, specs, spread_threshold=spread_threshold
    )
    reference = analyze_cohort(
        responses, specs, spread_threshold=spread_threshold, engine="reference"
    )
    assert fast == reference


def test_dispatch_default_is_columnar():
    responses, specs = make_random_cohort(40, 32, 4, 4, 0.1, False)
    assert analyze_cohort(responses, specs) == fast_analyze_cohort(
        responses, specs
    )


def test_unknown_engine_rejected():
    responses, specs = make_random_cohort(41, 8, 1, 2, 0.0, False)
    with pytest.raises(AnalysisError, match="unknown analysis engine"):
        analyze_cohort(responses, specs, engine="turbo")


class TestErrorParity:
    """Both engines must reject malformed cohorts the same way."""

    def test_empty_cohort(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        for engine in ("columnar", "reference"):
            with pytest.raises(EmptyCohortError):
                analyze_cohort([], specs, engine=engine)

    def test_no_questions(self):
        responses = [ExamineeResponses.of("s1", [])]
        for engine in ("columnar", "reference"):
            with pytest.raises(AnalysisError):
                analyze_cohort(responses, [], engine=engine)

    def test_ragged_selections(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")] * 3
        responses = [
            ExamineeResponses.of(f"s{i}", ["A", "B", "A"]) for i in range(7)
        ] + [ExamineeResponses.of("short", ["A"])]
        for engine in ("columnar", "reference"):
            with pytest.raises(AnalysisError, match="answered 1 questions"):
                analyze_cohort(responses, specs, engine=engine)

    def test_duplicate_examinee_ids(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        responses = [
            ExamineeResponses.of(f"s{i}", ["A"]) for i in range(7)
        ] + [ExamineeResponses.of("s0", ["B"])]
        for engine in ("columnar", "reference"):
            with pytest.raises(AnalysisError, match="duplicate examinee id"):
                analyze_cohort(responses, specs, engine=engine)

    def test_unknown_option_in_extreme_group(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        responses = [
            ExamineeResponses.of(f"s{i}", ["Z"]) for i in range(8)
        ]
        for engine in ("columnar", "reference"):
            with pytest.raises(AnalysisError, match="unknown option 'Z'"):
                analyze_cohort(responses, specs, engine=engine)

    def test_unknown_option_outside_groups_tolerated(self):
        # an unknown label on a mid-ranked examinee never enters the
        # option matrices; the reference engine accepts it, so the
        # columnar engine must too
        specs = [QuestionSpec(options=("A", "B"), correct="A")] * 2
        responses = (
            [ExamineeResponses.of(f"hi{i}", ["A", "A"]) for i in range(3)]
            + [ExamineeResponses.of("mid", ["A", "Z"])]
            + [ExamineeResponses.of(f"lo{i}", ["B", "B"]) for i in range(4)]
        )
        fast, reference = both_engines(responses, specs)
        assert fast == reference


class TestCapacityFallback:
    def test_overwide_question_falls_back_to_reference(self):
        # 300 options cannot be interned into one byte; the dispatch must
        # transparently produce the reference result instead of failing
        options = tuple(f"o{i}" for i in range(300))
        specs = [QuestionSpec(options=options, correct="o0")]
        responses = [
            ExamineeResponses.of(f"s{i}", [options[i % 300]]) for i in range(16)
        ]
        fast = fast_analyze_cohort(responses, specs)
        reference = analyze_cohort(responses, specs, engine="reference")
        assert fast == reference

    def test_response_matrix_itself_rejects_overwide_questions(self):
        from repro.core.columnar import ColumnarCapacityError

        options = tuple(f"o{i}" for i in range(300))
        with pytest.raises(ColumnarCapacityError):
            ResponseMatrix([QuestionSpec(options=options, correct="o0")])


class TestIncrementalDifferential:
    """The live analyzer must track the from-scratch result at every step."""

    def test_add_sitting_matches_full_recompute_at_each_prefix(self):
        responses, specs = make_random_cohort(50, 40, 5, 4, 0.2, True)
        live = LiveCohortAnalysis(specs)
        for count, response in enumerate(responses, start=1):
            live.add_sitting(response)
            if count >= 8:  # enough for a 25% split
                expected = analyze_cohort(
                    responses[:count], specs, engine="reference"
                )
                assert live.analysis() == expected

    def test_invalidate_matches_recompute_without_examinee(self):
        responses, specs = make_random_cohort(51, 30, 4, 4, 0.0, False)
        live = LiveCohortAnalysis(specs)
        for response in responses:
            live.add_sitting(response)
        dropped = responses[7].examinee_id
        assert live.invalidate(dropped) is True
        assert dropped not in live
        remaining = [r for r in responses if r.examinee_id != dropped]
        assert live.analysis() == analyze_cohort(
            remaining, specs, engine="reference"
        )

    def test_invalidate_unknown_id_is_a_noop(self):
        responses, specs = make_random_cohort(52, 12, 2, 3, 0.0, False)
        live = LiveCohortAnalysis(specs)
        for response in responses:
            live.add_sitting(response)
        before = live.analysis()
        assert live.invalidate("nobody") is False
        assert live.analysis() == before

    def test_resubmission_via_invalidate_then_add(self):
        responses, specs = make_random_cohort(53, 20, 3, 4, 0.0, False)
        live = LiveCohortAnalysis(specs)
        for response in responses:
            live.add_sitting(response)
        resat = ExamineeResponses.of(
            responses[0].examinee_id, [specs[i].correct for i in range(3)]
        )
        live.invalidate(resat.examinee_id)
        live.add_sitting(resat)
        expected = analyze_cohort(
            responses[1:] + [resat], specs, engine="reference"
        )
        assert live.analysis() == expected

    def test_live_rejects_ragged_and_duplicate_sittings(self):
        responses, specs = make_random_cohort(54, 10, 3, 4, 0.0, False)
        live = LiveCohortAnalysis(specs)
        live.add_sitting(responses[0])
        with pytest.raises(AnalysisError, match="answered 1 questions"):
            live.add_sitting(ExamineeResponses.of("ragged", ["A"]))
        with pytest.raises(AnalysisError, match="duplicate examinee id"):
            live.add_sitting(responses[0])

    def test_analysis_is_cached_until_cohort_changes(self):
        responses, specs = make_random_cohort(55, 16, 2, 4, 0.0, False)
        live = LiveCohortAnalysis(specs)
        for response in responses:
            live.add_sitting(response)
        first = live.analysis()
        assert live.analysis() is first  # cached object served
        live.invalidate()  # cache drop only
        second = live.analysis()
        assert second is not first
        assert second == first


class TestStdlibFallback:
    """The columnar engine must stay bit-identical without numpy: the
    pure-stdlib sweep (translate + map) replaces every vectorized kernel
    when ``repro.core.columnar._np`` is None."""

    FALLBACK_CASES = [0, 3, 6, 8, 19, 23]  # indices into COHORT_CASES

    @pytest.mark.parametrize("case", FALLBACK_CASES)
    def test_engines_bit_identical_without_numpy(self, case, monkeypatch):
        import repro.core.columnar as columnar

        monkeypatch.setattr(columnar, "_np", None)
        seed, size, questions, options, skip, ties, fraction = COHORT_CASES[
            case
        ]
        responses, specs = make_random_cohort(
            seed, size, questions, options, skip, ties
        )
        fast, reference = both_engines(responses, specs, fraction)
        assert fast == reference

    def test_incremental_without_numpy(self, monkeypatch):
        import repro.core.columnar as columnar

        monkeypatch.setattr(columnar, "_np", None)
        responses, specs = make_random_cohort(60, 30, 5, 4, 0.1, True)
        live = LiveCohortAnalysis(specs)
        for response in responses:
            live.add_sitting(response)
        assert live.analysis() == analyze_cohort(
            responses, specs, engine="reference"
        )


class TestVectorEncodeFallbacks:
    """Cohort shapes the vectorized encode cannot take must degrade to the
    per-cell path, not change results: multi-character labels, non-ASCII
    labels, skips, stray unknown labels."""

    def _bulk(self, size=60):
        # large enough that _bulk_encode tries the vectorized path
        options = ("alpha", "beta", "gamma", "delta")
        specs = [
            QuestionSpec(options=options, correct=options[i % 4])
            for i in range(40)
        ]
        import random

        rng = random.Random(77)
        responses = [
            ExamineeResponses.of(
                f"s{i:03d}", [rng.choice(options) for _ in range(40)]
            )
            for i in range(size)
        ]
        return responses, specs

    def test_multi_character_labels(self):
        responses, specs = self._bulk()
        fast, reference = both_engines(responses, specs)
        assert fast == reference

    def test_non_ascii_labels(self):
        options = ("α", "β", "γ", "δ")
        specs = [
            QuestionSpec(options=options, correct=options[i % 4])
            for i in range(40)
        ]
        import random

        rng = random.Random(78)
        responses = [
            ExamineeResponses.of(
                f"s{i:03d}", [rng.choice(options) for _ in range(40)]
            )
            for i in range(60)
        ]
        fast, reference = both_engines(responses, specs)
        assert fast == reference

    def test_single_skip_forces_fallback(self):
        responses, specs = make_random_cohort(79, 80, 40, 4, 0.0, False)
        damaged = list(responses)
        damaged[17] = ExamineeResponses.of(
            damaged[17].examinee_id,
            [None] + list(damaged[17].selections[1:]),
        )
        fast, reference = both_engines(damaged, specs)
        assert fast == reference

    @staticmethod
    def _wide_heterogeneous_cohort(questions=520, size=40, seed=85):
        # option *order* rotates with period 3 (3 does not divide 512),
        # so question q's label->code table differs from question
        # (q - 512)'s: a wrapped gather decodes through the wrong table
        # and yields wrong codes, not a detectable _UNSEEN marker
        import random

        base = ("A", "B", "C", "D")

        def rotated(index):
            shift = index % 3
            return base[shift:] + base[:shift]

        specs = [
            QuestionSpec(options=rotated(i), correct=rotated(i)[0])
            for i in range(questions)
        ]
        rng = random.Random(seed)
        responses = [
            ExamineeResponses.of(
                f"s{i:03d}", [rng.choice(s.options) for s in specs]
            )
            for i in range(size)
        ]
        return responses, specs

    def test_wide_exam_vector_encode_is_exact(self):
        # regression: uint16 gather offsets wrapped past question 512
        # (512 * 128 = 65536), decoding wide exams through other
        # questions' interning tables and silently corrupting results
        import repro.core.columnar as columnar

        if columnar._np is None:  # pragma: no cover
            pytest.skip("numpy unavailable")
        responses, specs = self._wide_heterogeneous_cohort()
        matrix = ResponseMatrix(specs)
        selections = [r.selections for r in responses]
        encoded = matrix._vector_encode(selections)
        assert encoded is not None  # the fast shape must actually engage
        assert encoded == b"".join(map(matrix._encode_row, selections))

    def test_wide_exam_engines_bit_identical(self):
        responses, specs = self._wide_heterogeneous_cohort()
        fast, reference = both_engines(responses, specs)
        assert fast == reference

    def test_stray_label_outside_groups_forces_interning(self):
        # a mid-scoring examinee picks a label no question offers: both
        # engines must tolerate it (it never lands in an extreme group)
        responses, specs = make_random_cohort(80, 81, 6, 4, 0.0, True)
        scores = analyze_cohort(responses, specs, engine="reference").scores
        ranked = sorted(responses, key=lambda r: scores[r.examinee_id])
        mid = ranked[len(ranked) // 2]
        altered = [
            ExamineeResponses.of(
                r.examinee_id, ["ZZZ"] + list(r.selections[1:])
            )
            if r is mid
            else r
            for r in responses
        ]
        fast, reference = both_engines(altered, specs)
        assert fast == reference
