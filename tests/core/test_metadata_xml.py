"""Tests for the metadata XML binding (repro.core.metadata_xml)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cognition import CognitionLevel
from repro.core.errors import MetadataError
from repro.core.metadata import (
    AssessmentAnalysisRecord,
    AssessmentRecord,
    DisplayType,
    MineMetadata,
    QuestionStyle,
)
from repro.core.metadata_xml import MINE_NAMESPACE, from_xml, to_xml


def rich_document():
    metadata = MineMetadata()
    metadata.general.identifier = "exam-001"
    metadata.general.title = "Data Structures Midterm"
    metadata.general.keywords = ["trees", "hashing"]
    metadata.lifecycle.version = "2.1"
    metadata.lifecycle.contributors = ["J. Hung", "T. Shih"]
    metadata.meta_metadata.created_by = "MINE Lab"
    metadata.technical.size_bytes = 2048
    metadata.technical.location = "exams/midterm.xml"
    metadata.educational.difficulty = "medium"
    metadata.rights.cost = True
    metadata.relation.kind = "isBasedOn"
    metadata.relation.target_identifier = "exam-000"
    metadata.annotation.entity = "reviewer"
    metadata.annotation.description = "approved"
    metadata.classification.taxon_path = ["CS", "Data Structures"]
    metadata.assessment.cognition_level = CognitionLevel.ANALYSIS
    metadata.assessment.question_style = QuestionStyle.MULTIPLE_CHOICE
    metadata.assessment.questionnaire.question = "What is a B-tree?"
    metadata.assessment.questionnaire.resumable = False
    metadata.assessment.questionnaire.display_type = DisplayType.RANDOM_ORDER
    metadata.assessment.individual_test.answer = "C"
    metadata.assessment.individual_test.subject = "trees"
    metadata.assessment.individual_test.item_difficulty_index = 0.635
    metadata.assessment.individual_test.item_discrimination_index = 0.55
    metadata.assessment.individual_test.distraction = "option C unused"
    metadata.assessment.individual_test.cognition_level = CognitionLevel.KNOWLEDGE
    metadata.assessment.exam.average_time_seconds = 1800.5
    metadata.assessment.exam.test_time_seconds = 3600
    metadata.assessment.exam.instructional_sensitivity_index = 0.4
    metadata.assessment.records = [
        AssessmentRecord("s1", "2004-03-01", 80.0, 1650.0),
        AssessmentRecord("s2", "2004-03-01", 55.0, 2400.0),
    ]
    metadata.assessment.analyses = [
        AssessmentAnalysisRecord(
            question_number=2,
            difficulty=0.635,
            discrimination=0.55,
            signal="green",
            statuses=["good"],
            advice="keep it",
        )
    ]
    return metadata


class TestRoundTrip:
    def test_rich_document_round_trips(self):
        original = rich_document()
        restored = from_xml(to_xml(original))
        assert restored == original

    def test_empty_document_round_trips(self):
        original = MineMetadata()
        assert from_xml(to_xml(original)) == original

    def test_xml_is_namespaced(self):
        assert MINE_NAMESPACE in to_xml(MineMetadata())

    def test_booleans_serialized_as_words(self):
        xml = to_xml(rich_document())
        assert "false" in xml  # resumable=False
        assert "true" in xml  # rights.cost=True

    @given(
        difficulty=st.floats(min_value=0, max_value=1),
        discrimination=st.floats(min_value=-1, max_value=1),
    )
    def test_indices_round_trip_exactly(self, difficulty, discrimination):
        metadata = MineMetadata()
        metadata.assessment.individual_test.item_difficulty_index = difficulty
        metadata.assessment.individual_test.item_discrimination_index = (
            discrimination
        )
        restored = from_xml(to_xml(metadata))
        assert (
            restored.assessment.individual_test.item_difficulty_index == difficulty
        )
        assert (
            restored.assessment.individual_test.item_discrimination_index
            == discrimination
        )

    @given(title=st.text(min_size=0, max_size=80))
    def test_arbitrary_titles_round_trip(self, title):
        # control characters are not representable in XML 1.0; skip them
        if any(ord(ch) < 32 and ch not in "\t\n\r" for ch in title):
            return
        metadata = MineMetadata()
        metadata.general.title = title
        restored = from_xml(to_xml(metadata))
        # ElementTree normalizes \r to \n per XML line-ending rules
        assert restored.general.title == title.replace("\r\n", "\n").replace(
            "\r", "\n"
        )


class TestParsingErrors:
    def test_malformed_xml_rejected(self):
        with pytest.raises(MetadataError):
            from_xml("<not closed")

    def test_wrong_root_rejected(self):
        with pytest.raises(MetadataError):
            from_xml("<somethingElse/>")

    def test_wrong_namespace_rejected(self):
        with pytest.raises(MetadataError):
            from_xml('<mineMetadata xmlns="http://other"/>')

    def test_bad_number_rejected(self):
        xml = (
            f'<mineMetadata xmlns="{MINE_NAMESPACE}">'
            "<assessment><individualTest>"
            "<itemDifficultyIndex>abc</itemDifficultyIndex>"
            "</individualTest></assessment></mineMetadata>"
        )
        with pytest.raises(MetadataError):
            from_xml(xml)

    def test_bad_boolean_rejected(self):
        xml = (
            f'<mineMetadata xmlns="{MINE_NAMESPACE}">'
            "<assessment><questionnaire>"
            "<resumable>maybe</resumable>"
            "</questionnaire></assessment></mineMetadata>"
        )
        with pytest.raises(MetadataError):
            from_xml(xml)

    def test_unknown_question_style_rejected(self):
        xml = (
            f'<mineMetadata xmlns="{MINE_NAMESPACE}">'
            "<assessment><questionStyle>riddle</questionStyle>"
            "</assessment></mineMetadata>"
        )
        with pytest.raises(MetadataError):
            from_xml(xml)

    def test_unknown_display_type_rejected(self):
        xml = (
            f'<mineMetadata xmlns="{MINE_NAMESPACE}">'
            "<assessment><questionnaire>"
            "<displayType>spiral</displayType>"
            "</questionnaire></assessment></mineMetadata>"
        )
        with pytest.raises(MetadataError):
            from_xml(xml)

    def test_partial_document_parses_with_defaults(self):
        xml = f'<mineMetadata xmlns="{MINE_NAMESPACE}"/>'
        metadata = from_xml(xml)
        assert metadata.general.language == "en"
        assert metadata.assessment.questionnaire.resumable is True

    def test_accepts_boolean_variants(self):
        xml = (
            f'<mineMetadata xmlns="{MINE_NAMESPACE}">'
            "<rights><cost>1</cost>"
            "<copyrightAndOtherRestrictions>no</copyrightAndOtherRestrictions>"
            "</rights></mineMetadata>"
        )
        metadata = from_xml(xml)
        assert metadata.rights.cost is True
        assert metadata.rights.copyright_and_other_restrictions is False

    def test_cognition_level_letter_accepted(self):
        xml = (
            f'<mineMetadata xmlns="{MINE_NAMESPACE}">'
            "<assessment><cognitionLevel>F</cognitionLevel>"
            "</assessment></mineMetadata>"
        )
        metadata = from_xml(xml)
        assert metadata.assessment.cognition_level is CognitionLevel.EVALUATION
