"""Tests for significance testing (repro.core.significance)."""

import random

import pytest

from repro.core.errors import AnalysisError
from repro.core.significance import (
    discrimination_significance,
    isi_significance,
    proportion_confidence_interval,
)


class TestDiscriminationSignificance:
    def test_strong_discrimination_significant(self):
        # PH = 18/20, PL = 4/20: clearly real
        result = discrimination_significance(18, 20, 4, 20)
        assert result.significant
        assert result.statistic > 3

    def test_no_discrimination_not_significant(self):
        result = discrimination_significance(10, 20, 10, 20)
        assert not result.significant
        assert result.p_value == pytest.approx(0.5, abs=0.01)

    def test_paper_question_2_is_significant(self):
        """Worked example no.2: 10/11 vs 4/11 — a real difference even
        in a class of 44."""
        result = discrimination_significance(10, 11, 4, 11)
        assert result.significant

    def test_paper_question_6_is_not_significant(self):
        """Worked example no.6: 5/11 vs 4/11 — indistinguishable from
        noise, supporting the paper's 'eliminate or fix' verdict."""
        result = discrimination_significance(5, 11, 4, 11)
        assert not result.significant

    def test_inverted_item_far_from_significant(self):
        result = discrimination_significance(4, 20, 18, 20)
        assert result.p_value > 0.99

    def test_degenerate_all_correct(self):
        result = discrimination_significance(20, 20, 20, 20)
        assert result.p_value == 1.0

    def test_bad_counts_rejected(self):
        with pytest.raises(AnalysisError):
            discrimination_significance(5, 0, 1, 10)
        with pytest.raises(AnalysisError):
            discrimination_significance(11, 10, 1, 10)

    def test_bad_alpha_rejected(self):
        with pytest.raises(AnalysisError):
            discrimination_significance(5, 10, 1, 10, alpha=0)


class TestIsiSignificance:
    def test_clear_teaching_effect(self):
        pre = [False] * 30 + [True] * 10
        post = [True] * 35 + [False] * 5
        result = isi_significance(pre, post)
        assert result.significant

    def test_no_change_not_significant(self):
        pre = [True, False] * 20
        post = list(pre)
        result = isi_significance(pre, post)
        assert result.p_value == 1.0

    def test_balanced_churn_not_significant(self):
        rng = random.Random(3)
        pre, post = [], []
        for _ in range(60):
            before = rng.random() < 0.5
            # flip with equal probability in both directions
            after = (not before) if rng.random() < 0.3 else before
            pre.append(before)
            post.append(after)
        result = isi_significance(pre, post)
        assert result.p_value > 0.05

    def test_regression_not_significant_for_improvement(self):
        pre = [True] * 20
        post = [False] * 15 + [True] * 5
        result = isi_significance(pre, post)
        assert not result.significant  # one-sided: improvement only

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            isi_significance([True], [True, False])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            isi_significance([], [])


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = proportion_confidence_interval(80, 100)
        assert low < 0.8 < high

    def test_narrows_with_sample_size(self):
        narrow = proportion_confidence_interval(800, 1000)
        wide = proportion_confidence_interval(8, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_bounded_by_unit_interval(self):
        low, high = proportion_confidence_interval(0, 10)
        assert low == 0.0
        assert 0.0 <= high <= 1.0
        low, high = proportion_confidence_interval(10, 10)
        assert high == pytest.approx(1.0)

    def test_paper_worked_example_interval(self):
        """P = 0.8 with N = 1000: a tight interval around 0.8."""
        low, high = proportion_confidence_interval(800, 1000)
        assert low > 0.77
        assert high < 0.83

    def test_higher_confidence_wider(self):
        ninety = proportion_confidence_interval(50, 100, confidence=0.90)
        ninety_nine = proportion_confidence_interval(50, 100, confidence=0.99)
        assert (ninety_nine[1] - ninety_nine[0]) > (ninety[1] - ninety[0])

    def test_bad_confidence_rejected(self):
        with pytest.raises(AnalysisError):
            proportion_confidence_interval(5, 10, confidence=1.0)
