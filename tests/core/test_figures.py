"""Tests for the ASCII figure renderers (repro.core.figures)."""

import pytest

from repro.core.errors import AnalysisError
from repro.core.exam_analysis import (
    score_vs_difficulty,
    time_vs_answered,
)
from repro.core.figures import (
    render_histogram,
    render_score_difficulty_figure,
    render_time_figure,
    render_xy_chart,
)
from repro.core.question_analysis import (
    ExamineeResponses,
    QuestionSpec,
    analyze_cohort,
)


class TestXYChart:
    def test_renders_axes_and_labels(self):
        chart = render_xy_chart(
            [(0, 0), (10, 5)], x_label="time", y_label="answered"
        )
        assert "time" in chart
        assert "answered" in chart
        assert "+" in chart

    def test_marker_appears(self):
        chart = render_xy_chart([(0, 0), (1, 1)], marker="@")
        assert "@" in chart

    def test_empty_series(self):
        chart = render_xy_chart([], x_label="x", y_label="y")
        assert "no data" in chart

    def test_single_point_does_not_crash(self):
        chart = render_xy_chart([(5.0, 5.0)])
        assert "*" in chart

    def test_too_small_rejected(self):
        with pytest.raises(AnalysisError):
            render_xy_chart([(0, 0)], width=2, height=2)

    def test_dimensions_respected(self):
        chart = render_xy_chart([(0, 0), (1, 1)], width=30, height=6)
        lines = chart.splitlines()
        # header + 6 grid rows + axis + footer
        assert len(lines) == 9
        assert all(len(line) <= 32 for line in lines[1:7])


class TestTimeFigure:
    def test_includes_verdict_with_limit(self):
        analysis = time_vs_answered([[5.0, 10.0]] * 5, time_limit_seconds=20.0)
        text = render_time_figure(analysis)
        assert "ENOUGH" in text
        assert "time limit" in text

    def test_no_verdict_without_limit(self):
        analysis = time_vs_answered([[5.0, 10.0]] * 5)
        text = render_time_figure(analysis)
        assert "time limit" not in text

    def test_not_enough_verdict(self):
        analysis = time_vs_answered([[50.0]] * 5, time_limit_seconds=20.0)
        assert "NOT ENOUGH" in render_time_figure(analysis)


class TestScoreDifficultyFigure:
    def test_renders_chart_and_histogram(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")] * 2
        responses = [
            ExamineeResponses.of(f"s{i}", ["A", "A"] if i < 10 else ["B", "B"])
            for i in range(20)
        ]
        cohort = analyze_cohort(responses, specs)
        flags = {
            r.examinee_id: [s == "A" for s in r.selections] for r in responses
        }
        analysis = score_vs_difficulty(cohort.scores, flags, cohort.questions)
        text = render_score_difficulty_figure(analysis)
        assert "difficulty P" in text
        assert "examinees per score" in text


class TestHistogram:
    def test_bars_scaled(self):
        text = render_histogram([("a", 10), ("b", 5)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_counts_shown(self):
        text = render_histogram([("x", 3)])
        assert " 3" in text

    def test_title(self):
        assert render_histogram([], title="scores").startswith("scores")

    def test_empty(self):
        assert "no data" in render_histogram([])

    def test_zero_counts(self):
        text = render_histogram([("a", 0), ("b", 0)])
        assert "a" in text and "b" in text
