"""Tests for class-level concept performance (repro.core.concept_mastery)."""

import pytest

from repro.core.concept_mastery import concept_performance
from repro.core.errors import AnalysisError
from repro.core.question_analysis import (
    ExamineeResponses,
    QuestionSpec,
    analyze_cohort,
)


def cohort_with_concepts():
    """20 examinees; 'easy' concept everyone knows, 'hard' nobody does,
    'split' only the strong half knows."""
    specs = [
        QuestionSpec(options=("A", "B"), correct="A", subject="easy"),
        QuestionSpec(options=("A", "B"), correct="A", subject="split"),
        QuestionSpec(options=("A", "B"), correct="A", subject="hard"),
    ]
    responses = []
    for index in range(20):
        strong = index < 10
        responses.append(
            ExamineeResponses.of(
                f"s{index:02d}",
                [
                    "A",  # easy: everyone right
                    "A" if strong else "B",  # split
                    "B",  # hard: everyone wrong
                ],
            )
        )
    return analyze_cohort(responses, specs), specs


class TestConceptPerformance:
    def test_one_row_per_concept(self):
        cohort, specs = cohort_with_concepts()
        rows = concept_performance(cohort, specs)
        assert {row.concept for row in rows} == {"easy", "split", "hard"}

    def test_rates_reflect_construction(self):
        cohort, specs = cohort_with_concepts()
        rows = {row.concept: row for row in concept_performance(cohort, specs)}
        assert rows["easy"].high_group_rate == 1.0
        assert rows["easy"].low_group_rate == 1.0
        assert rows["split"].high_group_rate == 1.0
        assert rows["split"].low_group_rate == 0.0
        assert rows["hard"].high_group_rate == 0.0

    def test_remediation_flags(self):
        cohort, specs = cohort_with_concepts()
        rows = {row.concept: row for row in concept_performance(cohort, specs)}
        assert not rows["easy"].needs_remedial_course
        assert rows["split"].needs_remedial_course  # low group lost it
        assert not rows["split"].needs_reteaching  # high group fine
        assert rows["hard"].needs_reteaching  # everyone lost it

    def test_sorted_weakest_low_group_first(self):
        cohort, specs = cohort_with_concepts()
        rows = concept_performance(cohort, specs)
        rates = [row.low_group_rate for row in rows]
        assert rates == sorted(rates)

    def test_question_numbers_tracked(self):
        cohort, specs = cohort_with_concepts()
        rows = {row.concept: row for row in concept_performance(cohort, specs)}
        assert rows["split"].question_numbers == (2,)

    def test_untagged_grouped(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")]
        responses = [
            ExamineeResponses.of(f"s{i}", ["A" if i < 4 else "B"])
            for i in range(8)
        ]
        cohort = analyze_cohort(responses, specs)
        rows = concept_performance(cohort, specs)
        assert rows[0].concept == "(untagged)"

    def test_spec_mismatch_rejected(self):
        cohort, specs = cohort_with_concepts()
        with pytest.raises(AnalysisError):
            concept_performance(cohort, specs[:1])
