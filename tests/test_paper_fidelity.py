"""The paper-fidelity contract: every literal number and claim the paper
prints, asserted in one file.

This suite is the quick way to audit the reproduction: each test quotes
the paper and checks our implementation reproduces it exactly (to the
paper's own rounding).  The benchmarks regenerate the same artifacts
with timing; this file is the pure fidelity contract.
"""

import pytest

from repro.core.cognition import COGNITIVE_LEVELS, CognitionLevel, Domain
from repro.core.grouping import (
    ACCEPTABLE_RANGE,
    KELLY_OPTIMUM,
    PAPER_FRACTION,
    GroupSplit,
)
from repro.core.indices import difficulty_index
from repro.core.metadata import MINE_SECTION_NAMES, QuestionStyle
from repro.core.question_analysis import analyze_matrix
from repro.core.rules import (
    DEFAULT_SPREAD_THRESHOLD,
    OptionMatrix,
    Status,
    evaluate_rules,
)
from repro.core.signals import DEFAULT_POLICY, Signal


class TestSection3_1_Bloom:
    def test_three_domains(self):
        """'Bloom proposed the taxonomy of educational objectives into
        three domain ... cognitive domain, psychomotor domain and
        affective domain.'"""
        assert len(list(Domain)) == 3

    def test_six_cognitive_levels(self):
        """'In cognitive domain, it includes knowledge, comprehension,
        application, analysis, synthesis, and evaluation.'"""
        assert [level.name.lower() for level in COGNITIVE_LEVELS] == [
            "knowledge",
            "comprehension",
            "application",
            "analysis",
            "synthesis",
            "evaluation",
        ]

    def test_letters_a_to_f(self):
        """§4.2.2 (1): 'Cognition level divided into six level, each named
        from A to F.'"""
        assert [level.letter for level in COGNITIVE_LEVELS] == list("ABCDEF")


class TestSection3_2_QuestionStyles:
    def test_the_six_styles(self):
        """Essay, True False Item, Multiple Choice, Match Item,
        Completion Item, Questionnaire."""
        assert len(list(QuestionStyle)) == 6


class TestFigure1:
    def test_ten_sections(self):
        """'Our proposed assessment tree consists of ten sections.'"""
        assert len(MINE_SECTION_NAMES) == 10


class TestSection3_3_DifficultyExample:
    def test_r800_n1000(self):
        """'For example, R=800, N=1000, then P=R/N=800/1000=0.8 (80%)'"""
        assert difficulty_index(800, 1000) == 0.8


class TestSection4_1_1_KellyAndSplit:
    def test_kelly_1939(self):
        """'Prof. Kelly said that the best percentage is 27%, and the
        acceptable percentage is 25%-33% (Kelly, 1939).'"""
        assert KELLY_OPTIMUM == 0.27
        assert ACCEPTABLE_RANGE == (0.25, 0.33)

    def test_paper_uses_25_percent(self):
        """'We tried to define the percentage 25% in this paper.'"""
        assert PAPER_FRACTION == 0.25
        assert GroupSplit().fraction == 0.25

    def test_class_of_44_gives_groups_of_11(self):
        """'Assume that the class size is 44 students, the high score
        group and low score group is 11.'"""
        assert GroupSplit().group_size(44) == 11


class TestSection4_1_2_Examples:
    def test_example_1(self):
        """'There are 6 people choose option A, 4 people choose option B,
        0 people choose option C ... The option C didn't attract any one
        of the low score group ... the option's allure is low.'"""
        outcome = evaluate_rules(
            OptionMatrix.from_rows([12, 2, 0, 3, 3], [6, 4, 0, 5, 5], "A")
        )
        match = next(m for m in outcome.matches if m.rule == 1)
        assert match.options == ("C",)

    def test_example_2(self):
        """'the people who choose option C in low score group is greater
        than high score group ... option E is wrong, but the people in
        high score group is greater than low score group.'"""
        outcome = evaluate_rules(
            OptionMatrix.from_rows([1, 2, 10, 0, 7], [2, 2, 13, 1, 2], "C")
        )
        match = next(m for m in outcome.matches if m.rule == 2)
        assert set(match.options) == {"C", "E"}

    def test_example_3_arithmetic(self):
        """'LM=5, Lm=2, and LS=20. |LM-Lm|=3 <= 4=LS*20%.'"""
        matrix = OptionMatrix.from_rows(
            [15, 2, 2, 0, 1], [5, 4, 5, 4, 2], "A"
        )
        assert matrix.low_max == 5
        assert matrix.low_min == 2
        assert matrix.low_sum == 20
        assert abs(matrix.low_max - matrix.low_min) == 3
        assert matrix.low_sum * DEFAULT_SPREAD_THRESHOLD == 4
        assert evaluate_rules(matrix).rule_fired(3)

    def test_example_4_arithmetic(self):
        """'LM=5, Lm=2, LS=20, HM=6, Hm=2 and HS=20. |LM-Lm|=3 <= 4 ...
        and |HM-Hm|=4 <= HS*20%.'"""
        matrix = OptionMatrix.from_rows(
            [4, 4, 4, 2, 6], [5, 4, 5, 4, 2], "A"
        )
        assert (matrix.high_max, matrix.high_min, matrix.high_sum) == (6, 2, 20)
        assert (matrix.low_max, matrix.low_min, matrix.low_sum) == (5, 2, 20)
        outcome = evaluate_rules(matrix)
        assert outcome.rule_fired(3) and outcome.rule_fired(4)

    def test_twenty_percent_threshold(self):
        assert DEFAULT_SPREAD_THRESHOLD == 0.20


class TestTable2:
    def test_rule_one_status(self):
        outcome = evaluate_rules(
            OptionMatrix.from_rows([12, 2, 0, 3, 3], [6, 4, 0, 5, 5], "A")
        )
        assert Status.LOW_ALLURE in outcome.statuses

    def test_rule_four_statuses(self):
        outcome = evaluate_rules(
            OptionMatrix.from_rows([4, 4, 4, 2, 6], [5, 4, 5, 4, 2], "A")
        )
        assert Status.LOW_GROUP_LACKS_CONCEPT in outcome.statuses
        assert Status.HIGH_GROUP_LACKS_CONCEPT in outcome.statuses


class TestTable3AndWorkedQuestions:
    def test_band_thresholds(self):
        """'Good Green Higher 0.3 / Fix Yellow 0.2-0.29 /
        Eliminate or fix Red Lower 0.19'"""
        assert DEFAULT_POLICY.green_min == 0.30
        assert DEFAULT_POLICY.yellow_min == 0.20
        assert Signal.GREEN.status == "Good"
        assert Signal.YELLOW.status == "Fix"
        assert Signal.RED.status == "Eliminate or fix"

    def test_question_no_2(self):
        """'PH=10/11=0.909≅0.91  PL=4/11=0.36 / D=PH-PL=0.91-0.36=0.55
        D>0.3 The signal is green. / P=(PH+PL)/2=(0.91+0.36)/2=0.635'"""
        analysis = analyze_matrix(
            OptionMatrix.from_rows([0, 0, 10, 1], [3, 2, 4, 2], "C"),
            high_size=11,
            low_size=11,
            number=2,
        )
        assert round(analysis.p_high, 2) == 0.91
        assert round(analysis.p_low, 2) == 0.36
        assert round(analysis.discrimination, 2) == 0.55
        assert analysis.discrimination > 0.3
        assert analysis.signal is Signal.GREEN
        # the paper's 0.635 comes from averaging the rounded 0.91/0.36
        assert (0.91 + 0.36) / 2 == 0.635

    def test_question_no_6(self):
        """'PH=5/11=0.45  PL=4/11=0.36 / D=PH-PL=0.45-0.36=0.09 /
        P=(PH+PL)/2=(0.45+0.36)/2=0.41 / Rule1: ... The allure of option
        A is low.'"""
        analysis = analyze_matrix(
            OptionMatrix.from_rows([1, 1, 4, 5], [0, 2, 4, 4], "D"),
            high_size=11,
            low_size=11,
            number=6,
        )
        assert round(analysis.p_high, 2) == 0.45
        assert round(analysis.p_low, 2) == 0.36
        assert round(analysis.discrimination, 2) == 0.09
        assert round((0.45 + 0.36) / 2, 2) == 0.41
        assert analysis.signal is Signal.RED
        rule1 = next(m for m in analysis.rules.matches if m.rule == 1)
        assert rule1.options == ("A",)


class TestSection4_2_2_Definitions:
    def test_sum_f3_example(self):
        """'ex. SUM(F3)=3, there are 3 questions of evaluation level in
        concept 3.'"""
        from repro.core.spec_table import SpecificationTable, TaggedQuestion

        table = SpecificationTable.from_questions(
            [
                TaggedQuestion(n, "concept3", CognitionLevel.EVALUATION)
                for n in (1, 2, 3)
            ]
        )
        assert table.count("concept3", CognitionLevel.EVALUATION) == 3

    def test_sum_a10_f10_example(self):
        """'SUM(A10-F10)=8, there are 8 questions (From Knowledge to
        Evaluation level) in concept 10.'"""
        from repro.core.spec_table import SpecificationTable, TaggedQuestion

        levels = list(CognitionLevel)
        table = SpecificationTable.from_questions(
            [
                TaggedQuestion(n, "concept10", levels[n % 6])
                for n in range(8)
            ]
        )
        assert table.concept_sum("concept10") == 8


class TestSection4_2_3_Analyses:
    def test_concept_lost(self):
        """'If (A1|B1|C1|D1|E1|F1)=FALSE, Concept 1 lost in the exam.'"""
        from repro.core.spec_table import SpecificationTable, TaggedQuestion

        table = SpecificationTable.from_questions(
            [TaggedQuestion(1, "concept2", CognitionLevel.KNOWLEDGE)],
            concepts=["concept1", "concept2"],
        )
        assert table.lost_concepts() == ["concept1"]

    def test_pyramid_relation(self):
        """'SUM(A1-Ai) >= SUM(B1-Bi) >= ... >= SUM(F1-Fi)'"""
        from repro.core.cognition import expected_pyramid

        assert expected_pyramid([6, 5, 4, 3, 2, 1]) == []
        assert expected_pyramid([1, 2, 3, 4, 5, 6]) == [0, 1, 2, 3, 4]
