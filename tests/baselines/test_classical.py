"""Tests for classical test theory baselines (repro.baselines)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AnalysisError, EmptyCohortError
from repro.core.question_analysis import ExamineeResponses, QuestionSpec
from repro.baselines.classical import (
    classical_item_analysis,
    point_biserial,
    whole_group_difficulty,
)


class TestWholeGroupDifficulty:
    def test_paper_worked_example(self):
        """§3.3: R=800, N=1000 -> 0.8."""
        flags = [True] * 800 + [False] * 200
        assert whole_group_difficulty(flags) == pytest.approx(0.8)

    def test_empty_rejected(self):
        with pytest.raises(EmptyCohortError):
            whole_group_difficulty([])


class TestPointBiserial:
    def test_positive_for_discriminating_item(self):
        # item correctness aligned with total scores
        flags = [True, True, True, False, False, False]
        scores = [9.0, 8.0, 7.0, 3.0, 2.0, 1.0]
        assert point_biserial(flags, scores) > 0.8

    def test_negative_for_inverted_item(self):
        flags = [False, False, False, True, True, True]
        scores = [9.0, 8.0, 7.0, 3.0, 2.0, 1.0]
        assert point_biserial(flags, scores) < -0.8

    def test_zero_for_degenerate_all_correct(self):
        assert point_biserial([True, True], [1.0, 2.0]) == 0.0

    def test_zero_for_no_score_variance(self):
        assert point_biserial([True, False], [5.0, 5.0]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            point_biserial([True], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(EmptyCohortError):
            point_biserial([], [])

    @given(
        flags=st.lists(st.booleans(), min_size=2, max_size=60),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_in_minus_one_one(self, flags, data):
        scores = data.draw(
            st.lists(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                min_size=len(flags),
                max_size=len(flags),
            )
        )
        value = point_biserial(flags, scores)
        assert -1.0000001 <= value <= 1.0000001


class TestClassicalItemAnalysis:
    def cohort(self):
        specs = [
            QuestionSpec(options=("A", "B"), correct="A"),
            QuestionSpec(options=("A", "B"), correct="B"),
        ]
        responses = []
        for index in range(10):
            # q1: top 7 correct; q2: top 3 correct
            q1 = "A" if index < 7 else "B"
            q2 = "B" if index < 3 else "A"
            responses.append(ExamineeResponses.of(f"s{index}", [q1, q2]))
        return responses, specs

    def test_difficulties(self):
        responses, specs = self.cohort()
        stats = classical_item_analysis(responses, specs)
        assert stats[0].difficulty == pytest.approx(0.7)
        assert stats[1].difficulty == pytest.approx(0.3)

    def test_numbers_one_based(self):
        responses, specs = self.cohort()
        stats = classical_item_analysis(responses, specs)
        assert [s.number for s in stats] == [1, 2]

    def test_point_biserial_positive_for_aligned_items(self):
        responses, specs = self.cohort()
        stats = classical_item_analysis(responses, specs)
        assert stats[0].point_biserial > 0

    def test_empty_rejected(self):
        with pytest.raises(EmptyCohortError):
            classical_item_analysis([], [QuestionSpec(options=("A",), correct="A")])

    def test_no_questions_rejected(self):
        with pytest.raises(AnalysisError):
            classical_item_analysis(
                [ExamineeResponses.of("s", [])], []
            )

    def test_ragged_rejected(self):
        specs = [QuestionSpec(options=("A", "B"), correct="A")] * 2
        with pytest.raises(AnalysisError):
            classical_item_analysis([ExamineeResponses.of("s", ["A"])], specs)
