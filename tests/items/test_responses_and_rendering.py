"""Tests for ScoredResponse invariants and item text rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ResponseError
from repro.items.choice import MultipleChoiceItem
from repro.items.matching import MatchItem
from repro.items.questionnaire import QuestionnaireItem
from repro.items.rendering import render_item
from repro.items.responses import ScoredResponse
from repro.items.truefalse import TrueFalseItem


class TestScoredResponse:
    def test_right(self):
        result = ScoredResponse.right(max_points=2.0, selected="A")
        assert result.points == 2.0
        assert result.correct is True

    def test_wrong(self):
        result = ScoredResponse.wrong()
        assert result.points == 0.0
        assert result.correct is False

    def test_partial_full_marks_is_correct(self):
        assert ScoredResponse.partial(3.0, 3.0).correct is True
        assert ScoredResponse.partial(2.0, 3.0).correct is False

    def test_pending(self):
        result = ScoredResponse.pending(max_points=5.0)
        assert result.needs_manual_grading
        assert result.correct is None

    def test_points_above_max_rejected(self):
        with pytest.raises(ResponseError):
            ScoredResponse(points=2.0, max_points=1.0, correct=True)

    def test_negative_points_rejected(self):
        with pytest.raises(ResponseError):
            ScoredResponse(points=-1.0, max_points=1.0, correct=False)

    def test_negative_max_rejected(self):
        with pytest.raises(ResponseError):
            ScoredResponse(points=0.0, max_points=-1.0, correct=False)

    @given(
        max_points=st.floats(min_value=0.1, max_value=100),
        fraction=st.floats(min_value=0, max_value=1),
    )
    def test_partial_always_valid(self, max_points, fraction):
        points = max_points * fraction
        result = ScoredResponse.partial(points, max_points)
        assert 0 <= result.points <= result.max_points


class TestRenderItem:
    def test_choice_rendering(self):
        item = MultipleChoiceItem.build(
            "q1", "Pick one.", ["alpha", "beta"], correct_index=0, hint="easy"
        )
        text = render_item(item, number=3)
        assert text.startswith("3. Pick one.")
        assert "(A) alpha" in text
        assert "(B) beta" in text
        assert "Hint: easy" in text

    def test_truefalse_rendering(self):
        item = TrueFalseItem(item_id="tf", question="Sky is blue.")
        text = render_item(item)
        assert "( ) True    ( ) False" in text

    def test_match_rendering(self):
        item = MatchItem(
            item_id="m",
            question="Match.",
            premises=["a", "b"],
            options=["1", "2"],
            key={"a": "1", "b": "2"},
        )
        text = render_item(item)
        assert "a  ->  ____" in text
        assert "choices: 1, 2" in text

    def test_questionnaire_rendering(self):
        item = QuestionnaireItem(
            item_id="s", question="Rate it.", scale=["bad", "good"]
        )
        text = render_item(item)
        assert "scale: bad / good" in text

    def test_unnumbered(self):
        item = TrueFalseItem(item_id="tf", question="Water is wet.")
        assert render_item(item).startswith("Water is wet.")
