"""Tests for presentation templates (repro.items.templates)."""

import pytest

from repro.core.errors import AuthoringError, NotFoundError
from repro.items.base import Picture
from repro.items.choice import MultipleChoiceItem
from repro.items.rendering import render_layout
from repro.items.templates import (
    Slot,
    Template,
    TemplateLibrary,
    apply_template,
    default_choice_template,
)


def choice_item(pictures=None):
    item = MultipleChoiceItem.build(
        "q1",
        "Which tree is self-balancing?",
        ["AVL", "plain BST", "trie", "heap"],
        correct_index=0,
        hint="named after its inventors",
    )
    if pictures:
        item.pictures = pictures
    return item


class TestSlot:
    def test_negative_position_rejected(self):
        with pytest.raises(AuthoringError):
            Slot(role="question", x=-1, y=0)

    def test_zero_width_rejected(self):
        with pytest.raises(AuthoringError):
            Slot(role="question", width=0)

    def test_empty_role_rejected(self):
        with pytest.raises(AuthoringError):
            Slot(role="")


class TestTemplate:
    def test_slot_lookup(self):
        template = default_choice_template()
        assert template.slot_for("question").y == 0
        assert template.slot_for("nonexistent") is None

    def test_move_slot(self):
        template = default_choice_template()
        template.move_slot("question", 10, 5)
        slot = template.slot_for("question")
        assert (slot.x, slot.y) == (10, 5)

    def test_move_unknown_slot_rejected(self):
        with pytest.raises(NotFoundError):
            default_choice_template().move_slot("banner", 0, 0)

    def test_move_to_negative_rejected(self):
        with pytest.raises(AuthoringError):
            default_choice_template().move_slot("question", -1, 0)

    def test_copy_as_is_deep(self):
        original = default_choice_template()
        duplicate = original.copy_as("copy")
        duplicate.move_slot("question", 9, 9)
        assert original.slot_for("question").x == 0
        assert duplicate.name == "copy"

    def test_empty_name_rejected(self):
        with pytest.raises(AuthoringError):
            Template(name="")


class TestTemplateLibrary:
    def test_add_get(self):
        library = TemplateLibrary()
        library.add(default_choice_template())
        assert "default-choice" in library
        assert library.get("default-choice").name == "default-choice"

    def test_duplicate_add_rejected(self):
        library = TemplateLibrary()
        library.add(default_choice_template())
        with pytest.raises(AuthoringError):
            library.add(default_choice_template())

    def test_delete(self):
        library = TemplateLibrary()
        library.add(default_choice_template())
        library.delete("default-choice")
        assert len(library) == 0

    def test_delete_missing_rejected(self):
        with pytest.raises(NotFoundError):
            TemplateLibrary().delete("ghost")

    def test_copy_into_library(self):
        library = TemplateLibrary()
        library.add(default_choice_template())
        library.copy("default-choice", "variant")
        assert sorted(library.names()) == ["default-choice", "variant"]

    def test_iteration(self):
        library = TemplateLibrary()
        library.add(default_choice_template())
        assert [template.name for template in library] == ["default-choice"]


class TestApplyTemplate:
    def test_layout_positions_follow_template(self):
        elements = apply_template(choice_item(), default_choice_template())
        question = next(e for e in elements if e.role == "question")
        assert (question.x, question.y) == (0, 0)
        option0 = next(e for e in elements if e.role == "option0")
        assert (option0.x, option0.y) == (4, 2)

    def test_elements_sorted_by_position(self):
        elements = apply_template(choice_item(), default_choice_template())
        ys = [element.y for element in elements]
        assert ys == sorted(ys)

    def test_hint_included(self):
        elements = apply_template(choice_item(), default_choice_template())
        hint = next(e for e in elements if e.role == "hint")
        assert "inventors" in hint.text

    def test_picture_uses_its_own_position(self):
        """§5.3: a picture is placed at its (x, y)."""
        item = choice_item(pictures=[Picture(resource="tree.gif", x=40, y=1)])
        elements = apply_template(item, default_choice_template())
        picture = next(e for e in elements if e.role == "picture0")
        assert (picture.x, picture.y) == (40, 1)
        assert "tree.gif" in picture.text

    def test_unslotted_elements_fall_below(self):
        template = Template(name="bare", slots=[Slot(role="question", x=0, y=0)])
        elements = apply_template(choice_item(), template)
        roles = [element.role for element in elements]
        assert "option3" in roles  # options still rendered

    def test_width_truncates(self):
        template = Template(
            name="narrow", slots=[Slot(role="question", x=0, y=0, width=10)]
        )
        elements = apply_template(choice_item(), template)
        question = next(e for e in elements if e.role == "question")
        assert len(question.text) == 10


class TestRenderLayout:
    def test_canvas_respects_positions(self):
        elements = apply_template(choice_item(), default_choice_template())
        canvas = render_layout(elements)
        lines = canvas.splitlines()
        assert lines[0].startswith("Which tree")
        assert lines[2].startswith("    A. AVL")

    def test_empty_layout(self):
        assert render_layout([]) == ""

    def test_narrow_canvas_rejected(self):
        from repro.core.errors import ItemError

        with pytest.raises(ItemError):
            render_layout(
                apply_template(choice_item(), default_choice_template()), width=5
            )
