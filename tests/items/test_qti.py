"""Tests for the QTI binding (repro.items.qti)."""

import pytest

from repro.core.cognition import CognitionLevel
from repro.core.errors import MetadataError
from repro.core.metadata import DisplayType
from repro.items.choice import MultipleChoiceItem
from repro.items.completion import CompletionItem
from repro.items.essay import EssayItem
from repro.items.matching import MatchItem
from repro.items.qti import item_from_qti_xml, item_to_qti_xml
from repro.items.questionnaire import QuestionnaireItem
from repro.items.truefalse import TrueFalseItem


def choice_item():
    return MultipleChoiceItem.build(
        "mc1",
        "Which sort is stable?",
        ["mergesort", "quicksort", "heapsort"],
        correct_index=0,
        hint="think of equal keys",
        subject="sorting",
        cognition_level=CognitionLevel.COMPREHENSION,
    )


class TestChoiceRoundTrip:
    def test_round_trip_preserves_everything(self):
        original = choice_item()
        restored = item_from_qti_xml(item_to_qti_xml(original))
        assert isinstance(restored, MultipleChoiceItem)
        assert restored.item_id == "mc1"
        assert restored.question == original.question
        assert restored.hint == original.hint
        assert restored.subject == "sorting"
        assert restored.cognition_level is CognitionLevel.COMPREHENSION
        assert restored.correct_label == "A"
        assert [c.text for c in restored.choices] == [
            "mergesort",
            "quicksort",
            "heapsort",
        ]

    def test_xml_looks_like_qti(self):
        xml = item_to_qti_xml(choice_item())
        for tag in ("<item", "<presentation>", "<response_lid",
                    "<render_choice>", "<resprocessing>", "<varequal>"):
            assert tag in xml


class TestTrueFalseRoundTrip:
    @pytest.mark.parametrize("value", [True, False])
    def test_round_trip(self, value):
        original = TrueFalseItem(
            item_id="tf1", question="Quicksort is stable.", correct_value=value
        )
        restored = item_from_qti_xml(item_to_qti_xml(original))
        assert isinstance(restored, TrueFalseItem)
        assert restored.correct_value is value


class TestMatchRoundTrip:
    def test_round_trip(self):
        original = MatchItem(
            item_id="m1",
            question="Match structure to operation.",
            premises=["stack", "queue"],
            options=["LIFO", "FIFO"],
            key={"stack": "LIFO", "queue": "FIFO"},
        )
        restored = item_from_qti_xml(item_to_qti_xml(original))
        assert isinstance(restored, MatchItem)
        assert restored.premises == ["stack", "queue"]
        assert restored.options == ["LIFO", "FIFO"]
        assert restored.key == {"stack": "LIFO", "queue": "FIFO"}


class TestCompletionRoundTrip:
    def test_round_trip(self):
        original = CompletionItem(
            item_id="c1",
            question="A ___ sorts in O(n log n) worst case; a ___ does not.",
            accepted_answers=[["heapsort", "mergesort"], ["quicksort"]],
            case_sensitive=True,
        )
        restored = item_from_qti_xml(item_to_qti_xml(original))
        assert isinstance(restored, CompletionItem)
        assert restored.accepted_answers == [
            ["heapsort", "mergesort"],
            ["quicksort"],
        ]
        assert restored.case_sensitive is True


class TestEssayRoundTrip:
    def test_round_trip(self):
        original = EssayItem(
            item_id="e1",
            question="Discuss amortized analysis.",
            model_answer="aggregate, accounting, potential methods",
            max_points=10.0,
            min_length=50,
        )
        restored = item_from_qti_xml(item_to_qti_xml(original))
        assert isinstance(restored, EssayItem)
        assert restored.model_answer == original.model_answer
        assert restored.max_points == 10.0
        assert restored.min_length == 50


class TestQuestionnaireRoundTrip:
    def test_round_trip(self):
        original = QuestionnaireItem(
            item_id="s1",
            question="Lectures were clear.",
            scale=["no", "somewhat", "yes"],
            resumable=False,
            display_type=DisplayType.RANDOM_ORDER,
        )
        restored = item_from_qti_xml(item_to_qti_xml(original))
        assert isinstance(restored, QuestionnaireItem)
        assert restored.scale == ["no", "somewhat", "yes"]
        assert restored.resumable is False
        assert restored.display_type is DisplayType.RANDOM_ORDER

    def test_free_text_questionnaire(self):
        original = QuestionnaireItem(item_id="s2", question="Any comments?")
        restored = item_from_qti_xml(item_to_qti_xml(original))
        assert restored.scale == []


class TestParsingErrors:
    def test_malformed_xml(self):
        with pytest.raises(MetadataError):
            item_from_qti_xml("<item")

    def test_wrong_root(self):
        with pytest.raises(MetadataError):
            item_from_qti_xml("<exam/>")

    def test_missing_style(self):
        with pytest.raises(MetadataError):
            item_from_qti_xml("<item ident='x'/>")

    def test_unknown_style(self):
        with pytest.raises(MetadataError):
            item_from_qti_xml(
                "<item ident='x' mine_style='riddle'>"
                "<presentation><material><mattext>t</mattext></material>"
                "</presentation></item>"
            )

    def test_missing_stem(self):
        with pytest.raises(MetadataError):
            item_from_qti_xml(
                "<item ident='x' mine_style='true_false'/>"
            )

    def test_choice_without_key(self):
        xml = (
            "<item ident='x' mine_style='multiple_choice'>"
            "<presentation><material><mattext>stem</mattext></material>"
            "<response_lid ident='MC'><render_choice>"
            "<response_label ident='A'><material><mattext>a</mattext>"
            "</material></response_label>"
            "<response_label ident='B'><material><mattext>b</mattext>"
            "</material></response_label>"
            "</render_choice></response_lid></presentation></item>"
        )
        with pytest.raises(MetadataError):
            item_from_qti_xml(xml)
