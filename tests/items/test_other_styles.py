"""Tests for true/false, essay, match, completion, and questionnaire items."""

import pytest

from repro.core.errors import ItemError, ResponseError
from repro.core.metadata import DisplayType, QuestionStyle
from repro.items.completion import CompletionItem
from repro.items.essay import EssayItem
from repro.items.matching import MatchItem
from repro.items.questionnaire import QuestionnaireItem
from repro.items.truefalse import TrueFalseItem


class TestTrueFalse:
    def make(self, correct=True):
        return TrueFalseItem(
            item_id="tf1",
            question="A stack is LIFO.",
            hint="think of plates",
            correct_value=correct,
        )

    def test_style(self):
        assert self.make().style() is QuestionStyle.TRUE_FALSE

    def test_answer_text(self):
        assert self.make(True).answer_text() == "true"
        assert self.make(False).answer_text() == "false"

    def test_score_bool(self):
        assert self.make(True).score(True).correct is True
        assert self.make(True).score(False).correct is False

    @pytest.mark.parametrize("word,expected", [
        ("true", True), ("TRUE", True), ("t", True), ("yes", True), ("1", True),
        ("false", False), ("F", False), ("no", False), ("0", False),
    ])
    def test_score_words(self, word, expected):
        result = self.make(True).score(word)
        assert result.correct is (expected is True)

    def test_skip(self):
        assert self.make().score(None).correct is False

    def test_garbage_rejected(self):
        with pytest.raises(ResponseError):
            self.make().score("maybe")
        with pytest.raises(ResponseError):
            self.make().score(3.14)

    def test_hint_preserved(self):
        assert self.make().hint == "think of plates"


class TestEssay:
    def make(self, **kwargs):
        defaults = dict(
            item_id="e1",
            question="Explain the CAP theorem.",
            model_answer="consistency, availability, partition tolerance",
            max_points=5.0,
        )
        defaults.update(kwargs)
        return EssayItem(**defaults)

    def test_style(self):
        assert self.make().style() is QuestionStyle.ESSAY

    def test_answer_text_is_model_answer(self):
        assert "consistency" in self.make().answer_text()

    def test_no_model_answer_means_subjective(self):
        item = self.make(model_answer="")
        assert item.answer_text() is None
        assert not item.is_objective()

    def test_score_pends_manual_grading(self):
        result = self.make().score("CAP says pick two of three...")
        assert result.needs_manual_grading
        assert result.correct is None
        assert result.points == 0.0
        assert result.max_points == 5.0

    def test_empty_response_is_wrong(self):
        result = self.make().score("   ")
        assert result.correct is False
        assert not result.needs_manual_grading

    def test_min_length_enforced(self):
        item = self.make(min_length=20)
        assert item.score("too short").correct is False
        assert item.score("x" * 25).needs_manual_grading

    def test_skip(self):
        assert self.make().score(None).correct is False

    def test_grade(self):
        result = self.make().grade("an answer", 4.0)
        assert result.points == 4.0
        assert result.correct is False
        assert not result.needs_manual_grading
        full = self.make().grade("an answer", 5.0)
        assert full.correct is True

    def test_grade_out_of_range_rejected(self):
        with pytest.raises(ResponseError):
            self.make().grade("x", 6.0)

    def test_non_text_rejected(self):
        with pytest.raises(ResponseError):
            self.make().score(["not", "text"])

    def test_nonpositive_max_points_rejected(self):
        with pytest.raises(ItemError):
            self.make(max_points=0).validate()


class TestMatch:
    def make(self):
        return MatchItem(
            item_id="m1",
            question="Match each algorithm to its complexity.",
            premises=["quicksort", "binary search", "bubble sort"],
            options=["O(n log n)", "O(log n)", "O(n^2)", "O(1)"],
            key={
                "quicksort": "O(n log n)",
                "binary search": "O(log n)",
                "bubble sort": "O(n^2)",
            },
        )

    def test_style(self):
        assert self.make().style() is QuestionStyle.MATCH

    def test_validates(self):
        self.make().validate()

    def test_answer_text_lists_pairs(self):
        text = self.make().answer_text()
        assert "quicksort -> O(n log n)" in text

    def test_perfect_score(self):
        item = self.make()
        result = item.score(item.key)
        assert result.points == 3.0
        assert result.correct is True

    def test_partial_credit(self):
        item = self.make()
        result = item.score(
            {
                "quicksort": "O(n log n)",
                "binary search": "O(n^2)",
                "bubble sort": "O(n^2)",
            }
        )
        assert result.points == 2.0
        assert result.correct is False

    def test_incomplete_response_allowed(self):
        result = self.make().score({"quicksort": "O(n log n)"})
        assert result.points == 1.0

    def test_skip(self):
        result = self.make().score(None)
        assert result.points == 0.0
        assert result.max_points == 3.0

    def test_unknown_premise_rejected(self):
        with pytest.raises(ResponseError):
            self.make().score({"mergesort": "O(n log n)"})

    def test_unknown_option_rejected(self):
        with pytest.raises(ResponseError):
            self.make().score({"quicksort": "O(2^n)"})

    def test_non_mapping_rejected(self):
        with pytest.raises(ResponseError):
            self.make().score("quicksort")

    def test_needs_two_premises(self):
        item = MatchItem(
            item_id="m2",
            question="match",
            premises=["only"],
            options=["a"],
            key={"only": "a"},
        )
        with pytest.raises(ItemError):
            item.validate()

    def test_missing_key_rejected(self):
        item = MatchItem(
            item_id="m3",
            question="match",
            premises=["p1", "p2"],
            options=["a", "b"],
            key={"p1": "a"},
        )
        with pytest.raises(ItemError):
            item.validate()

    def test_key_target_must_be_option(self):
        item = MatchItem(
            item_id="m4",
            question="match",
            premises=["p1", "p2"],
            options=["a", "b"],
            key={"p1": "a", "p2": "z"},
        )
        with pytest.raises(ItemError):
            item.validate()


class TestCompletion:
    def make(self, **kwargs):
        defaults = dict(
            item_id="c1",
            question="The ___ of a binary heap insert is O(___).",
            accepted_answers=[["time complexity", "complexity"], ["log n", "logn"]],
        )
        defaults.update(kwargs)
        return CompletionItem(**defaults)

    def test_style(self):
        assert self.make().style() is QuestionStyle.COMPLETION

    def test_blank_count(self):
        assert self.make().blank_count == 2

    def test_validates(self):
        self.make().validate()

    def test_answer_text_uses_first_accepted(self):
        assert self.make().answer_text() == "time complexity | log n"

    def test_perfect(self):
        result = self.make().score(["complexity", "log n"])
        assert result.points == 2.0
        assert result.correct is True

    def test_case_insensitive_by_default(self):
        assert self.make().score(["COMPLEXITY", "Log N"]).points == 2.0

    def test_case_sensitive_mode(self):
        item = self.make(case_sensitive=True)
        assert item.score(["COMPLEXITY", "log n"]).points == 1.0

    def test_whitespace_stripped(self):
        assert self.make().score(["  complexity ", " log n"]).points == 2.0

    def test_partial(self):
        result = self.make().score(["wrong", "log n"])
        assert result.points == 1.0

    def test_none_blank_skipped(self):
        result = self.make().score([None, "log n"])
        assert result.points == 1.0

    def test_single_blank_accepts_bare_string(self):
        item = CompletionItem(
            item_id="c2",
            question="LIFO stands for last in, first ___.",
            accepted_answers=[["out"]],
        )
        assert item.score("out").points == 1.0

    def test_wrong_arity_rejected(self):
        with pytest.raises(ResponseError):
            self.make().score(["only one"])

    def test_skip(self):
        assert self.make().score(None).points == 0.0

    def test_no_blanks_rejected(self):
        item = CompletionItem(
            item_id="c3", question="no blanks here", accepted_answers=[]
        )
        with pytest.raises(ItemError):
            item.validate()

    def test_blank_answer_mismatch_rejected(self):
        item = self.make(accepted_answers=[["only one list"]])
        with pytest.raises(ItemError):
            item.validate()

    def test_empty_accepted_list_rejected(self):
        item = self.make(accepted_answers=[["a"], []])
        with pytest.raises(ItemError):
            item.validate()


class TestQuestionnaire:
    def make(self, **kwargs):
        defaults = dict(
            item_id="s1",
            question="The course pace was appropriate.",
            scale=["strongly disagree", "disagree", "agree", "strongly agree"],
        )
        defaults.update(kwargs)
        return QuestionnaireItem(**defaults)

    def test_style(self):
        assert self.make().style() is QuestionStyle.QUESTIONNAIRE

    def test_no_correct_answer(self):
        item = self.make()
        assert item.answer_text() is None
        assert not item.is_objective()

    def test_scores_zero_points(self):
        result = self.make().score("agree")
        assert result.points == 0.0
        assert result.max_points == 0.0
        assert result.correct is None
        assert result.selected == "agree"

    def test_off_scale_rejected(self):
        with pytest.raises(ResponseError):
            self.make().score("whatever")

    def test_free_text_when_no_scale(self):
        item = self.make(scale=[])
        assert item.score("loved it").selected == "loved it"

    def test_skip(self):
        assert self.make().score(None).selected is None

    def test_metadata_carries_resumable_and_display(self):
        item = self.make(resumable=False, display_type=DisplayType.RANDOM_ORDER)
        assert item.metadata.assessment.questionnaire.resumable is False
        assert (
            item.metadata.assessment.questionnaire.display_type
            is DisplayType.RANDOM_ORDER
        )

    def test_duplicate_scale_rejected(self):
        with pytest.raises(ItemError):
            self.make(scale=["a", "a"]).validate()

    def test_empty_scale_label_rejected(self):
        with pytest.raises(ItemError):
            self.make(scale=["a", ""]).validate()
