"""Tests for multiple-choice items (repro.items.choice)."""

import pytest

from repro.core.errors import ItemError, ResponseError
from repro.core.metadata import QuestionStyle
from repro.items.choice import Choice, MultipleChoiceItem


def sample_item(**kwargs):
    return MultipleChoiceItem.build(
        "q1",
        "Which structure gives O(1) average lookup?",
        ["hash table", "linked list", "binary tree", "stack"],
        correct_index=0,
        **kwargs,
    )


class TestConstruction:
    def test_build_default_labels(self):
        item = sample_item()
        assert item.labels == ("A", "B", "C", "D")
        assert item.correct_label == "A"

    def test_build_custom_labels(self):
        item = MultipleChoiceItem.build(
            "q1", "stem?", ["x", "y"], correct_index=1, labels=["i", "ii"]
        )
        assert item.correct_label == "ii"

    def test_style(self):
        assert sample_item().style() is QuestionStyle.MULTIPLE_CHOICE

    def test_answer_text(self):
        assert sample_item().answer_text() == "A"

    def test_is_objective(self):
        assert sample_item().is_objective()

    def test_metadata_synced(self):
        item = sample_item()
        assert item.metadata.assessment.question_style is (
            QuestionStyle.MULTIPLE_CHOICE
        )
        assert item.metadata.assessment.individual_test.answer == "A"
        assert item.metadata.general.identifier == "q1"

    def test_bad_correct_index(self):
        with pytest.raises(ItemError):
            MultipleChoiceItem.build("q1", "stem?", ["a", "b"], correct_index=5)

    def test_label_count_mismatch(self):
        with pytest.raises(ItemError):
            MultipleChoiceItem.build(
                "q1", "stem?", ["a", "b"], correct_index=0, labels=["A"]
            )

    def test_empty_item_id_rejected(self):
        with pytest.raises(ItemError):
            MultipleChoiceItem.build("", "stem?", ["a", "b"], correct_index=0)

    def test_empty_question_rejected(self):
        with pytest.raises(ItemError):
            MultipleChoiceItem.build("q1", "", ["a", "b"], correct_index=0)

    def test_empty_choice_text_rejected(self):
        with pytest.raises(ItemError):
            Choice(label="A", text="")

    def test_empty_choice_label_rejected(self):
        with pytest.raises(ItemError):
            Choice(label="", text="x")


class TestValidation:
    def test_needs_two_options(self):
        item = MultipleChoiceItem(
            item_id="q1",
            question="stem?",
            choices=[Choice("A", "only one")],
            correct_label="A",
        )
        with pytest.raises(ItemError):
            item.validate()

    def test_duplicate_labels_rejected(self):
        item = MultipleChoiceItem(
            item_id="q1",
            question="stem?",
            choices=[Choice("A", "x"), Choice("A", "y")],
            correct_label="A",
        )
        with pytest.raises(ItemError):
            item.validate()

    def test_correct_label_must_exist(self):
        item = MultipleChoiceItem(
            item_id="q1",
            question="stem?",
            choices=[Choice("A", "x"), Choice("B", "y")],
            correct_label="Z",
        )
        with pytest.raises(ItemError):
            item.validate()


class TestScoring:
    def test_correct_selection(self):
        result = sample_item().score("A")
        assert result.correct is True
        assert result.points == 1.0
        assert result.selected == "A"

    def test_wrong_selection(self):
        result = sample_item().score("B")
        assert result.correct is False
        assert result.points == 0.0

    def test_skip_scores_zero(self):
        result = sample_item().score(None)
        assert result.correct is False
        assert result.selected is None

    def test_unknown_option_rejected(self):
        with pytest.raises(ResponseError):
            sample_item().score("Z")

    def test_non_string_rejected(self):
        with pytest.raises(ResponseError):
            sample_item().score(3)


class TestContentFields:
    def test_round_trippable_dict(self):
        fields = sample_item().content_fields()
        assert fields["correct_label"] == "A"
        assert fields["options"][0] == {"label": "A", "text": "hash table"}
        assert len(fields["options"]) == 4
