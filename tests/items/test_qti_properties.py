"""Property-based QTI round-trip tests over generated items."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cognition import CognitionLevel
from repro.items.choice import MultipleChoiceItem
from repro.items.completion import CompletionItem
from repro.items.matching import MatchItem
from repro.items.qti import item_from_qti_xml, item_to_qti_xml
from repro.items.truefalse import TrueFalseItem

# XML-safe text: printable, no control characters; strip() non-empty
_safe_text = st.text(
    alphabet=st.characters(
        min_codepoint=32, max_codepoint=0x2FFF, blacklist_characters="\x7f"
    ),
    min_size=1,
    max_size=60,
).filter(lambda s: s.strip() == s and s)

_identifier = st.from_regex(r"[A-Za-z][A-Za-z0-9_-]{0,15}", fullmatch=True)


@st.composite
def choice_items(draw):
    option_count = draw(st.integers(min_value=2, max_value=6))
    texts = draw(
        st.lists(_safe_text, min_size=option_count, max_size=option_count,
                 unique=True)
    )
    return MultipleChoiceItem.build(
        draw(_identifier),
        draw(_safe_text),
        texts,
        correct_index=draw(st.integers(min_value=0, max_value=option_count - 1)),
        hint=draw(st.one_of(st.just(""), _safe_text)),
        subject=draw(st.one_of(st.just(""), _safe_text)),
        cognition_level=draw(
            st.one_of(st.none(), st.sampled_from(list(CognitionLevel)))
        ),
    )


@st.composite
def match_items(draw):
    premises = draw(st.lists(_safe_text, min_size=2, max_size=5, unique=True))
    options = draw(
        st.lists(_safe_text, min_size=len(premises), max_size=6, unique=True)
    )
    key = {
        premise: draw(st.sampled_from(options)) for premise in premises
    }
    item = MatchItem(
        item_id=draw(_identifier),
        question=draw(_safe_text),
        premises=premises,
        options=options,
        key=key,
    )
    item.validate()
    return item


@st.composite
def completion_items(draw):
    blank_count = draw(st.integers(min_value=1, max_value=4))
    stem_parts = draw(
        st.lists(_safe_text, min_size=blank_count + 1,
                 max_size=blank_count + 1)
    )
    question = "___".join(stem_parts)
    accepted = [
        draw(st.lists(_safe_text, min_size=1, max_size=3, unique=True))
        for _ in range(blank_count)
    ]
    item = CompletionItem(
        item_id=draw(_identifier),
        question=question,
        accepted_answers=accepted,
        case_sensitive=draw(st.booleans()),
    )
    item.validate()
    return item


class TestQtiRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(item=choice_items())
    def test_choice_round_trip(self, item):
        restored = item_from_qti_xml(item_to_qti_xml(item))
        assert restored.item_id == item.item_id
        assert restored.question == item.question
        assert restored.hint == item.hint
        assert restored.subject == item.subject
        assert restored.cognition_level is item.cognition_level
        assert restored.content_fields() == item.content_fields()

    @settings(max_examples=40, deadline=None)
    @given(item=match_items())
    def test_match_round_trip(self, item):
        restored = item_from_qti_xml(item_to_qti_xml(item))
        assert restored.content_fields() == item.content_fields()

    @settings(max_examples=40, deadline=None)
    @given(item=completion_items())
    def test_completion_round_trip(self, item):
        restored = item_from_qti_xml(item_to_qti_xml(item))
        assert restored.content_fields() == item.content_fields()

    @settings(max_examples=40, deadline=None)
    @given(
        question=_safe_text,
        value=st.booleans(),
        identifier=_identifier,
    )
    def test_truefalse_round_trip(self, question, value, identifier):
        item = TrueFalseItem(
            item_id=identifier, question=question, correct_value=value
        )
        restored = item_from_qti_xml(item_to_qti_xml(item))
        assert restored.correct_value is value
        assert restored.question == question

    @settings(max_examples=30, deadline=None)
    @given(item=choice_items())
    def test_scoring_behaviour_preserved(self, item):
        """The restored item grades responses identically."""
        restored = item_from_qti_xml(item_to_qti_xml(item))
        for label in item.labels:
            assert (
                restored.score(label).correct == item.score(label).correct
            )
