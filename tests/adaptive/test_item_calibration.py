"""Tests for 2PL MML/EM item calibration (repro.adaptive.item_calibration)."""

import random

import pytest

from repro.core.errors import EstimationError
from repro.adaptive.irt import ItemParameters, probability_correct
from repro.adaptive.item_calibration import calibrate_2pl


def simulate_matrix(true_parameters, examinees=600, seed=5):
    """Responses from N(0,1) abilities against known parameters."""
    rng = random.Random(seed)
    matrix = []
    for _ in range(examinees):
        theta = rng.gauss(0, 1)
        matrix.append(
            [
                rng.random() < probability_correct(theta, params)
                for params in true_parameters
            ]
        )
    return matrix


TRUE_PARAMETERS = [
    ItemParameters(a=1.8, b=-1.5),
    ItemParameters(a=1.0, b=-0.5),
    ItemParameters(a=1.4, b=0.0),
    ItemParameters(a=0.8, b=0.8),
    ItemParameters(a=2.0, b=1.5),
    ItemParameters(a=1.2, b=-1.0),
    ItemParameters(a=1.6, b=0.5),
    ItemParameters(a=0.9, b=1.0),
]


class TestParameterRecovery:
    @pytest.fixture(scope="class")
    def result(self):
        matrix = simulate_matrix(TRUE_PARAMETERS, examinees=800, seed=11)
        return calibrate_2pl(matrix)

    def test_converges(self, result):
        assert result.converged
        assert result.iterations < 60

    def test_difficulties_recovered(self, result):
        for estimated, true in zip(result.parameters, TRUE_PARAMETERS):
            assert estimated.b == pytest.approx(true.b, abs=0.35)

    def test_difficulty_ordering_exact(self, result):
        estimated_order = sorted(
            range(len(TRUE_PARAMETERS)),
            key=lambda i: result.parameters[i].b,
        )
        true_order = sorted(
            range(len(TRUE_PARAMETERS)), key=lambda i: TRUE_PARAMETERS[i].b
        )
        assert estimated_order == true_order

    def test_discriminations_recovered(self, result):
        for estimated, true in zip(result.parameters, TRUE_PARAMETERS):
            assert estimated.a == pytest.approx(true.a, abs=0.45)

    def test_discrimination_extremes_ranked(self, result):
        a_values = [p.a for p in result.parameters]
        # the a=2.0 item must out-rank the a=0.8 and a=0.9 items
        assert a_values[4] > a_values[3]
        assert a_values[4] > a_values[7]

    def test_log_likelihood_finite(self, result):
        assert result.log_likelihood < 0
        assert result.log_likelihood > -1e6


class TestCalibrationMechanics:
    def test_more_data_tightens_estimates(self):
        small = calibrate_2pl(
            simulate_matrix(TRUE_PARAMETERS, examinees=150, seed=2)
        )
        large = calibrate_2pl(
            simulate_matrix(TRUE_PARAMETERS, examinees=1500, seed=2)
        )
        small_error = sum(
            abs(est.b - true.b)
            for est, true in zip(small.parameters, TRUE_PARAMETERS)
        )
        large_error = sum(
            abs(est.b - true.b)
            for est, true in zip(large.parameters, TRUE_PARAMETERS)
        )
        assert large_error < small_error

    def test_degenerate_item_clamped(self):
        # one item everyone gets right: b must clamp, not diverge
        parameters = [ItemParameters(a=1.0, b=-6.0), ItemParameters(a=1.0, b=0.0)]
        matrix = simulate_matrix(parameters, examinees=300, seed=3)
        result = calibrate_2pl(matrix)
        assert -4.0 <= result.parameters[0].b <= 4.0
        assert 0.2 <= result.parameters[0].a <= 3.0

    def test_as_pool(self):
        matrix = simulate_matrix(TRUE_PARAMETERS[:3], examinees=200, seed=4)
        result = calibrate_2pl(matrix)
        pool = result.as_pool(["x", "y", "z"])
        assert set(pool) == {"x", "y", "z"}
        with pytest.raises(EstimationError):
            result.as_pool(["too", "few"])

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            calibrate_2pl([])

    def test_single_item_rejected(self):
        with pytest.raises(EstimationError):
            calibrate_2pl([[True], [False]])

    def test_ragged_rejected(self):
        with pytest.raises(EstimationError):
            calibrate_2pl([[True, False], [True]])

    def test_tiny_grid_rejected(self):
        with pytest.raises(EstimationError):
            calibrate_2pl([[True, False]] * 10, grid_points=3)


class TestEndToEnd:
    def test_calibrated_pool_drives_cat_accurately(self):
        """simulate -> calibrate from data -> CAT recovers ability."""
        from repro.adaptive.cat import CatConfig, CatSession

        matrix = simulate_matrix(TRUE_PARAMETERS, examinees=600, seed=7)
        result = calibrate_2pl(matrix)
        pool = result.as_pool([f"i{k}" for k in range(len(TRUE_PARAMETERS))])
        rng = random.Random(8)
        true_theta = 1.0

        def answer(item_id):
            true = TRUE_PARAMETERS[int(item_id[1:])]
            return rng.random() < probability_correct(true_theta, true)

        session = CatSession(
            pool=pool, config=CatConfig(max_items=8, min_items=8, se_target=0.01)
        )
        estimate, se = session.run(answer)
        assert abs(estimate - true_theta) < 3 * se + 0.5
