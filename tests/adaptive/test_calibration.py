"""Tests for classical-to-IRT calibration (repro.adaptive.calibration)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import EstimationError
from repro.adaptive.calibration import (
    calibrate_pool_from_bank,
    difficulty_to_b,
    discrimination_to_a,
)
from repro.bank.itembank import ItemBank
from repro.items.choice import MultipleChoiceItem
from repro.items.essay import EssayItem


class TestDifficultyToB:
    def test_half_maps_to_zero(self):
        assert difficulty_to_b(0.5) == pytest.approx(0.0)

    def test_easy_items_get_negative_b(self):
        assert difficulty_to_b(0.9) < -1.0

    def test_hard_items_get_positive_b(self):
        assert difficulty_to_b(0.1) > 1.0

    def test_extremes_stay_finite(self):
        assert math.isfinite(difficulty_to_b(0.0))
        assert math.isfinite(difficulty_to_b(1.0))

    def test_paper_worked_example(self):
        # P = 0.8 (the R=800/N=1000 example): a fairly easy item
        assert difficulty_to_b(0.8) == pytest.approx(math.log(0.25))

    @given(p1=st.floats(min_value=0, max_value=1),
           p2=st.floats(min_value=0, max_value=1))
    def test_antitone(self, p1, p2):
        """Higher P (easier) never maps to higher b (harder)."""
        low, high = min(p1, p2), max(p1, p2)
        assert difficulty_to_b(high) <= difficulty_to_b(low) + 1e-12

    def test_out_of_range_rejected(self):
        with pytest.raises(EstimationError):
            difficulty_to_b(1.5)


class TestDiscriminationToA:
    def test_green_threshold_maps_to_usable_a(self):
        assert discrimination_to_a(0.30) == pytest.approx(0.75)

    def test_strong_d_maps_high(self):
        assert discrimination_to_a(0.8) == pytest.approx(2.0)

    def test_clamped_to_bounds(self):
        assert discrimination_to_a(1.0) == 2.5
        assert discrimination_to_a(0.0) == 0.3
        assert discrimination_to_a(-0.5) == 0.3

    @given(d1=st.floats(min_value=-1, max_value=1),
           d2=st.floats(min_value=-1, max_value=1))
    def test_monotone(self, d1, d2):
        low, high = min(d1, d2), max(d1, d2)
        assert discrimination_to_a(low) <= discrimination_to_a(high) + 1e-12

    def test_out_of_range_rejected(self):
        with pytest.raises(EstimationError):
            discrimination_to_a(1.5)


def rated_item(item_id, p=None, d=None):
    item = MultipleChoiceItem.build(
        item_id, f"Q {item_id}?", ["a", "b", "c"], correct_index=0
    )
    item.metadata.assessment.individual_test.item_difficulty_index = p
    item.metadata.assessment.individual_test.item_discrimination_index = d
    return item


class TestCalibratePool:
    def test_rated_items_calibrated(self):
        bank = ItemBank()
        bank.add(rated_item("easy", p=0.9, d=0.6))
        bank.add(rated_item("hard", p=0.2, d=0.4))
        pool = calibrate_pool_from_bank(bank)
        assert pool["easy"].b < pool["hard"].b
        assert pool["easy"].a > pool["hard"].a

    def test_unrated_items_get_defaults(self):
        bank = ItemBank()
        bank.add(rated_item("new"))
        pool = calibrate_pool_from_bank(bank, default_a=1.2, default_b=0.3)
        assert pool["new"].a == 1.2
        assert pool["new"].b == 0.3

    def test_subjective_items_excluded(self):
        bank = ItemBank()
        bank.add(rated_item("mc", p=0.5, d=0.5))
        bank.add(EssayItem(item_id="essay", question="Discuss."))
        pool = calibrate_pool_from_bank(bank)
        assert "essay" not in pool
        assert "mc" in pool

    def test_empty_pool_rejected(self):
        bank = ItemBank()
        bank.add(EssayItem(item_id="essay", question="Discuss."))
        with pytest.raises(EstimationError):
            calibrate_pool_from_bank(bank)

    def test_bad_default_rejected(self):
        with pytest.raises(EstimationError):
            calibrate_pool_from_bank(ItemBank(), default_a=0)

    def test_calibrated_pool_drives_cat(self):
        """Integration: a bank with paper-style indices seeds a CAT."""
        import random

        from repro.adaptive.cat import CatConfig, CatSession
        from repro.adaptive.irt import probability_correct

        bank = ItemBank()
        rng = random.Random(8)
        for index in range(30):
            bank.add(
                rated_item(
                    f"q{index:02d}",
                    p=rng.uniform(0.15, 0.9),
                    d=rng.uniform(0.2, 0.7),
                )
            )
        pool = calibrate_pool_from_bank(bank)
        session = CatSession(pool=pool, config=CatConfig(max_items=12))
        answer_rng = random.Random(9)

        def answer(item_id):
            return answer_rng.random() < probability_correct(1.0, pool[item_id])

        ability, se = session.run(answer)
        assert se < 1.0
        assert len(session.administered) >= 3
