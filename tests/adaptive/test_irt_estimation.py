"""Tests for IRT mathematics and ability estimation (repro.adaptive)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import EstimationError
from repro.adaptive.estimation import (
    estimate_ability_eap,
    estimate_ability_map,
)
from repro.adaptive.irt import (
    ItemParameters,
    item_information,
    probability_correct,
)
from repro.adaptive.irt import test_information as pool_information
from repro.sim.learner_model import SimulatedLearner


class TestItemInformation:
    def test_peaks_near_difficulty_for_2pl(self):
        params = ItemParameters(a=1.5, b=1.0)
        at_b = item_information(1.0, params)
        away = item_information(3.0, params)
        assert at_b > away

    def test_grows_with_discrimination(self):
        weak = item_information(0.0, ItemParameters(a=0.5, b=0.0))
        strong = item_information(0.0, ItemParameters(a=2.0, b=0.0))
        assert strong > weak * 4  # scales with a^2

    def test_guessing_depresses_information(self):
        clean = item_information(0.0, ItemParameters(a=1.5, b=0.0, c=0.0))
        guessy = item_information(0.0, ItemParameters(a=1.5, b=0.0, c=0.3))
        assert guessy < clean

    def test_nonnegative_everywhere(self):
        params = ItemParameters(a=1.0, b=0.0, c=0.2)
        for theta in (-6, -3, 0, 3, 6):
            assert item_information(theta, params) >= 0.0

    def test_test_information_sums(self):
        pool = [ItemParameters(a=1.0, b=float(b)) for b in (-1, 0, 1)]
        total = pool_information(0.0, pool)
        assert total == pytest.approx(
            sum(item_information(0.0, p) for p in pool)
        )


def simulate_responses(true_ability, parameters, seed=0):
    rng = random.Random(seed)
    return [
        rng.random() < probability_correct(true_ability, params)
        for params in parameters
    ]


class TestEstimators:
    def parameters(self, count=40):
        rng = random.Random(99)
        return [
            ItemParameters(a=rng.uniform(0.8, 2.0), b=rng.uniform(-2.5, 2.5))
            for _ in range(count)
        ]

    @pytest.mark.parametrize("true_theta", [-1.5, 0.0, 1.5])
    def test_map_recovers_ability(self, true_theta):
        parameters = self.parameters()
        responses = simulate_responses(true_theta, parameters, seed=3)
        estimate, se = estimate_ability_map(responses, parameters)
        assert abs(estimate - true_theta) < 3 * se + 0.3

    @pytest.mark.parametrize("true_theta", [-1.5, 0.0, 1.5])
    def test_eap_recovers_ability(self, true_theta):
        parameters = self.parameters()
        responses = simulate_responses(true_theta, parameters, seed=4)
        estimate, se = estimate_ability_eap(responses, parameters)
        assert abs(estimate - true_theta) < 3 * se + 0.3

    def test_estimators_agree(self):
        parameters = self.parameters()
        responses = simulate_responses(0.5, parameters, seed=5)
        map_est, _ = estimate_ability_map(responses, parameters, prior_sd=1.0)
        eap_est, _ = estimate_ability_eap(responses, parameters, prior_sd=1.0)
        assert abs(map_est - eap_est) < 0.15

    def test_all_correct_stays_finite(self):
        parameters = self.parameters(10)
        estimate, se = estimate_ability_eap([True] * 10, parameters)
        assert -6 <= estimate <= 6
        assert se > 0
        map_estimate, _ = estimate_ability_map([True] * 10, parameters)
        assert -6.5 <= map_estimate <= 6.5

    def test_all_wrong_stays_finite(self):
        parameters = self.parameters(10)
        estimate, _ = estimate_ability_eap([False] * 10, parameters)
        assert -6 <= estimate <= 6

    def test_more_items_shrink_se(self):
        parameters = self.parameters(60)
        responses = simulate_responses(0.0, parameters, seed=6)
        _, se_few = estimate_ability_eap(responses[:5], parameters[:5])
        _, se_many = estimate_ability_eap(responses, parameters)
        assert se_many < se_few

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            estimate_ability_eap([], [])
        with pytest.raises(EstimationError):
            estimate_ability_map([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            estimate_ability_eap([True], [])

    def test_bad_prior_rejected(self):
        with pytest.raises(EstimationError):
            estimate_ability_map([True], [ItemParameters()], prior_sd=0)

    def test_bad_grid_rejected(self):
        with pytest.raises(EstimationError):
            estimate_ability_eap([True], [ItemParameters()], grid_points=2)

    @settings(max_examples=20, deadline=None)
    @given(
        true_theta=st.floats(min_value=-2, max_value=2),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_eap_bounded_by_grid(self, true_theta, seed):
        parameters = self.parameters(20)
        responses = simulate_responses(true_theta, parameters, seed=seed)
        estimate, se = estimate_ability_eap(responses, parameters)
        assert -4.5 <= estimate <= 4.5
        assert se > 0
