"""Tests for individualized test assembly (repro.adaptive.individualized)."""

import pytest

from repro.core.errors import EstimationError
from repro.adaptive.individualized import (
    assemble_individualized_exam,
    select_individualized_items,
)
from repro.adaptive.irt import ItemParameters, item_information
from repro.bank.itembank import ItemBank
from repro.items.choice import MultipleChoiceItem


def pool_with_spread():
    """Items at b = -3..3 in 0.5 steps, equal a."""
    return {
        f"item-{index:02d}": ItemParameters(a=1.5, b=-3.0 + 0.5 * index)
        for index in range(13)
    }


def bank_for(pool, subjects=("algebra", "geometry")):
    bank = ItemBank()
    for index, item_id in enumerate(sorted(pool)):
        bank.add(
            MultipleChoiceItem.build(
                item_id,
                f"Question {item_id}?",
                ["a", "b", "c", "d"],
                correct_index=0,
                subject=subjects[index % len(subjects)],
            )
        )
    return bank


class TestSelectIndividualizedItems:
    def test_selects_items_near_ability(self):
        pool = pool_with_spread()
        chosen = select_individualized_items(pool, ability=0.0, length=3)
        bs = [pool[item_id].b for item_id in chosen]
        assert all(abs(b) <= 1.0 for b in bs)

    def test_high_ability_gets_hard_items(self):
        pool = pool_with_spread()
        chosen = select_individualized_items(pool, ability=2.5, length=3)
        assert all(pool[item_id].b >= 1.5 for item_id in chosen)

    def test_selection_is_by_information(self):
        pool = pool_with_spread()
        chosen = select_individualized_items(pool, ability=1.0, length=5)
        rest = [item_id for item_id in pool if item_id not in chosen]
        minimum_chosen = min(
            item_information(1.0, pool[i]) for i in chosen
        )
        maximum_rest = max(item_information(1.0, pool[i]) for i in rest)
        assert minimum_chosen >= maximum_rest - 1e-12

    def test_deterministic(self):
        pool = pool_with_spread()
        assert select_individualized_items(pool, 0.3, 4) == (
            select_individualized_items(pool, 0.3, 4)
        )

    def test_bad_length_rejected(self):
        with pytest.raises(EstimationError):
            select_individualized_items(pool_with_spread(), 0.0, 0)

    def test_oversized_request_rejected(self):
        with pytest.raises(EstimationError):
            select_individualized_items(pool_with_spread(), 0.0, 99)


class TestAssembleIndividualizedExam:
    def test_basic_assembly(self):
        pool = pool_with_spread()
        bank = bank_for(pool)
        exam = assemble_individualized_exam(
            "ind-1", "Individualized", bank, pool, ability=0.0, length=5,
            time_limit_seconds=600,
        )
        assert len(exam.items) == 5
        assert exam.time_limit_seconds == 600
        exam.validate()

    def test_different_abilities_get_different_exams(self):
        pool = pool_with_spread()
        bank = bank_for(pool)
        weak = assemble_individualized_exam(
            "w", "W", bank, pool, ability=-2.5, length=4
        )
        strong = assemble_individualized_exam(
            "s", "S", bank, pool, ability=2.5, length=4
        )
        weak_ids = {item.item_id for item in weak.items}
        strong_ids = {item.item_id for item in strong.items}
        assert weak_ids != strong_ids
        weak_bs = [pool[i].b for i in weak_ids]
        strong_bs = [pool[i].b for i in strong_ids]
        assert max(weak_bs) < min(strong_bs)

    def test_per_concept_minimum_enforced(self):
        pool = pool_with_spread()
        bank = bank_for(pool)
        exam = assemble_individualized_exam(
            "c", "C", bank, pool, ability=0.0, length=6,
            per_concept_minimum={"algebra": 2, "geometry": 2},
        )
        subjects = [item.subject for item in exam.items]
        assert subjects.count("algebra") >= 2
        assert subjects.count("geometry") >= 2

    def test_minimums_exceeding_length_rejected(self):
        pool = pool_with_spread()
        bank = bank_for(pool)
        with pytest.raises(EstimationError):
            assemble_individualized_exam(
                "c", "C", bank, pool, ability=0.0, length=3,
                per_concept_minimum={"algebra": 2, "geometry": 2},
            )

    def test_unknown_concept_rejected(self):
        pool = pool_with_spread()
        bank = bank_for(pool)
        with pytest.raises(EstimationError):
            assemble_individualized_exam(
                "c", "C", bank, pool, ability=0.0, length=4,
                per_concept_minimum={"calculus": 1},
            )

    def test_pool_items_missing_from_bank_skipped(self):
        pool = pool_with_spread()
        bank = bank_for({k: v for k, v in pool.items() if k < "item-05"})
        with pytest.raises(EstimationError):
            assemble_individualized_exam(
                "c", "C", bank, pool, ability=0.0, length=10
            )

    def test_analyzable_by_paper_pipeline(self):
        """The individualized exam is an ordinary exam: the §4.1 analysis
        applies unchanged."""
        from repro.core.question_analysis import (
            ExamineeResponses,
            analyze_cohort,
        )

        pool = pool_with_spread()
        bank = bank_for(pool)
        exam = assemble_individualized_exam(
            "a", "A", bank, pool, ability=0.0, length=4
        )
        responses = [
            ExamineeResponses.of(
                f"s{i}", ["A"] * 4 if i < 4 else ["B"] * 4
            )
            for i in range(8)
        ]
        cohort = analyze_cohort(responses, exam.question_specs())
        assert len(cohort.questions) == 4
