"""Tests for online CAT: policy, information table, session, snapshots
(:mod:`repro.adaptive.online`)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import EstimationError
from repro.adaptive.cat import select_next_item
from repro.adaptive.irt import ItemParameters, item_information
from repro.adaptive.online import (
    AdaptivePolicy,
    AdaptiveSession,
    ItemInformationTable,
    collect_calibration_matrix,
    latest_calibration_snapshot,
    list_calibration_snapshots,
    parameters_from_record,
    parameters_to_record,
    write_calibration_snapshot,
)
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem


def build_exam(exam_id="adaptive-1", questions=6, adaptive=None):
    builder = ExamBuilder(exam_id, f"Exam {exam_id}")
    for index in range(1, questions + 1):
        builder.add_item(
            MultipleChoiceItem.build(
                f"q{index}", f"Q{index}?", ["a", "b", "c"], correct_index=0
            )
        )
    exam = builder.build()
    exam.adaptive = adaptive
    if adaptive is not None:
        exam.validate()
    return exam


def random_pool(size=6, seed=0):
    rng = random.Random(seed)
    return {
        f"q{index}": ItemParameters(
            a=rng.uniform(0.5, 2.0), b=rng.uniform(-2.5, 2.5)
        )
        for index in range(1, size + 1)
    }


class TestAdaptivePolicy:
    def test_rejects_bad_stopping_rules(self):
        with pytest.raises(EstimationError):
            AdaptivePolicy(max_items=0)
        with pytest.raises(EstimationError):
            AdaptivePolicy(max_items=5, min_items=6)
        with pytest.raises(EstimationError):
            AdaptivePolicy(se_target=0.0)
        with pytest.raises(EstimationError):
            AdaptivePolicy(grid_points=2)

    def test_validate_rejects_foreign_parameters(self):
        policy = AdaptivePolicy(
            parameters={"nope": ItemParameters()}
        )
        with pytest.raises(EstimationError, match="nope"):
            build_exam(adaptive=policy)

    def test_validate_rejects_empty_pool(self):
        exam = ExamBuilder("essay-only", "Essays").add_item(
            MultipleChoiceItem.build(
                "q1", "Q1?", ["a", "b"], correct_index=0
            )
        ).build()
        exam.items = []
        exam.adaptive = AdaptivePolicy()
        with pytest.raises(EstimationError, match="no analyzable"):
            exam.adaptive.validate(exam)

    def test_pool_for_prefers_explicit_parameters(self):
        pinned = ItemParameters(a=1.7, b=0.9)
        exam = build_exam(
            adaptive=AdaptivePolicy(parameters={"q1": pinned})
        )
        pool = exam.adaptive.pool_for(exam)
        assert pool["q1"] is pinned
        # unpinned items with no stored statistics get neutral defaults
        assert pool["q2"].a == 1.0 and pool["q2"].b == 0.0

    def test_record_round_trip(self):
        policy = AdaptivePolicy(
            max_items=7,
            min_items=2,
            se_target=0.4,
            prior_sd=1.2,
            grid_points=31,
            grid_half_width=4.0,
            parameters={"q1": ItemParameters(a=1.5, b=-0.3, c=0.1)},
        )
        restored = AdaptivePolicy.from_record(policy.to_record())
        assert restored.to_record() == policy.to_record()

    def test_parameters_record_round_trip(self):
        pool = random_pool(4, seed=9)
        assert parameters_to_record(
            parameters_from_record(parameters_to_record(pool))
        ) == parameters_to_record(pool)


class TestItemInformationTable:
    def test_build_rejects_empty_pool(self):
        with pytest.raises(EstimationError, match="empty pool"):
            ItemInformationTable.build({})

    def test_grid_matches_estimator_shape(self):
        table = ItemInformationTable.build(
            random_pool(3), grid_points=61, grid_half_width=4.5
        )
        assert len(table.grid) == 61
        assert table.grid[0] == -4.5
        assert math.isclose(table.grid[-1], 4.5)

    def test_grid_index_clamps(self):
        table = ItemInformationTable.build(random_pool(3))
        assert table.grid_index(-99.0) == 0
        assert table.grid_index(99.0) == len(table.grid) - 1
        assert table.grid[table.grid_index(0.0)] == pytest.approx(0.0)

    def test_select_matches_exact_argmax_at_grid_thetas(self):
        pool = random_pool(6, seed=3)
        table = ItemInformationTable.build(pool)
        for theta in table.grid:
            assert table.select(theta, set()) == select_next_item(
                theta, pool, set()
            )

    def test_select_skips_administered_and_exhausts(self):
        pool = random_pool(3, seed=1)
        table = ItemInformationTable.build(pool)
        seen = set()
        for _ in range(3):
            choice = table.select(0.0, seen)
            assert choice not in seen
            seen.add(choice)
        assert table.select(0.0, seen) is None

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        size=st.integers(min_value=1, max_value=8),
        grid_points=st.integers(min_value=3, max_value=31),
        half_width=st.floats(min_value=1.0, max_value=5.0),
        administer=st.integers(min_value=0, max_value=4),
    )
    def test_table_argmax_equals_exact_argmax(
        self, seed, size, grid_points, half_width, administer
    ):
        """The precomputed argmax IS the per-request IRT argmax, at
        every grid ability, for any pool and any administered subset."""
        pool = random_pool(size, seed=seed)
        table = ItemInformationTable.build(
            pool, grid_points=grid_points, grid_half_width=half_width
        )
        administered = set(sorted(pool)[: min(administer, size)])
        for theta in table.grid:
            assert table.select(theta, administered) == select_next_item(
                theta, pool, administered
            )


class TestAdaptiveSession:
    def policy(self, **kwargs):
        defaults = dict(max_items=4, min_items=2, se_target=0.5)
        defaults.update(kwargs)
        return AdaptivePolicy(**defaults)

    def session(self, pool=None, **kwargs):
        pool = pool if pool is not None else random_pool(6, seed=2)
        policy = self.policy(**kwargs)
        table = ItemInformationTable.build(pool)
        return AdaptiveSession.for_exam(table, policy)

    def test_deterministic_replay(self):
        first = self.session()
        replay = self.session()
        answers = [True, False, True, True]
        for correct in answers:
            item = first.next_item()
            first.record(item, correct)
        for item, correct in zip(first.administered, first.responses):
            replay.record(item, correct)
        assert replay.administered == first.administered
        assert replay.trajectory == first.trajectory  # bit-identical
        assert replay.theta == first.theta

    def test_max_items_stops(self):
        session = self.session(max_items=2, min_items=1, se_target=1e-9)
        for _ in range(2):
            session.record(session.next_item(), True)
        assert session.next_item() is None
        assert session.stop_reason() == "max_items"

    def test_pool_exhausted_stops(self):
        session = self.session(
            pool=random_pool(2, seed=4),
            max_items=10, min_items=5, se_target=1e-9,
        )
        while session.next_item() is not None:
            session.record(session.next_item(), False)
        assert session.stop_reason() == "pool_exhausted"

    def test_se_target_stops(self):
        session = self.session(max_items=6, min_items=1, se_target=10.0)
        session.record(session.next_item(), True)
        assert session.stop_reason() == "se_target"

    def test_rejects_foreign_and_repeated_items(self):
        session = self.session()
        with pytest.raises(EstimationError, match="not in the adaptive"):
            session.record("nope", True)
        item = session.next_item()
        session.record(item, True)
        with pytest.raises(EstimationError, match="already administered"):
            session.record(item, False)

    def test_status_payload_shape(self):
        session = self.session()
        status = session.status()
        assert status["done"] is False
        assert status["item_id"] == session.next_item()
        assert status["step"] == 0
        assert status["table_version"] == 0

    def test_correct_answers_raise_theta(self):
        right = self.session(max_items=4, min_items=4, se_target=1e-9)
        wrong = self.session(max_items=4, min_items=4, se_target=1e-9)
        for _ in range(4):
            right.record(right.next_item(), True)
            wrong.record(wrong.next_item(), False)
        assert right.theta > wrong.theta


class TestCalibrationSnapshots:
    def test_write_list_latest_round_trip(self, tmp_path):
        pool = random_pool(3, seed=7)
        write_calibration_snapshot(tmp_path, "ex-a", 1, pool)
        write_calibration_snapshot(tmp_path, "ex-a", 3, pool)
        write_calibration_snapshot(tmp_path, "ex-b", 2, pool)
        assert list_calibration_snapshots(tmp_path) == {
            "ex-a": [1, 3],
            "ex-b": [2],
        }
        version, restored = latest_calibration_snapshot(tmp_path, "ex-a")
        assert version == 3
        assert parameters_to_record(restored) == parameters_to_record(pool)

    def test_missing_directory_and_exam(self, tmp_path):
        assert list_calibration_snapshots(tmp_path / "nope") == {}
        assert latest_calibration_snapshot(tmp_path, "ghost") is None

    def test_unrecognized_format_rejected(self, tmp_path):
        path = tmp_path / "params-ex-v1.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(EstimationError, match="format"):
            latest_calibration_snapshot(tmp_path, "ex")


class TestCollectCalibrationMatrix:
    def test_missing_cells_are_none_not_wrong(self):
        from repro.lms.learners import Learner
        from repro.lms.lms import Lms

        exam = build_exam(
            questions=4,
            adaptive=AdaptivePolicy(
                max_items=2, min_items=1, se_target=1e-9
            ),
        )
        lms = Lms()
        lms.offer_exam(exam)
        for learner_id in ("s1", "s2"):
            lms.register_learner(Learner(learner_id=learner_id, name=""))
            lms.enroll(learner_id, exam.exam_id)
            lms.start_exam(learner_id, exam.exam_id)
            for _ in range(2):
                status = lms.next_item(learner_id, exam.exam_id)
                lms.answer(
                    learner_id, exam.exam_id, status["item_id"],
                    "A" if learner_id == "s1" else "B",
                )
            lms.submit(learner_id, exam.exam_id)
        item_ids, matrix = collect_calibration_matrix(lms, exam.exam_id)
        assert item_ids == ["q1", "q2", "q3", "q4"]
        assert len(matrix) == 2
        for row, expected in zip(matrix, (True, False)):
            administered = [cell for cell in row if cell is not None]
            assert len(administered) == 2  # max_items, not pool size
            assert all(cell is expected for cell in administered)
