"""Regression tests for CAT termination and construction edge cases
(:mod:`repro.adaptive.cat`).

These pin the fixes for sessions that previously looped or KeyError'd:
every sitting now stops with exactly one defined ``stop_reason`` and
malformed constructor state fails fast instead of mid-sitting.
"""

import pytest

from repro.core.errors import EstimationError
from repro.adaptive.cat import CatConfig, CatSession
from repro.adaptive.irt import ItemParameters


def pool(size=5):
    return {
        f"q{index}": ItemParameters(a=1.0 + 0.1 * index, b=0.3 * index - 0.6)
        for index in range(1, size + 1)
    }


class TestConstruction:
    def test_empty_pool_rejected(self):
        with pytest.raises(EstimationError, match="pool is empty"):
            CatSession(pool={})

    def test_administered_responses_length_mismatch_rejected(self):
        with pytest.raises(EstimationError, match="1 administered"):
            CatSession(pool=pool(), administered=["q1"], responses=[])

    def test_administered_items_outside_pool_rejected(self):
        # a session restored against a recalibrated pool that dropped
        # items used to KeyError inside record(); now it fails upfront
        with pytest.raises(EstimationError, match="ghost"):
            CatSession(
                pool=pool(2),
                administered=["q1", "ghost"],
                responses=[True, False],
            )

    def test_config_bounds(self):
        with pytest.raises(EstimationError):
            CatConfig(max_items=0)
        with pytest.raises(EstimationError):
            CatConfig(max_items=3, min_items=4)
        with pytest.raises(EstimationError):
            CatConfig(min_items=0)
        with pytest.raises(EstimationError):
            CatConfig(se_target=-1.0)


class TestTermination:
    def test_max_items_is_the_deterministic_backstop(self):
        session = CatSession(
            pool=pool(5),
            config=CatConfig(max_items=3, min_items=1, se_target=1e-12),
        )
        ability, se = session.run(lambda item_id: True)
        assert len(session.administered) == 3
        assert session.stop_reason() == "max_items"
        assert session.next_item() is None

    def test_pool_exhausted_before_budget(self):
        session = CatSession(
            pool=pool(2),
            config=CatConfig(max_items=10, min_items=5, se_target=1e-12),
        )
        session.run(lambda item_id: False)
        assert session.administered and len(session.administered) == 2
        assert session.stop_reason() == "pool_exhausted"
        assert session.next_item() is None

    def test_se_target_respects_min_items(self):
        # a huge se_target is met immediately, but the session must
        # still administer min_items before stopping on it
        session = CatSession(
            pool=pool(5),
            config=CatConfig(max_items=5, min_items=3, se_target=100.0),
        )
        session.run(lambda item_id: True)
        assert len(session.administered) == 3
        assert session.stop_reason() == "se_target"

    def test_exactly_one_stop_reason_and_priority(self):
        # budget == pool size: both rules fire; max_items wins so the
        # reason is stable across replays
        session = CatSession(
            pool=pool(2),
            config=CatConfig(max_items=2, min_items=1, se_target=1e-12),
        )
        session.run(lambda item_id: True)
        assert session.stop_reason() == "max_items"

    def test_run_terminates_even_with_degenerate_items(self):
        # zero-discrimination items carry no information; the SE never
        # converges, so only the budget ends the session — this used to
        # loop when is_done() consulted the SE alone
        degenerate = {f"q{index}": ItemParameters(a=0.2) for index in range(4)}
        session = CatSession(
            pool=degenerate,
            config=CatConfig(max_items=4, min_items=1, se_target=1e-12),
        )
        session.run(lambda item_id: item_id.endswith(("0", "2")))
        assert session.stop_reason() in ("max_items", "pool_exhausted")
        assert len(session.administered) == 4

    def test_no_reason_while_in_progress(self):
        session = CatSession(pool=pool(5))
        assert session.stop_reason() is None
        assert not session.is_done()
        session.record(session.next_item(), True)
        assert session.stop_reason() is None
