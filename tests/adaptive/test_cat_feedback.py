"""Tests for the CAT session and learner feedback (repro.adaptive)."""

import random

import pytest

from repro.core.cognition import CognitionLevel
from repro.core.errors import AnalysisError, EstimationError
from repro.adaptive.cat import CatConfig, CatSession, select_next_item
from repro.adaptive.feedback import build_feedback
from repro.adaptive.irt import ItemParameters, probability_correct
from repro.delivery.clock import ManualClock
from repro.delivery.scoring import grade_session
from repro.delivery.session import ExamSession
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem


def calibrated_pool(size=40, seed=123):
    rng = random.Random(seed)
    return {
        f"item-{index:03d}": ItemParameters(
            a=rng.uniform(0.8, 2.2), b=rng.uniform(-3, 3)
        )
        for index in range(size)
    }


def oracle(true_ability, pool, seed=0):
    rng = random.Random(seed)

    def answer(item_id):
        return rng.random() < probability_correct(true_ability, pool[item_id])

    return answer


class TestSelectNextItem:
    def test_picks_most_informative(self):
        pool = {
            "far": ItemParameters(a=1.5, b=3.0),
            "near": ItemParameters(a=1.5, b=0.1),
        }
        assert select_next_item(0.0, pool, set()) == "near"

    def test_skips_administered(self):
        pool = {
            "near": ItemParameters(a=1.5, b=0.0),
            "far": ItemParameters(a=1.5, b=2.0),
        }
        assert select_next_item(0.0, pool, {"near"}) == "far"

    def test_exhausted_pool(self):
        pool = {"only": ItemParameters()}
        assert select_next_item(0.0, pool, {"only"}) is None


class TestCatConfig:
    def test_defaults_valid(self):
        CatConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_items": 0},
            {"min_items": 0},
            {"min_items": 30, "max_items": 20},
            {"se_target": 0},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(EstimationError):
            CatConfig(**kwargs)


class TestCatSession:
    def test_empty_pool_rejected(self):
        with pytest.raises(EstimationError):
            CatSession(pool={})

    def test_session_runs_and_stops(self):
        pool = calibrated_pool()
        session = CatSession(pool=pool, config=CatConfig(max_items=15))
        ability, se = session.run(oracle(1.0, pool, seed=1))
        assert session.is_done()
        assert len(session.administered) <= 15
        assert se < float("inf")

    def test_recovers_true_ability(self):
        pool = calibrated_pool(size=80)
        errors = []
        for true_theta in (-1.5, 0.0, 1.5):
            estimates = []
            for seed in range(5):
                session = CatSession(
                    pool=pool, config=CatConfig(max_items=25, se_target=0.3)
                )
                estimate, _ = session.run(oracle(true_theta, pool, seed=seed))
                estimates.append(estimate)
            mean = sum(estimates) / len(estimates)
            errors.append(abs(mean - true_theta))
        assert max(errors) < 0.6

    def test_se_shrinks_as_items_administered(self):
        pool = calibrated_pool()
        session = CatSession(pool=pool, config=CatConfig(max_items=20, se_target=0.01))
        answer = oracle(0.0, pool, seed=2)
        ses = []
        while not session.is_done():
            item_id = session.next_item()
            session.record(item_id, answer(item_id))
            ses.append(session.standard_error)
        assert ses[-1] < ses[0]

    def test_stops_at_se_target(self):
        pool = calibrated_pool(size=100)
        config = CatConfig(max_items=100, min_items=3, se_target=0.45)
        session = CatSession(pool=pool, config=config)
        session.run(oracle(0.0, pool, seed=3))
        assert session.standard_error <= 0.45 or len(session.administered) == 100

    def test_min_items_respected(self):
        pool = calibrated_pool(size=30)
        config = CatConfig(max_items=30, min_items=5, se_target=10.0)
        session = CatSession(pool=pool, config=config)
        session.run(oracle(0.0, pool, seed=4))
        assert len(session.administered) >= 5

    def test_double_administration_rejected(self):
        pool = calibrated_pool(size=5)
        session = CatSession(pool=pool)
        item_id = session.next_item()
        session.record(item_id, True)
        with pytest.raises(EstimationError):
            session.record(item_id, False)

    def test_unknown_item_rejected(self):
        session = CatSession(pool=calibrated_pool(size=5))
        with pytest.raises(EstimationError):
            session.record("ghost", True)

    def test_next_item_none_when_done(self):
        pool = {"a": ItemParameters(), "b": ItemParameters()}
        session = CatSession(pool=pool, config=CatConfig(max_items=1, min_items=1))
        session.record("a", True)
        assert session.is_done()
        assert session.next_item() is None


def tagged_exam():
    return (
        ExamBuilder("e", "E")
        .add_item(
            MultipleChoiceItem.build(
                "q1", "Sorting?", ["a", "b"], correct_index=0,
                subject="sorting", cognition_level=CognitionLevel.KNOWLEDGE,
            )
        )
        .add_item(
            MultipleChoiceItem.build(
                "q2", "More sorting?", ["a", "b"], correct_index=0,
                subject="sorting", cognition_level=CognitionLevel.APPLICATION,
            )
        )
        .add_item(
            MultipleChoiceItem.build(
                "q3", "Hashing?", ["a", "b"], correct_index=0,
                subject="hashing", cognition_level=CognitionLevel.KNOWLEDGE,
            )
        )
        .build()
    )


def graded_sitting(answers):
    session = ExamSession(tagged_exam(), "lea", clock=ManualClock())
    session.start()
    for item_id, response in answers.items():
        session.answer(item_id, response)
    session.submit()
    return grade_session(session)


class TestFeedback:
    def test_mastery_per_concept(self):
        sitting = graded_sitting({"q1": "A", "q2": "B", "q3": "A"})
        feedback = build_feedback(tagged_exam(), sitting)
        by_concept = {m.concept: m for m in feedback.mastery}
        assert by_concept["sorting"].fraction == 0.5
        assert by_concept["hashing"].fraction == 1.0

    def test_weak_levels_identified(self):
        sitting = graded_sitting({"q1": "A", "q2": "B", "q3": "A"})
        feedback = build_feedback(tagged_exam(), sitting)
        assert CognitionLevel.APPLICATION in feedback.weak_levels
        assert CognitionLevel.KNOWLEDGE not in feedback.weak_levels

    def test_suggestions_for_weak_concepts(self):
        sitting = graded_sitting({"q1": "B", "q2": "B", "q3": "A"})
        feedback = build_feedback(tagged_exam(), sitting)
        assert any("sorting" in s for s in feedback.suggestions)

    def test_all_strong_gets_praise(self):
        sitting = graded_sitting({"q1": "A", "q2": "A", "q3": "A"})
        feedback = build_feedback(tagged_exam(), sitting)
        assert feedback.weak_levels == []
        assert "Solid performance" in feedback.suggestions[0]

    def test_render(self):
        sitting = graded_sitting({"q1": "A", "q2": "B", "q3": "A"})
        text = build_feedback(tagged_exam(), sitting).render()
        assert "lea" in text
        assert "sorting" in text
        assert "%" in text

    def test_bad_threshold_rejected(self):
        sitting = graded_sitting({"q1": "A"})
        with pytest.raises(AnalysisError):
            build_feedback(tagged_exam(), sitting, mastery_threshold=0)

    def test_mastery_sorted_weakest_first(self):
        sitting = graded_sitting({"q1": "B", "q2": "B", "q3": "A"})
        feedback = build_feedback(tagged_exam(), sitting)
        fractions = [m.fraction for m in feedback.mastery]
        assert fractions == sorted(fractions)
