"""Multi-shard recovery: merging per-shard WALs into one cohort state.

``mine-assess recover`` accepts several WAL directories (or one cluster
root of ``shard-*`` subdirectories) and merges the per-shard recoveries
through :func:`repro.lms.persistence.merge_payloads` into one LMS that
answers for the whole cohort.
"""

import pytest

from repro.core.errors import BankError
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.lms.persistence import (
    _collect_payload,
    lms_from_payload,
    merge_payloads,
)
from repro.sim.workloads import classroom_exam

QUESTIONS = 6


def shard_lms(learner_ids, exam=None):
    """A mini shard: offer the exam, run each learner to submission."""
    exam = exam or classroom_exam(QUESTIONS)
    lms = Lms()
    lms.offer_exam(exam)
    for learner_id in learner_ids:
        lms.register_learner(
            Learner(learner_id=learner_id, name=learner_id)
        )
        lms.enroll(learner_id, exam.exam_id)
        lms.start_exam(learner_id, exam.exam_id)
        for item in exam.analyzable_items():
            lms.answer(learner_id, exam.exam_id, item.item_id, "A")
        lms.submit(learner_id, exam.exam_id)
    return lms


class TestMergePayloads:
    def test_merge_reassembles_the_whole_cohort(self):
        exam = classroom_exam(QUESTIONS)
        shards = [
            shard_lms(["amy", "bob"], exam),
            shard_lms(["cho"], exam),
            shard_lms(["dee", "eli"], exam),
        ]
        merged = lms_from_payload(
            merge_payloads([_collect_payload(shard) for shard in shards])
        )
        assert len(merged.learners) == 5
        assert sorted(merged.enrolled(exam.exam_id)) == [
            "amy", "bob", "cho", "dee", "eli"
        ]
        assert merged.offered_exams() == [exam.exam_id]
        graded = {
            sitting.learner_id
            for sitting in merged.results_for(exam.exam_id)
        }
        assert graded == {"amy", "bob", "cho", "dee", "eli"}
        # per-learner scores survive the merge intact
        source = {
            sitting.learner_id: sitting.scores
            for shard in shards
            for sitting in shard.results_for(exam.exam_id)
        }
        for sitting in merged.results_for(exam.exam_id):
            assert sitting.scores == source[sitting.learner_id]

    def test_exam_broadcast_duplicates_collapse(self):
        exam = classroom_exam(QUESTIONS)
        payloads = [
            _collect_payload(shard_lms(["amy"], exam)),
            _collect_payload(shard_lms(["bob"], exam)),
        ]
        merged = merge_payloads(payloads)
        assert len(merged["exams"]) == 1

    def test_in_flight_sittings_survive(self):
        exam = classroom_exam(QUESTIONS)
        lms = Lms()
        lms.offer_exam(exam)
        lms.register_learner(Learner(learner_id="amy", name="amy"))
        lms.enroll("amy", exam.exam_id)
        lms.start_exam("amy", exam.exam_id)
        first = exam.analyzable_items()[0]
        lms.answer("amy", exam.exam_id, first.item_id, "A")
        merged = lms_from_payload(
            merge_payloads(
                [
                    _collect_payload(lms),
                    _collect_payload(shard_lms(["bob"], exam)),
                ]
            )
        )
        sitting = merged.sitting("amy", exam.exam_id)
        assert sitting is not None

    def test_same_learner_on_two_shards_is_an_error(self):
        exam = classroom_exam(QUESTIONS)
        payload = _collect_payload(shard_lms(["amy"], exam))
        with pytest.raises(BankError):
            merge_payloads([payload, payload])

    def test_wrong_format_is_an_error(self):
        with pytest.raises(BankError):
            merge_payloads([{"format": "not-a-snapshot"}])

    def test_empty_list_is_an_error(self):
        with pytest.raises(BankError):
            merge_payloads([])

    def test_clock_continues_from_the_furthest_shard(self):
        exam = classroom_exam(QUESTIONS)
        one = _collect_payload(shard_lms(["amy"], exam))
        two = _collect_payload(shard_lms(["bob"], exam))
        one["clock"] = 100.0
        two["clock"] = 250.0
        merged = merge_payloads([one, two])
        assert merged["clock"] == 250.0

    def test_tracking_is_one_timeline(self):
        exam = classroom_exam(QUESTIONS)
        merged = merge_payloads(
            [
                _collect_payload(shard_lms(["amy"], exam)),
                _collect_payload(shard_lms(["bob"], exam)),
            ]
        )
        stamps = [event["timestamp"] for event in merged["tracking"]]
        assert stamps == sorted(stamps)


class TestRecoverCli:
    def test_recover_merges_a_cluster_root(self, tmp_path, capsys):
        """serve --workers style layout: WALs under root/shard-*; the
        CLI recovers each and prints the merged whole-cohort report."""
        from repro.cli import main
        from repro.server.app import ExamServer

        exam = classroom_exam(QUESTIONS)
        root = tmp_path / "wal"
        for index, learner_ids in enumerate([["amy", "bob"], ["cho"]]):
            wal_dir = root / f"shard-{index}"
            with ExamServer(wal_dir=wal_dir) as server:
                lms = server.lms
                lms.offer_exam(exam)
                for learner_id in learner_ids:
                    lms.register_learner(
                        Learner(learner_id=learner_id, name=learner_id)
                    )
                    lms.enroll(learner_id, exam.exam_id)
                    lms.start_exam(learner_id, exam.exam_id)
                    for item in exam.analyzable_items():
                        lms.answer(
                            learner_id, exam.exam_id, item.item_id, "A"
                        )
                    lms.submit(learner_id, exam.exam_id)

        out_path = tmp_path / "merged.json"
        code = main(["recover", str(root), "--out", str(out_path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "merged 2 shard recoveries" in output
        assert "3 enrolled, 3 graded" in output
        assert out_path.exists()

        from repro.lms.persistence import load_lms

        merged = load_lms(out_path)
        assert len(merged.learners) == 3

    def test_recover_single_dir_unchanged(self, tmp_path, capsys):
        from repro.cli import main
        from repro.server.app import ExamServer

        exam = classroom_exam(QUESTIONS)
        wal_dir = tmp_path / "wal"
        with ExamServer(wal_dir=wal_dir) as server:
            server.lms.offer_exam(exam)
            server.lms.register_learner(
                Learner(learner_id="amy", name="amy")
            )
            server.lms.enroll("amy", exam.exam_id)
        code = main(["recover", str(wal_dir)])
        output = capsys.readouterr().out
        assert code == 0
        assert "1 enrolled" in output
        assert "merged" not in output
