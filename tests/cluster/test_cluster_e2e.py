"""The sharded tier end-to-end: real worker processes, real sockets.

One module-scoped 3-worker cluster serves every test: a seeded cohort
is driven through the topology-aware load generator, then the tests
check request proxying (any worker answers for any learner), the
scatter-gathered roster / results / analysis against a single-process
ground truth, the lock + cluster observability surfaces, and finally
crash recovery — SIGKILL one worker mid-tier, let the watchdog restart
it, and prove every acknowledged answer survived and the merged
analysis still matches.
"""

import http.client
import json
import signal
import time

import pytest

from repro.cluster.ring import HashRing
from repro.cluster.supervisor import ExamCluster
from repro.core.question_analysis import analyze_cohort
from repro.server.loadgen import discover_topology, run_loadgen
from repro.server.serialize import analysis_to_dict
from repro.sim.workloads import classroom_exam

LEARNERS = 36
QUESTIONS = 10
WORKERS = 3
SEED = 17


def request_json(url, method="GET", path="/", body=None, timeout=15):
    host, port = url.rsplit(":", 1)
    host = host.split("//")[1]
    connection = http.client.HTTPConnection(host, int(port), timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else None
    finally:
        connection.close()


def retry_json(url, path, tries=40, expect=200):
    """GET with patience for a shard mid-recovery (503 Retry-After)."""
    for _ in range(tries):
        status, payload = request_json(url, path=path)
        if status == expect:
            return payload
        time.sleep(0.25)
    raise AssertionError(f"{path} never reached {expect}, last {status}")


@pytest.fixture(scope="module")
def tier(tmp_path_factory):
    exam = classroom_exam(QUESTIONS)
    wal_root = tmp_path_factory.mktemp("cluster-wal")
    with ExamCluster(workers=WORKERS, wal_root=wal_root) as cluster:
        report = run_loadgen(
            cluster.url,
            learners=LEARNERS,
            questions=QUESTIONS,
            seed=SEED,
            workers=4,
            batch=5,
            cluster=True,
        )
        yield {
            "cluster": cluster,
            "exam": exam,
            "report": report,
            "wal_root": wal_root,
        }


def expected_analysis(tier):
    ordered = sorted(
        tier["report"].responses, key=lambda response: response.examinee_id
    )
    return analysis_to_dict(
        analyze_cohort(ordered, tier["exam"].question_specs())
    )


class TestTopologyAndProxy:
    def test_topology_is_served_and_stable(self, tier):
        ring, addrs = discover_topology(tier["cluster"].url)
        assert len(addrs) == WORKERS
        assert sorted(addrs) == sorted(tier["cluster"].shards)

    def test_loadgen_had_no_errors(self, tier):
        assert tier["report"].errors == 0
        assert tier["report"].learners == LEARNERS

    def test_any_worker_answers_for_any_learner(self, tier):
        """Per-learner reads against the *wrong* shard's direct port
        are proxied to the owner — same answer from every worker."""
        exam_id = tier["exam"].exam_id
        learner = tier["report"].responses[0].examinee_id
        path = f"/exams/{exam_id}/sittings/{learner}"
        answers = []
        for shard in tier["cluster"].shards:
            status, payload = request_json(
                tier["cluster"].worker_url(shard), path=path
            )
            assert status == 200, (shard, payload)
            answers.append(payload)
        assert answers[0] == answers[1] == answers[2]
        assert answers[0]["state"] == "submitted"

    def test_proxy_counter_visible_in_metrics(self, tier):
        proxied = 0
        for shard in tier["cluster"].shards:
            _, metrics = request_json(
                tier["cluster"].worker_url(shard), path="/metrics"
            )
            assert metrics["cluster"]["shard"] == shard
            assert metrics["cluster"]["workers"] == WORKERS
            counters = metrics.get("counters", {})
            proxied += sum(
                count
                for name, count in counters.items()
                if name.startswith("server.proxied")
            )
        # the wrong-shard reads in the proxy test above guarantee some
        assert proxied > 0

    def test_lock_stats_visible_in_metrics(self, tier):
        _, metrics = request_json(tier["cluster"].url, path="/metrics")
        scopes = metrics["locks"]["scopes"]
        assert "shard.exclusive" in scopes and "shard.shared" in scopes
        assert "sitting" in scopes
        assert scopes["sitting"]["acquisitions"] > 0


class TestScatterGather:
    def test_roster_is_the_whole_cohort(self, tier):
        payload = retry_json(
            tier["cluster"].url,
            f"/exams/{tier['exam'].exam_id}/enrollments",
        )
        assert payload["enrolled"] == sorted(
            response.examinee_id for response in tier["report"].responses
        )

    def test_results_cover_every_learner_in_order(self, tier):
        payload = retry_json(
            tier["cluster"].url, f"/exams/{tier['exam'].exam_id}/results"
        )
        learner_ids = [graded["learner_id"] for graded in payload["results"]]
        assert learner_ids == sorted(learner_ids)
        assert learner_ids == sorted(
            response.examinee_id for response in tier["report"].responses
        )

    def test_analysis_matches_single_process_bit_for_bit(self, tier):
        payload = retry_json(
            tier["cluster"].url, f"/exams/{tier['exam'].exam_id}/analysis"
        )
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            expected_analysis(tier), sort_keys=True
        )


class TestCrashRecovery:
    def test_sigkill_then_watchdog_restart_loses_nothing(self, tier):
        """Kill the busiest shard outright; after the watchdog restart
        + WAL replay, every acknowledged answer is still there and the
        scatter-gathered analysis is still bit-identical."""
        cluster = tier["cluster"]
        ring = HashRing(cluster.shards)
        owners = {}
        for response in tier["report"].responses:
            owners.setdefault(
                ring.route(response.examinee_id), []
            ).append(response.examinee_id)
        victim = max(owners, key=lambda shard: len(owners[shard]))
        old_pid = cluster.kill_worker(victim, signal.SIGKILL)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if cluster.restarts[victim] > 0 and cluster._probe(victim):
                break
            time.sleep(0.1)
        else:
            raise AssertionError(f"{victim} never came back")
        assert cluster.pid(victim) != old_pid

        # every sitting the victim owned survived, with its answers
        exam_id = tier["exam"].exam_id
        by_learner = {
            response.examinee_id: response
            for response in tier["report"].responses
        }
        for learner_id in owners[victim]:
            payload = retry_json(
                cluster.url, f"/exams/{exam_id}/sittings/{learner_id}"
            )
            assert payload["state"] == "submitted"
            posted = sum(
                1
                for selection in by_learner[learner_id].selections
                if selection is not None
            )
            assert len(payload["answered"]) == posted

        # and the cohort-level answer is unchanged
        payload = retry_json(cluster.url, f"/exams/{exam_id}/analysis")
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            expected_analysis(tier), sort_keys=True
        )
