"""Consistent-hash ring: stable placement, bounded remapping."""

import pytest

from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.core.errors import AnalysisError

KEYS = [f"learner-{index:04d}" for index in range(2000)]


class TestRouting:
    def test_same_key_same_shard_always(self):
        ring = HashRing(["a", "b", "c"])
        first = {key: ring.route(key) for key in KEYS}
        for _ in range(3):
            assert {key: ring.route(key) for key in KEYS} == first

    def test_placement_is_process_independent(self):
        """Two independently built rings route identically — the hash
        is keyed content (blake2b), not Python's salted ``hash()``, so
        every worker process and every client agree on ownership."""
        one = HashRing(["shard-0", "shard-1", "shard-2"])
        two = HashRing(["shard-2", "shard-0", "shard-1"])  # any order
        assert [one.route(key) for key in KEYS] == [
            two.route(key) for key in KEYS
        ]

    def test_every_shard_gets_a_fair_share(self):
        ring = HashRing(["a", "b", "c", "d"])
        counts = {shard: 0 for shard in ring.shards}
        for key in KEYS:
            counts[ring.route(key)] += 1
        expected = len(KEYS) / len(counts)
        for shard, count in counts.items():
            # 64 virtual nodes keep the spread well inside 2x of fair
            assert expected / 2 < count < expected * 2, (shard, count)

    def test_wraparound_routes_to_first_point(self):
        ring = HashRing(["only"])
        assert all(ring.route(key) == "only" for key in KEYS[:50])


class TestRemapping:
    def test_adding_a_shard_remaps_about_one_nth(self):
        ring = HashRing(["a", "b", "c"])
        before = {key: ring.route(key) for key in KEYS}
        ring.add("d")
        moved = sum(1 for key in KEYS if ring.route(key) != before[key])
        # consistent hashing: ~1/4 of keys move to the new shard;
        # naive mod-N hashing would move ~3/4
        assert 0.10 * len(KEYS) < moved < 0.45 * len(KEYS), moved
        # and every moved key moved *to* the new shard
        for key in KEYS:
            if ring.route(key) != before[key]:
                assert ring.route(key) == "d"

    def test_removing_a_shard_strands_only_its_keys(self):
        ring = HashRing(["a", "b", "c", "d"])
        before = {key: ring.route(key) for key in KEYS}
        ring.remove("d")
        for key in KEYS:
            if before[key] != "d":
                assert ring.route(key) == before[key]
            else:
                assert ring.route(key) != "d"


class TestErrors:
    def test_empty_ring_cannot_route(self):
        with pytest.raises(AnalysisError):
            HashRing().route("x")

    def test_duplicate_shard_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(AnalysisError):
            ring.add("a")

    def test_removing_unknown_shard_rejected(self):
        with pytest.raises(AnalysisError):
            HashRing(["a"]).remove("b")

    def test_replicas_and_len(self):
        ring = HashRing(["a", "b"], replicas=8)
        assert len(ring) == 2
        assert ring.replicas == 8
        assert "a" in ring and "z" not in ring
        assert ring.shards == ["a", "b"]
        assert HashRing(["x"]).replicas == DEFAULT_REPLICAS
