"""Scatter-gather partials: merged analysis == single-process analysis.

The sharded tier's correctness claim is *bit-identity*: splitting a
cohort across shards, exporting each shard's columnar partial, and
merging must produce the same :class:`CohortAnalysis` — every count,
score, discrimination index, and diagnostic signal — as one process
analysing the whole cohort.  These tests split seeded cohorts every
way the cluster would (hash ring, round-robin, lopsided) and diff the
serialized analyses.
"""

import json

import pytest

from repro.cluster.ring import HashRing
from repro.core.columnar import (
    LiveCohortAnalysis,
    ResponseMatrix,
    merge_partials,
)
from repro.core.errors import AnalysisError
from repro.core.question_analysis import analyze_cohort
from repro.server.serialize import analysis_to_dict
from repro.sim.population import make_population
from repro.sim.workloads import (
    classroom_exam,
    classroom_parameters,
    simulate_sitting_data,
)

QUESTIONS = 12


def seeded_cohort(students=60, seed=11, omit_rate=0.0):
    exam = classroom_exam(QUESTIONS)
    data = simulate_sitting_data(
        exam,
        classroom_parameters(QUESTIONS),
        make_population(students, seed=seed),
        seed=seed + 1,
        omit_rate=omit_rate,
    )
    return exam, list(data.responses)


def analysis_json(specs, responses):
    """The canonical single-process answer, as the server serializes it."""
    ordered = sorted(responses, key=lambda response: response.examinee_id)
    return json.dumps(
        analysis_to_dict(analyze_cohort(ordered, specs)), sort_keys=True
    )


def merged_json(specs, shards):
    partials = []
    for shard_responses in shards:
        matrix = ResponseMatrix(specs)
        for response in shard_responses:
            matrix.extend([response])
        partials.append(matrix.export_partial())
    merged = merge_partials(specs, partials)
    return json.dumps(analysis_to_dict(merged.analyze()), sort_keys=True)


def split_by(responses, key):
    shards = {}
    for response in responses:
        shards.setdefault(key(response), []).append(response)
    return list(shards.values())


class TestDifferential:
    def test_hash_ring_split_matches_single_process(self):
        exam, responses = seeded_cohort()
        ring = HashRing(["shard-0", "shard-1", "shard-2"])
        shards = split_by(
            responses, lambda response: ring.route(response.examinee_id)
        )
        assert len(shards) == 3
        specs = exam.question_specs()
        assert merged_json(specs, shards) == analysis_json(specs, responses)

    def test_round_robin_split_matches(self):
        exam, responses = seeded_cohort(students=45, seed=3)
        shards = [responses[0::4], responses[1::4], responses[2::4],
                  responses[3::4]]
        specs = exam.question_specs()
        assert merged_json(specs, shards) == analysis_json(specs, responses)

    def test_lopsided_split_matches(self):
        """One shard holding nearly everything, one nearly empty."""
        exam, responses = seeded_cohort(students=30, seed=9)
        shards = [responses[:1], responses[1:]]
        specs = exam.question_specs()
        assert merged_json(specs, shards) == analysis_json(specs, responses)

    def test_omits_survive_the_merge(self):
        exam, responses = seeded_cohort(students=40, seed=5, omit_rate=0.2)
        assert any(
            selection is None
            for response in responses
            for selection in response.selections
        )
        shards = [responses[0::2], responses[1::2]]
        specs = exam.question_specs()
        assert merged_json(specs, shards) == analysis_json(specs, responses)

    def test_stray_labels_survive_the_merge(self):
        """A shard that interned an off-spec selection (stray label)
        forces the row-decode fallback instead of the byte-copy fast
        path; the merged matrix state must still be exact (the analysis
        itself rejects the off-spec pick — identically on both sides)."""
        from repro.core.question_analysis import ExamineeResponses

        exam, responses = seeded_cohort(students=24, seed=2)
        values = list(responses[0].selections)
        values[0] = "Z"  # not one of the question's spec'd options
        responses[0] = ExamineeResponses.of(
            responses[0].examinee_id, values
        )
        shards = [responses[0::2], responses[1::2]]
        specs = exam.question_specs()
        partials = []
        for shard_responses in shards:
            matrix = ResponseMatrix(specs)
            matrix.extend(shard_responses)
            partials.append(matrix.export_partial())
        merged = merge_partials(specs, partials)
        whole = ResponseMatrix(specs)
        whole.extend(
            sorted(responses, key=lambda response: response.examinee_id)
        )
        assert merged.export_partial() == whole.export_partial()

    def test_single_partial_round_trips(self):
        exam, responses = seeded_cohort(students=16, seed=4)
        specs = exam.question_specs()
        assert merged_json(specs, [responses]) == analysis_json(
            specs, responses
        )

    def test_live_analysis_export_matches_matrix_export(self):
        exam, responses = seeded_cohort(students=16, seed=4)
        specs = exam.question_specs()
        live = LiveCohortAnalysis(specs)
        matrix = ResponseMatrix(specs)
        for response in responses:
            live.add_sitting(response)
            matrix.extend([response])
        assert live.export_partial() == matrix.export_partial()


class TestMergeValidation:
    def test_duplicate_examinee_across_shards_rejected(self):
        exam, responses = seeded_cohort(students=10, seed=6)
        specs = exam.question_specs()
        matrix = ResponseMatrix(specs)
        matrix.extend(responses[:5])
        partial = matrix.export_partial()
        with pytest.raises(AnalysisError):
            merge_partials(specs, [partial, partial])

    def test_wrong_format_rejected(self):
        exam, _ = seeded_cohort(students=8, seed=6)
        with pytest.raises(AnalysisError):
            merge_partials(exam.question_specs(), [{"format": "nope"}])

    def test_wrong_width_rejected(self):
        exam, responses = seeded_cohort(students=8, seed=6)
        specs = exam.question_specs()
        matrix = ResponseMatrix(specs)
        matrix.extend(responses)
        partial = matrix.export_partial()
        partial["width"] = partial["width"] + 1
        with pytest.raises(AnalysisError):
            merge_partials(specs, [partial])

    def test_empty_partials_merge_to_empty_matrix(self):
        exam, _ = seeded_cohort(students=8, seed=6)
        specs = exam.question_specs()
        merged = merge_partials(
            specs, [ResponseMatrix(specs).export_partial()]
        )
        assert merged.examinee_ids == []
