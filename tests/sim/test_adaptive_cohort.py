"""Tests for the vectorized adaptive-cohort engine
(:mod:`repro.sim.adaptive_cohort`)."""

import pytest

from repro.core.errors import AnalysisError
from repro.sim.adaptive_cohort import simulate_adaptive_cohort
from repro.sim.population import make_population
from repro.sim.vectorized import HAVE_NUMPY
from repro.sim.workloads import classroom_adaptive_exam, classroom_exam


@pytest.fixture(scope="module")
def exam():
    return classroom_adaptive_exam(question_count=10)


@pytest.fixture(scope="module")
def learners():
    return make_population(30, seed=11)


class TestEngineParity:
    def test_scalar_and_vectorized_are_identical(self, exam, learners):
        """Both engines consume the same pre-drawn randomness, so the
        administered item order, correctness, stop reasons, and commit
        times must agree exactly — not approximately."""
        if not HAVE_NUMPY:
            pytest.skip("numpy unavailable; engines are the same code path")
        scalar = simulate_adaptive_cohort(
            exam, learners, seed=5, engine="scalar"
        )
        vector = simulate_adaptive_cohort(
            exam, learners, seed=5, engine="vectorized"
        )
        assert scalar.item_sequences == vector.item_sequences
        assert scalar.response_flags == vector.response_flags
        assert scalar.stop_reasons == vector.stop_reasons
        assert scalar.answer_times == vector.answer_times
        for left, right in zip(scalar.thetas, vector.thetas):
            assert left == pytest.approx(right, abs=1e-9)

    def test_same_seed_reproduces(self, exam, learners):
        first = simulate_adaptive_cohort(exam, learners, seed=3)
        again = simulate_adaptive_cohort(exam, learners, seed=3)
        assert first.item_sequences == again.item_sequences
        assert first.response_flags == again.response_flags

    def test_different_seeds_differ(self, exam, learners):
        first = simulate_adaptive_cohort(exam, learners, seed=1)
        other = simulate_adaptive_cohort(exam, learners, seed=2)
        assert first.response_flags != other.response_flags


class TestValidation:
    def test_requires_adaptive_policy(self, learners):
        with pytest.raises(AnalysisError, match="adaptive"):
            simulate_adaptive_cohort(classroom_exam(5), learners)

    def test_rejects_unknown_engine(self, exam, learners):
        with pytest.raises(AnalysisError, match="unknown adaptive sim"):
            simulate_adaptive_cohort(exam, learners, engine="quantum")

    def test_rejects_bad_noise_and_pace(self, exam, learners):
        with pytest.raises(AnalysisError, match="sigma"):
            simulate_adaptive_cohort(exam, learners, sigma=-0.1)
        with pytest.raises(AnalysisError):
            simulate_adaptive_cohort(exam, learners, base_seconds=0.0)


class TestCohortData:
    def test_policy_is_respected(self, exam, learners):
        data = simulate_adaptive_cohort(exam, learners, seed=7)
        policy = exam.adaptive
        assert len(data) == len(learners)
        for sequence, flags, reason in zip(
            data.item_sequences, data.response_flags, data.stop_reasons
        ):
            assert len(sequence) == len(flags)
            assert policy.min_items <= len(sequence) <= policy.max_items
            assert len(set(sequence)) == len(sequence)  # no repeats
            assert reason in ("max_items", "pool_exhausted", "se_target")

    def test_unadministered_items_are_none(self, exam, learners):
        data = simulate_adaptive_cohort(exam, learners, seed=7)
        item_ids = [item.item_id for item in exam.analyzable_items()]
        for row, sequence in zip(data.responses, data.item_sequences):
            served = set(sequence)
            for item_id, selection in zip(item_ids, row.selections):
                if item_id in served:
                    assert selection is not None
                else:
                    assert selection is None

    def test_commit_times_are_increasing(self, exam, learners):
        data = simulate_adaptive_cohort(exam, learners, seed=7)
        for times in data.answer_times:
            assert all(
                later > earlier for earlier, later in zip(times, times[1:])
            )
        assert all(duration > 0 for duration in data.durations)

    def test_duck_types_into_cohort_analysis(self, exam, learners):
        data = simulate_adaptive_cohort(exam, learners, seed=7)
        analysis = data.analyze()
        assert len(analysis.questions) == len(data.specs)

    def test_items_administered_is_the_cat_saving(self, exam, learners):
        data = simulate_adaptive_cohort(exam, learners, seed=7)
        fixed_length = len(data.specs) * len(learners)
        assert 0 < data.items_administered < fixed_length

    def test_ability_recovery_orders_extremes(self, exam):
        strong = [
            learner for learner in make_population(60, seed=21)
            if learner.ability > 1.0
        ]
        weak = [
            learner for learner in make_population(60, seed=21)
            if learner.ability < -1.0
        ]
        assert strong and weak
        high = simulate_adaptive_cohort(exam, strong, seed=9)
        low = simulate_adaptive_cohort(exam, weak, seed=9)
        mean = lambda values: sum(values) / len(values)
        assert mean(high.thetas) > mean(low.thetas)


class TestWorkloadFactory:
    def test_classroom_adaptive_exam_shape(self):
        exam = classroom_adaptive_exam(question_count=12, max_items=5)
        assert exam.adaptive is not None
        assert exam.adaptive.max_items == 5
        assert set(exam.adaptive.parameters) == {
            item.item_id for item in exam.analyzable_items()
        }

    def test_default_budget_is_half_the_pool(self):
        exam = classroom_adaptive_exam(question_count=10)
        assert exam.adaptive.max_items == 5
