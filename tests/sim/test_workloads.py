"""Tests for simulation workloads (repro.sim.workloads)."""

import pytest

from repro.core.grouping import GroupSplit
from repro.core.question_analysis import analyze_cohort
from repro.core.signals import Signal
from repro.sim.population import make_population
from repro.sim.workloads import (
    classroom_exam,
    classroom_parameters,
    pre_post_cohorts,
    simulate_sitting_data,
)


class TestClassroomScenario:
    def test_exam_shape(self):
        exam = classroom_exam()
        assert len(exam.items) == 10
        assert exam.time_limit_seconds == 45 * 60
        assert all(item.subject for item in exam.items)
        assert all(item.cognition_level is not None for item in exam.items)

    def test_parameters_cover_every_item(self):
        exam = classroom_exam()
        parameters = classroom_parameters()
        assert set(parameters) == {item.item_id for item in exam.items}

    def test_simulation_reproducible(self):
        exam = classroom_exam()
        parameters = classroom_parameters()
        learners = make_population(40, seed=5)
        a = simulate_sitting_data(exam, parameters, learners, seed=9)
        b = simulate_sitting_data(exam, parameters, learners, seed=9)
        assert a.responses == b.responses
        assert a.answer_times == b.answer_times

    def test_different_seed_differs(self):
        exam = classroom_exam()
        parameters = classroom_parameters()
        learners = make_population(40, seed=5)
        a = simulate_sitting_data(exam, parameters, learners, seed=9)
        b = simulate_sitting_data(exam, parameters, learners, seed=10)
        assert a.responses != b.responses

    def test_shapes(self):
        exam = classroom_exam()
        learners = make_population(25, seed=1)
        data = simulate_sitting_data(
            exam, classroom_parameters(), learners, seed=2
        )
        assert len(data.responses) == 25
        assert all(len(r.selections) == 10 for r in data.responses)
        assert all(len(times) == 10 for times in data.answer_times)
        assert len(data.durations) == 25
        assert all(duration > 0 for duration in data.durations)

    def test_times_increase_within_sitting(self):
        exam = classroom_exam()
        learners = make_population(5, seed=1)
        data = simulate_sitting_data(
            exam, classroom_parameters(), learners, seed=2
        )
        for times in data.answer_times:
            assert times == sorted(times)


class TestEngineeredQuality:
    """The classroom parameters must actually trigger the paper's rules."""

    def setup_method(self):
        exam = classroom_exam()
        learners = make_population(200, seed=11)
        data = simulate_sitting_data(
            exam, classroom_parameters(), learners, seed=12
        )
        self.analysis = analyze_cohort(
            data.responses, data.specs, split=GroupSplit()
        )

    def test_healthy_items_are_green(self):
        # q1 is a healthy high-a item
        assert self.analysis.question(1).signal is Signal.GREEN

    def test_dead_distractor_fires_rule_1(self):
        assert self.analysis.question(2).rules.rule_fired(1)

    def test_too_hard_guessing_item_fires_rule_3(self):
        # q5: a=0.25, b=4.0 — both groups guess close to uniformly
        assert self.analysis.question(5).rules.rule_fired(3)

    def test_flat_items_discriminate_worse_than_healthy_ones(self):
        # q3/q5 are low-a items; with a 10-question exam their D is
        # inflated by part-whole contamination (the item's own luck moves
        # examinees between groups), so assert the *ordering*, which is
        # the robust shape: engineered-flat items sit below healthy ones.
        healthy = self.analysis.question(1).discrimination
        assert self.analysis.question(3).discrimination < healthy
        assert self.analysis.question(5).discrimination < healthy

    def test_guessing_item_lands_outside_green(self):
        # q5: a=0.25, b=4.0 — pure guessing; even with contamination its
        # D stays below the 0.30 green cut point.
        assert self.analysis.question(5).signal is not Signal.GREEN


class TestPrePost:
    def test_teaching_raises_scores(self):
        exam = classroom_exam()
        parameters = classroom_parameters()
        pre, post = pre_post_cohorts(exam, parameters, size=80, seed=3)
        pre_total = sum(
            sum(1 for s, spec in zip(r.selections, pre.specs) if s == spec.correct)
            for r in pre.responses
        )
        post_total = sum(
            sum(1 for s, spec in zip(r.selections, post.specs) if s == spec.correct)
            for r in post.responses
        )
        assert post_total > pre_total

    def test_same_learner_ids(self):
        exam = classroom_exam()
        pre, post = pre_post_cohorts(exam, classroom_parameters(), size=20)
        assert [r.examinee_id for r in pre.responses] == [
            r.examinee_id for r in post.responses
        ]

    def test_omit_rate_threads_to_both_sittings(self):
        # regression: omit_rate used to be silently dropped, so ISI
        # studies could not model omission at all
        exam = classroom_exam()
        pre, post = pre_post_cohorts(
            exam, classroom_parameters(), size=60, seed=3, omit_rate=0.4
        )
        for data in (pre, post):
            omitted = sum(
                1
                for response in data.responses
                for selection in response.selections
                if selection is None
            )
            assert abs(omitted / (60 * 10) - 0.4) < 0.1

    def test_base_seconds_threads_to_both_sittings(self):
        exam = classroom_exam()
        slow_pre, slow_post = pre_post_cohorts(
            exam, classroom_parameters(), size=40, seed=3, base_seconds=90.0
        )
        fast_pre, fast_post = pre_post_cohorts(
            exam, classroom_parameters(), size=40, seed=3, base_seconds=9.0
        )
        for slow, fast in ((slow_pre, fast_pre), (slow_post, fast_post)):
            # identical seeds: only the base rescales, exactly 10x
            ratio = sum(slow.durations) / sum(fast.durations)
            assert ratio == pytest.approx(10.0, rel=1e-9)

    def test_sim_engine_threads_through(self):
        from repro.sim.vectorized import VectorizedSittingData

        exam = classroom_exam()
        pre, post = pre_post_cohorts(
            exam, classroom_parameters(), size=40, seed=3,
            sim_engine="vectorized",
        )
        assert isinstance(pre, VectorizedSittingData)
        assert isinstance(post, VectorizedSittingData)
        assert sum(post.scores) > sum(pre.scores)
