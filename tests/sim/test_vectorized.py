"""Tests for the vectorized cohort simulation engine (repro.sim.vectorized).

Vectorized draws cannot be bit-identical to the scalar engine's
``random.Random`` stream, so correctness is proven three ways:

* determinism — a fixed seed reproduces the cohort exactly;
* distributional equivalence — per-item P, option-choice frequencies,
  score moments, and time medians agree with the scalar engine within
  tight tolerances on the same parameters (three scenarios, including
  omit-heavy and dead-distractor parameterizations);
* golden invariants — a dead distractor stays dead, ``omit_rate`` is
  honored exactly in expectation, commit times increase.
"""

import statistics

import pytest

from repro.core.columnar import SKIP, LiveCohortAnalysis, fast_analyze_cohort
from repro.core.errors import AnalysisError
from repro.sim.learner_model import ItemParameters
from repro.sim.population import make_population
from repro.sim.vectorized import (
    VectorizedSittingData,
    simulate_sharded,
    simulate_sitting_arrays,
)
from repro.sim.workloads import (
    classroom_exam,
    classroom_parameters,
    simulate_sitting_data,
)


def option_frequencies(data, specs):
    """Per question: {option_or_None: fraction} over the whole cohort."""
    counts = [dict.fromkeys(tuple(spec.options) + (None,), 0) for spec in specs]
    for response in data.responses:
        for question, selection in enumerate(response.selections):
            counts[question][selection] += 1
    total = len(data.responses)
    return [
        {label: count / total for label, count in table.items()}
        for table in counts
    ]


def score_list(data):
    if hasattr(data, "scores"):
        return list(data.scores)
    return [
        sum(
            1
            for selection, spec in zip(response.selections, data.specs)
            if selection == spec.correct
        )
        for response in data.responses
    ]


def item_time_medians(data):
    """Median per-item duration (successive commit differences)."""
    width = len(data.specs)
    per_item = [[] for _ in range(width)]
    for times in data.answer_times:
        previous = 0.0
        for question, commit in enumerate(times):
            per_item[question].append(commit - previous)
            previous = commit
    return [statistics.median(series) for series in per_item]


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        exam = classroom_exam()
        parameters = classroom_parameters()
        learners = make_population(80, seed=4)
        a = simulate_sitting_arrays(exam, parameters, learners, seed=9)
        b = simulate_sitting_arrays(exam, parameters, learners, seed=9)
        assert a.codes == b.codes
        assert a.scores == b.scores
        assert a.examinee_ids == b.examinee_ids
        assert a.answer_times == b.answer_times

    def test_different_seed_differs(self):
        exam = classroom_exam()
        parameters = classroom_parameters()
        learners = make_population(80, seed=4)
        a = simulate_sitting_arrays(exam, parameters, learners, seed=9)
        b = simulate_sitting_arrays(exam, parameters, learners, seed=10)
        assert a.codes != b.codes

    def test_bad_inputs_rejected(self):
        exam = classroom_exam()
        parameters = classroom_parameters()
        learners = make_population(8, seed=1)
        with pytest.raises(AnalysisError):
            simulate_sitting_arrays(
                exam, parameters, learners, seed=0, omit_rate=1.0
            )
        with pytest.raises(AnalysisError):
            simulate_sitting_arrays(
                exam, parameters, learners, seed=0, base_seconds=0
            )
        with pytest.raises(AnalysisError):
            simulate_sitting_arrays(exam, parameters, learners, seed=-1)


class TestCompatibility:
    """VectorizedSittingData duck-types SimulatedSittingData."""

    def setup_method(self):
        self.exam = classroom_exam()
        self.parameters = classroom_parameters()
        self.learners = make_population(60, seed=2)
        self.data = simulate_sitting_arrays(
            self.exam, self.parameters, self.learners, seed=3
        )

    def test_shapes(self):
        assert len(self.data.responses) == 60
        assert all(len(r.selections) == 10 for r in self.data.responses)
        assert all(len(t) == 10 for t in self.data.answer_times)
        assert len(self.data.durations) == 60
        assert all(d > 0 for d in self.data.durations)

    def test_times_increase_within_sitting(self):
        for times in self.data.answer_times:
            assert times == sorted(times)

    def test_durations_equal_last_commit(self):
        assert self.data.durations == [t[-1] for t in self.data.answer_times]
        for response, duration in zip(self.data.responses, self.data.durations):
            assert response.duration_seconds == duration

    def test_scores_match_decoded_responses(self):
        expected = [
            sum(
                1
                for selection, spec in zip(response.selections, self.data.specs)
                if selection == spec.correct
            )
            for response in self.data.responses
        ]
        assert self.data.scores == expected

    def test_array_analysis_equals_object_analysis(self):
        # the fast path (codes -> from_arrays) must equal running the
        # columnar engine over the materialized objects, field for field
        assert self.data.analyze() == fast_analyze_cohort(
            self.data.responses, self.data.specs
        )

    def test_reference_engine_reachable(self):
        assert self.data.analyze(engine="reference") == self.data.analyze()

    def test_sim_engine_switch_returns_wrapper(self):
        data = simulate_sitting_data(
            self.exam, self.parameters, self.learners, seed=3,
            sim_engine="vectorized",
        )
        assert isinstance(data, VectorizedSittingData)
        assert data.codes == self.data.codes

    def test_unknown_sim_engine_rejected(self):
        with pytest.raises(AnalysisError, match="unknown sim engine"):
            simulate_sitting_data(
                self.exam, self.parameters, self.learners, sim_engine="turbo"
            )


def dead_distractor_exam_and_params():
    """Every item has a zero-attraction 'beta' and a hot 'gamma'."""
    exam = classroom_exam()
    parameters = {}
    for item in exam.items:
        wrong = [label for label in item.labels if label != item.correct_label]
        attractions = {label: 1.0 for label in wrong}
        attractions[wrong[0]] = 0.0
        attractions[wrong[1]] = 3.0
        parameters[item.item_id] = ItemParameters(
            a=1.2, b=1.5, attractions=attractions
        )
    return exam, parameters


#: (name, parameter factory, omit_rate) — the ≥3 seeded scenarios of the
#: distributional-equivalence acceptance criterion
SCENARIOS = [
    ("classroom", lambda: (classroom_exam(), classroom_parameters()), 0.0),
    ("omit-heavy", lambda: (classroom_exam(), classroom_parameters()), 0.35),
    ("dead-distractor", dead_distractor_exam_and_params, 0.1),
]


class TestDistributionalEquivalence:
    """Scalar and vectorized engines agree in distribution.

    Tolerances are ~4-5 sigma for N = 3000 Bernoulli frequencies
    (sd of a frequency difference ≈ sqrt(2 · 0.25 / N) ≈ 0.013), so a
    failure means a real distributional mismatch, not sampling noise.
    """

    N = 3000
    FREQ_TOL = 0.05
    SCORE_MEAN_TOL = 0.15
    SCORE_SD_TOL = 0.15
    TIME_MEDIAN_REL_TOL = 0.08

    @pytest.fixture(scope="class")
    def engines(self):
        results = {}
        for name, factory, omit_rate in SCENARIOS:
            exam, parameters = factory()
            learners = make_population(self.N, seed=101)
            scalar = simulate_sitting_data(
                exam, parameters, learners, seed=55, omit_rate=omit_rate
            )
            vectorized = simulate_sitting_arrays(
                exam, parameters, learners, seed=55, omit_rate=omit_rate
            )
            results[name] = (scalar, vectorized)
        return results

    @pytest.mark.parametrize("name", [s[0] for s in SCENARIOS])
    def test_per_item_p_agrees(self, engines, name):
        scalar, vectorized = engines[name]
        p_scalar = [
            sum(
                1
                for response in scalar.responses
                if response.selections[q] == spec.correct
            )
            / len(scalar.responses)
            for q, spec in enumerate(scalar.specs)
        ]
        p_vec = [
            sum(
                1
                for response in vectorized.responses
                if response.selections[q] == spec.correct
            )
            / len(vectorized.responses)
            for q, spec in enumerate(vectorized.specs)
        ]
        for a, b in zip(p_scalar, p_vec):
            assert abs(a - b) < self.FREQ_TOL

    @pytest.mark.parametrize("name", [s[0] for s in SCENARIOS])
    def test_option_choice_frequencies_agree(self, engines, name):
        scalar, vectorized = engines[name]
        for table_s, table_v in zip(
            option_frequencies(scalar, scalar.specs),
            option_frequencies(vectorized, vectorized.specs),
        ):
            assert table_s.keys() == table_v.keys()
            for label in table_s:
                assert abs(table_s[label] - table_v[label]) < self.FREQ_TOL

    @pytest.mark.parametrize("name", [s[0] for s in SCENARIOS])
    def test_score_moments_agree(self, engines, name):
        scalar, vectorized = engines[name]
        scores_s = score_list(scalar)
        scores_v = score_list(vectorized)
        assert abs(
            statistics.mean(scores_s) - statistics.mean(scores_v)
        ) < self.SCORE_MEAN_TOL
        assert abs(
            statistics.stdev(scores_s) - statistics.stdev(scores_v)
        ) < self.SCORE_SD_TOL

    @pytest.mark.parametrize("name", [s[0] for s in SCENARIOS])
    def test_item_time_medians_agree(self, engines, name):
        scalar, vectorized = engines[name]
        for m_s, m_v in zip(
            item_time_medians(scalar), item_time_medians(vectorized)
        ):
            assert m_v == pytest.approx(m_s, rel=self.TIME_MEDIAN_REL_TOL)


class TestGoldenInvariants:
    def test_dead_distractor_stays_dead(self):
        exam, parameters = dead_distractor_exam_and_params()
        # a weak cohort, so nearly every draw goes through the
        # distractor table — the zero-attraction option must never appear
        learners = make_population(2000, mean_ability=-2.0, seed=6)
        data = simulate_sitting_arrays(exam, parameters, learners, seed=7)
        frequencies = option_frequencies(data, data.specs)
        for item, table in zip(exam.items, frequencies):
            wrong = [
                label for label in item.labels if label != item.correct_label
            ]
            dead = wrong[0]
            assert table[dead] == 0.0
            # and the hot distractor (weight 3) dominates the weight-1 ones
            assert table[wrong[1]] > table[wrong[2]]

    def test_omit_rate_honored_in_expectation(self):
        exam = classroom_exam()
        parameters = classroom_parameters()
        learners = make_population(2000, seed=8)
        rate = 0.3
        data = simulate_sitting_arrays(
            exam, parameters, learners, seed=9, omit_rate=rate
        )
        omitted = data.codes.count(SKIP)
        total = len(learners) * len(data.specs)
        # 4 sigma of Binomial(20000, 0.3) is ±0.013 on the fraction
        assert abs(omitted / total - rate) < 0.02

    def test_zero_omit_rate_never_skips(self):
        exam = classroom_exam()
        data = simulate_sitting_arrays(
            exam, classroom_parameters(), make_population(200, seed=1), seed=2
        )
        assert data.codes.count(SKIP) == 0

    def test_all_zero_attractions_fall_back_to_key(self):
        exam = classroom_exam()
        parameters = {
            item.item_id: ItemParameters(
                a=2.0,
                b=5.0,
                attractions={
                    label: 0.0
                    for label in item.labels
                    if label != item.correct_label
                },
            )
            for item in exam.items
        }
        learners = make_population(300, mean_ability=-3.0, seed=3)
        data = simulate_sitting_arrays(exam, parameters, learners, seed=4)
        # nothing else is drawable, so every selection is the key
        assert data.scores == [len(data.specs)] * len(learners)

    def test_ability_orders_scores(self):
        exam = classroom_exam()
        parameters = classroom_parameters()
        weak = make_population(800, mean_ability=-1.5, seed=5, id_prefix="w")
        strong = make_population(800, mean_ability=1.5, seed=5, id_prefix="s")
        weak_data = simulate_sitting_arrays(exam, parameters, weak, seed=6)
        strong_data = simulate_sitting_arrays(exam, parameters, strong, seed=6)
        assert statistics.mean(strong_data.scores) > statistics.mean(
            weak_data.scores
        ) + 1.0


class TestSharded:
    def setup_method(self):
        self.exam = classroom_exam()
        self.parameters = classroom_parameters()

    def test_sharded_matrix_analyzes(self):
        matrix = simulate_sharded(
            self.exam, self.parameters, 1000, shard_size=256, seed=5
        )
        assert len(matrix) == 1000
        analysis = matrix.analyze()
        assert len(analysis.questions) == 10
        assert len(analysis.scores) == 1000
        assert len(set(matrix.examinee_ids)) == 1000

    def test_deterministic_and_shard_seeded(self):
        a = simulate_sharded(
            self.exam, self.parameters, 700, shard_size=128, seed=5
        )
        b = simulate_sharded(
            self.exam, self.parameters, 700, shard_size=128, seed=5
        )
        assert bytes(a._codes) == bytes(b._codes)
        assert a.scores == b.scores

    def test_process_pool_equals_serial(self):
        serial = simulate_sharded(
            self.exam, self.parameters, 600, shard_size=150, seed=5
        )
        parallel = simulate_sharded(
            self.exam, self.parameters, 600, shard_size=150, seed=5, workers=2
        )
        assert bytes(serial._codes) == bytes(parallel._codes)
        assert serial.examinee_ids == parallel.examinee_ids
        assert serial.scores == parallel.scores

    def test_into_live_cohort_analysis(self):
        live = LiveCohortAnalysis(self.exam.question_specs())
        returned = simulate_sharded(
            self.exam, self.parameters, 500, shard_size=200, seed=5, into=live
        )
        assert returned is live
        assert len(live) == 500
        assert len(live.analysis().questions) == 10
        # equal to the default-matrix driver on the same seed
        matrix = simulate_sharded(
            self.exam, self.parameters, 500, shard_size=200, seed=5
        )
        assert live.analysis() == matrix.analyze()

    def test_on_shard_sees_every_row_once(self):
        seen = []
        simulate_sharded(
            self.exam,
            self.parameters,
            450,
            shard_size=200,
            seed=5,
            on_shard=seen.append,
        )
        assert [len(shard.examinee_ids) for shard in seen] == [200, 200, 50]
        assert [shard.start for shard in seen] == [0, 200, 400]
        ids = [i for shard in seen for i in shard.examinee_ids]
        assert len(set(ids)) == 450
        for shard in seen:
            assert len(shard.codes) == len(shard.examinee_ids) * 10
            assert len(shard.scores) == len(shard.examinee_ids)
            assert all(d > 0 for d in shard.durations)

    def test_omit_rate_reaches_shards(self):
        matrix = simulate_sharded(
            self.exam, self.parameters, 1000, shard_size=300, seed=5,
            omit_rate=0.4,
        )
        omitted = bytes(matrix._codes).count(SKIP)
        assert abs(omitted / (1000 * 10) - 0.4) < 0.03

    def test_bad_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            simulate_sharded(self.exam, self.parameters, 0)
        with pytest.raises(AnalysisError):
            simulate_sharded(self.exam, self.parameters, 10, shard_size=0)
        with pytest.raises(AnalysisError):
            simulate_sharded(self.exam, self.parameters, 10, omit_rate=2.0)

    def test_mismatched_sink_rejected(self):
        from repro.core.columnar import ResponseMatrix

        narrow = ResponseMatrix(self.exam.question_specs()[:3])
        with pytest.raises(AnalysisError, match="sink expects"):
            simulate_sharded(
                self.exam, self.parameters, 10, into=narrow
            )
