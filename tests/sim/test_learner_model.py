"""Tests for the simulated learner response model (repro.sim)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AnalysisError
from repro.sim.learner_model import (
    ItemParameters,
    SimulatedLearner,
    probability_correct,
    sample_selection,
)
from repro.sim.population import ability_grid, make_population
from repro.sim.response_time import cumulative_answer_times, sample_item_time


class TestProbabilityCorrect:
    def test_ability_at_difficulty_gives_half_for_2pl(self):
        params = ItemParameters(a=1.5, b=0.7)
        assert probability_correct(0.7, params) == pytest.approx(0.5)

    def test_monotone_in_ability(self):
        params = ItemParameters(a=1.2, b=0.0)
        probabilities = [
            probability_correct(theta, params) for theta in (-2, -1, 0, 1, 2)
        ]
        assert probabilities == sorted(probabilities)

    def test_guessing_floor(self):
        params = ItemParameters(a=2.0, b=0.0, c=0.25)
        assert probability_correct(-10.0, params) == pytest.approx(0.25, abs=1e-6)

    def test_ceiling_is_one(self):
        params = ItemParameters(a=2.0, b=0.0, c=0.25)
        assert probability_correct(10.0, params) == pytest.approx(1.0, abs=1e-6)

    def test_extreme_values_do_not_overflow(self):
        params = ItemParameters(a=5.0, b=0.0)
        assert probability_correct(-500.0, params) == pytest.approx(0.0)
        assert probability_correct(500.0, params) == pytest.approx(1.0)

    @given(
        ability=st.floats(min_value=-5, max_value=5),
        a=st.floats(min_value=0.2, max_value=3),
        b=st.floats(min_value=-3, max_value=3),
        c=st.floats(min_value=0, max_value=0.4),
    )
    def test_always_a_probability(self, ability, a, b, c):
        p = probability_correct(ability, ItemParameters(a=a, b=b, c=c))
        assert 0.0 <= p <= 1.0


class TestItemParameters:
    def test_nonpositive_a_rejected(self):
        with pytest.raises(AnalysisError):
            ItemParameters(a=0)

    def test_bad_c_rejected(self):
        with pytest.raises(AnalysisError):
            ItemParameters(c=1.0)
        with pytest.raises(AnalysisError):
            ItemParameters(c=-0.1)

    def test_negative_attraction_rejected(self):
        with pytest.raises(AnalysisError):
            ItemParameters(attractions={"B": -1})


class TestSampleSelection:
    def options(self):
        return ("A", "B", "C", "D")

    def test_able_learner_usually_correct(self):
        rng = random.Random(1)
        learner = SimulatedLearner("s", ability=3.0)
        params = ItemParameters(a=2.0, b=-1.0)
        picks = [
            sample_selection(rng, learner, params, self.options(), "A")
            for _ in range(200)
        ]
        assert picks.count("A") > 190

    def test_weak_learner_usually_wrong(self):
        rng = random.Random(2)
        learner = SimulatedLearner("s", ability=-3.0)
        params = ItemParameters(a=2.0, b=1.0)
        picks = [
            sample_selection(rng, learner, params, self.options(), "A")
            for _ in range(200)
        ]
        assert picks.count("A") < 30

    def test_zero_attraction_distractor_never_chosen(self):
        rng = random.Random(3)
        learner = SimulatedLearner("s", ability=-3.0)
        params = ItemParameters(
            a=2.0, b=1.0, attractions={"B": 0.0, "C": 1.0, "D": 1.0}
        )
        picks = [
            sample_selection(rng, learner, params, self.options(), "A")
            for _ in range(300)
        ]
        assert "B" not in picks

    def test_attraction_weights_shape_distribution(self):
        rng = random.Random(4)
        learner = SimulatedLearner("s", ability=-5.0)
        params = ItemParameters(
            a=3.0, b=2.0, attractions={"B": 10.0, "C": 1.0, "D": 1.0}
        )
        picks = [
            sample_selection(rng, learner, params, self.options(), "A")
            for _ in range(600)
        ]
        assert picks.count("B") > picks.count("C") * 2

    def test_all_zero_attractions_fall_back_to_key(self):
        rng = random.Random(5)
        learner = SimulatedLearner("s", ability=-5.0)
        params = ItemParameters(
            a=3.0, b=2.0, attractions={"B": 0.0, "C": 0.0, "D": 0.0}
        )
        picks = {
            sample_selection(rng, learner, params, self.options(), "A")
            for _ in range(50)
        }
        assert picks == {"A"}

    def test_omit_rate(self):
        rng = random.Random(6)
        learner = SimulatedLearner("s", ability=0.0)
        params = ItemParameters()
        picks = [
            sample_selection(
                rng, learner, params, self.options(), "A", omit_rate=0.5
            )
            for _ in range(400)
        ]
        omitted = sum(1 for pick in picks if pick is None)
        assert 120 < omitted < 280

    def test_cumulative_boundary_skips_dead_distractor(self):
        """Pin the cumulative-weight boundary: a draw of exactly 0.0 must
        not select a zero-weight distractor (the old ``draw <=
        cumulative`` scan picked it at the 0.0 bound)."""

        class ScriptedRandom:
            def __init__(self, values):
                self._values = list(values)

            def random(self):
                return self._values.pop(0)

        learner = SimulatedLearner("s", ability=-10.0)
        params = ItemParameters(
            a=3.0, b=5.0, attractions={"B": 0.0, "C": 1.0, "D": 1.0}
        )
        # first draw: 0.99 -> incorrect; second draw: 0.0 -> the
        # distractor boundary; B (weight 0, bound 0.0) must be skipped
        pick = ScriptedRandom([0.99, 0.0])
        assert sample_selection(pick, learner, params, self.options(), "A") == "C"

    def test_cumulative_boundary_between_live_distractors(self):
        """A draw landing exactly on an interior bound goes to the *next*
        distractor (strict comparison), so each keeps its exact share."""

        class ScriptedRandom:
            def __init__(self, values):
                self._values = list(values)

            def random(self):
                return self._values.pop(0)

        learner = SimulatedLearner("s", ability=-10.0)
        params = ItemParameters(a=3.0, b=5.0)  # uniform attractions
        # bounds over B, C, D are [1, 2, 3]; draw = 1/3 * 3 = 1.0 == the
        # B/C boundary, which belongs to C
        pick = ScriptedRandom([0.99, 1.0 / 3.0])
        assert sample_selection(pick, learner, params, self.options(), "A") == "C"

    def test_final_distractor_keeps_its_share(self):
        """A draw just under the accumulated total lands on the final
        distractor — its share is never truncated by float accumulation
        (the draw is scaled by the same accumulated total it is compared
        against)."""

        class ScriptedRandom:
            def __init__(self, values):
                self._values = list(values)

            def random(self):
                return self._values.pop(0)

        learner = SimulatedLearner("s", ability=-10.0)
        # ten tiny equal weights accumulate with float error; the last
        # option must still catch the top of the draw range
        params = ItemParameters(
            a=3.0, b=5.0, attractions={"B": 0.1, "C": 0.1, "D": 0.1}
        )
        pick = ScriptedRandom([0.99, 1.0 - 2**-53])
        assert sample_selection(pick, learner, params, self.options(), "A") == "D"

    def test_unknown_correct_rejected(self):
        with pytest.raises(AnalysisError):
            sample_selection(
                random.Random(0),
                SimulatedLearner("s", 0.0),
                ItemParameters(),
                ("A", "B"),
                "Z",
            )

    def test_bad_omit_rate_rejected(self):
        with pytest.raises(AnalysisError):
            sample_selection(
                random.Random(0),
                SimulatedLearner("s", 0.0),
                ItemParameters(),
                ("A", "B"),
                "A",
                omit_rate=1.0,
            )

    def test_single_option_item(self):
        pick = sample_selection(
            random.Random(0),
            SimulatedLearner("s", -10.0),
            ItemParameters(a=3.0, b=5.0),
            ("A",),
            "A",
        )
        assert pick == "A"


class TestPopulation:
    def test_size_and_ids(self):
        population = make_population(25, seed=1)
        assert len(population) == 25
        assert len({learner.learner_id for learner in population}) == 25

    def test_seeded_reproducibility(self):
        a = make_population(10, seed=42)
        b = make_population(10, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = make_population(10, seed=1)
        b = make_population(10, seed=2)
        assert a != b

    def test_mean_ability_respected(self):
        population = make_population(2000, mean_ability=1.5, seed=3)
        mean = sum(learner.ability for learner in population) / len(population)
        assert mean == pytest.approx(1.5, abs=0.1)

    def test_bad_size_rejected(self):
        with pytest.raises(AnalysisError):
            make_population(0)

    def test_negative_sd_rejected(self):
        with pytest.raises(AnalysisError):
            make_population(5, sd_ability=-1)

    def test_ability_grid(self):
        grid = ability_grid(-3, 3, 7)
        assert grid[0] == -3.0
        assert grid[-1] == 3.0
        assert len(grid) == 7

    def test_bad_grid_rejected(self):
        with pytest.raises(AnalysisError):
            ability_grid(steps=1)
        with pytest.raises(AnalysisError):
            ability_grid(low=2, high=1)


class TestResponseTime:
    def test_positive_times(self):
        rng = random.Random(0)
        learner = SimulatedLearner("s", 0.0)
        times = [
            sample_item_time(rng, learner, ItemParameters()) for _ in range(100)
        ]
        assert all(t > 0 for t in times)

    def test_slow_pace_takes_longer(self):
        fast = SimulatedLearner("f", 0.0, pace=0.5)
        slow = SimulatedLearner("s", 0.0, pace=2.0)
        fast_mean = sum(
            sample_item_time(random.Random(i), fast, ItemParameters())
            for i in range(100)
        )
        slow_mean = sum(
            sample_item_time(random.Random(i), slow, ItemParameters())
            for i in range(100)
        )
        assert slow_mean > fast_mean * 2

    def test_harder_items_take_longer_on_average(self):
        learner = SimulatedLearner("s", 0.0)
        easy = sum(
            sample_item_time(
                random.Random(i), learner, ItemParameters(b=-2.0)
            )
            for i in range(200)
        )
        hard = sum(
            sample_item_time(random.Random(i), learner, ItemParameters(b=2.0))
            for i in range(200)
        )
        assert hard > easy

    def test_bad_base_rejected(self):
        with pytest.raises(AnalysisError):
            sample_item_time(
                random.Random(0),
                SimulatedLearner("s", 0.0),
                ItemParameters(),
                base_seconds=0,
            )

    def test_cumulative(self):
        assert cumulative_answer_times([10.0, 5.0, 2.5]) == [10.0, 15.0, 17.5]

    def test_cumulative_rejects_negative(self):
        with pytest.raises(AnalysisError):
            cumulative_answer_times([5.0, -1.0])
