"""Regression tests: pass-through wrappers must forward their kwargs.

PR 2 fixed ``pre_post_cohorts`` silently dropping ``omit_rate`` and
``base_seconds``; this file pins down the whole class of bug across the
simulation helpers, the ``analyze`` wrappers, and the LMS conveniences —
partly behaviorally (a forwarded knob must change the output), partly
with capture spies (the exact object must reach ``analyze_cohort``).
"""

import pytest

import repro.core.question_analysis as qa
import repro.lms.lms as lms_module
from repro import (
    GroupSplit,
    classroom_exam,
    classroom_parameters,
    make_population,
    pre_post_cohorts,
    simulate_sitting_data,
)
from repro.core.signals import SignalPolicy
from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.lms.learners import Learner
from repro.lms.lms import Lms

POLICY = SignalPolicy(green_min=0.5, yellow_min=0.25)
THRESHOLD = 0.123


def spy_on(monkeypatch, module, name="analyze_cohort"):
    """Wrap ``module.name`` so every call's kwargs are captured."""
    calls = []
    real = getattr(module, name)

    def wrapper(*args, **kwargs):
        calls.append(kwargs)
        return real(*args, **kwargs)

    monkeypatch.setattr(module, name, wrapper)
    return calls


def small_setup(count=12):
    exam = classroom_exam(5)
    return exam, classroom_parameters(5), make_population(count, seed=11)


class TestSimulateSittingData:
    @pytest.mark.parametrize("sim_engine", ["scalar", "auto"])
    def test_sigma_changes_answer_times(self, sim_engine):
        exam, params, learners = small_setup()
        tight = simulate_sitting_data(
            exam, params, learners, seed=5, sigma=0.0, sim_engine=sim_engine
        )
        loose = simulate_sitting_data(
            exam, params, learners, seed=5, sigma=0.9, sim_engine=sim_engine
        )
        assert tight.answer_times != loose.answer_times

    def test_base_seconds_scales_times(self):
        exam, params, learners = small_setup()
        slow = simulate_sitting_data(
            exam, params, learners, seed=5, base_seconds=90.0, sigma=0.0
        )
        fast = simulate_sitting_data(
            exam, params, learners, seed=5, base_seconds=30.0, sigma=0.0
        )

        def total(data):
            return sum(sum(times) for times in data.answer_times)

        assert total(slow) > total(fast)

    def test_pre_post_cohorts_forwards_sigma(self):
        exam, params, _ = small_setup()
        pre_a, post_a = pre_post_cohorts(
            exam, params, size=12, seed=3, sigma=0.0
        )
        pre_b, post_b = pre_post_cohorts(
            exam, params, size=12, seed=3, sigma=0.9
        )
        assert pre_a.answer_times != pre_b.answer_times
        assert post_a.answer_times != post_b.answer_times


class TestAnalyzeForwarding:
    @pytest.mark.parametrize("sim_engine", ["scalar", "auto"])
    def test_sitting_data_analyze_forwards_everything(
        self, monkeypatch, sim_engine
    ):
        exam, params, learners = small_setup(16)
        data = simulate_sitting_data(
            exam, params, learners, seed=7, sim_engine=sim_engine
        )
        calls = spy_on(monkeypatch, qa)
        split = GroupSplit(fraction=0.5)
        data.analyze(
            split=split,
            engine="reference",
            policy=POLICY,
            spread_threshold=THRESHOLD,
        )
        (kwargs,) = calls
        assert kwargs["split"] is split
        assert kwargs["engine"] == "reference"
        assert kwargs["policy"] is POLICY
        assert kwargs["spread_threshold"] == THRESHOLD

    def test_custom_policy_changes_signals(self):
        exam, params, learners = small_setup(16)
        data = simulate_sitting_data(exam, params, learners, seed=7)
        default = data.analyze()
        relaxed = data.analyze(
            policy=SignalPolicy(green_min=0.011, yellow_min=0.01)
        )
        assert default.signals != relaxed.signals


class TestLmsForwarding:
    def _lms_with_results(self):
        exam = (
            ExamBuilder("ex1", "Exam")
            .add_item(MultipleChoiceItem.build(
                "q1", "Pick A.", ["a", "b"], correct_index=0
            ))
            .add_item(MultipleChoiceItem.build(
                "q2", "Pick B.", ["a", "b"], correct_index=1
            ))
            .build()
        )
        lms = Lms(clock=ManualClock())
        lms.offer_exam(exam)
        for index in range(8):
            learner_id = f"s{index}"
            lms.register_learner(
                Learner(learner_id=learner_id, name=learner_id)
            )
            lms.enroll(learner_id, "ex1")
            lms.start_exam(learner_id, "ex1")
            lms.answer(learner_id, "ex1", "q1", "A" if index < 6 else "B")
            lms.answer(learner_id, "ex1", "q2", "B" if index < 3 else "A")
            lms.submit(learner_id, "ex1")
        return lms

    def test_analyze_exam_forwards_policy_split_threshold(self, monkeypatch):
        lms = self._lms_with_results()
        calls = spy_on(monkeypatch, lms_module)
        split = GroupSplit(fraction=0.5)
        lms.analyze_exam(
            "ex1",
            engine="reference",
            split=split,
            policy=POLICY,
            spread_threshold=THRESHOLD,
        )
        (kwargs,) = calls
        assert kwargs["split"] is split
        assert kwargs["engine"] == "reference"
        assert kwargs["policy"] is POLICY
        assert kwargs["spread_threshold"] == THRESHOLD

    def test_analyze_exam_engine_parity(self):
        lms = self._lms_with_results()
        columnar = lms.analyze_exam("ex1", engine="columnar")
        reference = lms.analyze_exam("ex1", engine="reference")
        assert [q.difficulty for q in columnar.questions] == [
            q.difficulty for q in reference.questions
        ]
        assert [q.discrimination for q in columnar.questions] == [
            q.discrimination for q in reference.questions
        ]

    def test_analyze_exam_split_changes_groups(self):
        lms = self._lms_with_results()
        narrow = lms.analyze_exam("ex1")  # 25% of 8 = 2 per group
        wide = lms.analyze_exam("ex1", split=GroupSplit(fraction=0.5))
        assert len(narrow.high_group) == 2
        assert len(wide.high_group) == 4

    def test_report_for_forwards_split_and_engine(self, monkeypatch):
        lms = self._lms_with_results()
        calls = spy_on(monkeypatch, lms_module)
        split = GroupSplit(fraction=0.5)
        lms.report_for("ex1", engine="reference", split=split)
        (kwargs,) = calls
        assert kwargs["split"] is split
        assert kwargs["engine"] == "reference"
