"""End-to-end integration: the paper's whole architecture (Figure 3).

Author problems → store in the problem & exam database → assemble an exam
→ publish a SCORM package to the external repository → another instructor
reuses it → offer on the LMS → a simulated class takes it (with the exam
monitor capturing) → analysis produces the §4 report → analysis results
are written back into the metadata.
"""

import random

import pytest

from repro.core.cognition import CognitionLevel
from repro.core.metadata_xml import from_xml, to_xml
from repro.core.signals import Signal
from repro.bank.itembank import ItemBank
from repro.bank.search import Query, search
from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.lms.tracking import EventKind
from repro.scorm.repository import PackageRepository
from repro.sim.learner_model import ItemParameters, SimulatedLearner, sample_selection


CONCEPTS = ["sorting", "hashing", "graphs"]


def author_bank():
    bank = ItemBank()
    for index in range(12):
        concept = CONCEPTS[index % 3]
        level = (
            CognitionLevel.KNOWLEDGE
            if index < 6
            else CognitionLevel.COMPREHENSION
        )
        bank.add(
            MultipleChoiceItem.build(
                f"item-{index:02d}",
                f"Question {index} about {concept}?",
                ["right answer", "wrong 1", "wrong 2", "wrong 3"],
                correct_index=0,
                subject=concept,
                cognition_level=level,
            )
        )
    return bank


class TestFullArchitecture:
    def test_author_to_analysis_round_trip(self, tmp_path):
        # 1. authoring: search the database, assemble an exam
        bank = author_bank()
        sorting_items = search(bank, Query().with_subject("sorting"))
        hashing_items = search(bank, Query().with_subject("hashing"))
        exam = (
            ExamBuilder("mid-2004", "Midterm 2004")
            .add_items(sorting_items[:2])
            .add_items(hashing_items[:2])
            .time_limit(1200)
            .build()
        )

        # 2. publish to the SCORM repository; a colleague re-imports it
        repository = PackageRepository(tmp_path / "repo")
        repository.publish(exam)
        reused = repository.fetch_exam("mid-2004")
        assert [i.item_id for i in reused.items] == [
            i.item_id for i in exam.items
        ]

        # 3. offer on the LMS and run a class of 24 through it
        clock = ManualClock()
        lms = Lms(clock=clock)
        lms.offer_exam(reused)
        rng = random.Random(42)
        for index in range(24):
            learner_id = f"stu-{index:02d}"
            lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
            lms.enroll(learner_id, "mid-2004")
            lms.start_exam(learner_id, "mid-2004")
            ability = 2.0 if index < 12 else -2.0
            learner = SimulatedLearner(learner_id, ability)
            for item in reused.items:
                clock.advance(rng.uniform(20, 60))
                selection = sample_selection(
                    rng,
                    learner,
                    ItemParameters(a=1.8, b=0.0),
                    item.labels,
                    item.correct_label,
                )
                if selection is not None:
                    lms.answer(learner_id, "mid-2004", item.item_id, selection)
            lms.submit(learner_id, "mid-2004")

        # 4. the monitor captured frames for every sitting
        assert len(lms.monitor.monitored_sittings()) == 24

        # 5. tracking recorded the full lifecycle
        counts = lms.tracking.counts_by_kind()
        assert counts[EventKind.ENROLLED] == 24
        assert counts[EventKind.LAUNCHED] == 24
        assert counts[EventKind.SUBMITTED] == 24

        # 6. analysis: strong/weak split should discriminate well
        report = lms.report_for("mid-2004", concepts=CONCEPTS)
        text = report.render()
        assert "Signal representation" in text
        assert "Concept lost in the exam: graphs" in text
        greens = sum(
            1 for q in report.cohort.questions if q.signal is Signal.GREEN
        )
        assert greens >= 3  # items engineered to discriminate

        # 7. write analysis records back into metadata and round-trip XML
        records = report.analysis_records()
        metadata = reused.metadata
        metadata.assessment.analyses = records
        restored = from_xml(to_xml(metadata))
        assert len(restored.assessment.analyses) == len(reused.items)
        assert restored.assessment.analyses[0].signal in (
            "green",
            "yellow",
            "red",
        )

    def test_suspend_resume_through_scorm_rte(self, tmp_path):
        """A learner pauses mid-exam; SCORM suspend data reflects it and
        the sitting resumes with state intact."""
        bank = author_bank()
        exam = (
            ExamBuilder("quiz", "Quiz")
            .add_from_bank(bank, "item-00", "item-01")
            .build()
        )
        clock = ManualClock()
        lms = Lms(clock=clock)
        lms.offer_exam(exam)
        lms.register_learner(Learner(learner_id="s1", name="S1"))
        lms.enroll("s1", "quiz")
        lms.start_exam("s1", "quiz")
        lms.answer("s1", "quiz", "item-00", "A")
        lms.suspend("s1", "quiz")
        snapshot = lms.rte.record("s1", "quiz").last_snapshot
        assert snapshot["suspend_data"] == "answered=1"
        assert snapshot["core"]["exit"] == "suspend"
        lms.resume("s1", "quiz")
        lms.answer("s1", "quiz", "item-01", "A")
        graded = lms.submit("s1", "quiz")
        assert graded.percent == 100.0
