"""Integration: a semester's lifecycle across every subsystem.

Term start: author a bank, publish the exam to the repository, stand up
the LMS.  Mid-term: the class sits the exam; the LMS state is saved to
disk (server restart) and restored; a second exam is taken on the
restored instance.  Term end: statistics are written back into item
metadata, a CAT pool is calibrated from them, an individualized make-up
exam is assembled for the weakest learner, and transcripts go out.
"""

import random

import pytest

from repro.core.cognition import CognitionLevel
from repro.adaptive.calibration import calibrate_pool_from_bank
from repro.adaptive.individualized import assemble_individualized_exam
from repro.bank.itembank import ItemBank
from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.exams.metadata_updates import write_back_statistics
from repro.items.choice import MultipleChoiceItem
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.lms.persistence import load_lms, save_lms
from repro.lms.transcripts import build_transcript
from repro.scorm.repository import PackageRepository
from repro.sim.learner_model import ItemParameters, SimulatedLearner, sample_selection


def build_bank(size=16):
    bank = ItemBank()
    for index in range(size):
        bank.add(
            MultipleChoiceItem.build(
                f"q{index:02d}",
                f"Question {index} on algorithms?",
                ["right", "w1", "w2", "w3"],
                correct_index=0,
                subject="algorithms" if index % 2 else "data-structures",
                cognition_level=CognitionLevel.KNOWLEDGE,
            )
        )
    return bank


def sit_class(lms, exam, abilities, seed):
    rng = random.Random(seed)
    for learner_id, ability in abilities.items():
        lms.start_exam(learner_id, exam.exam_id)
        learner = SimulatedLearner(learner_id, ability)
        for item in exam.items:
            selection = sample_selection(
                rng,
                learner,
                ItemParameters(a=1.4, b=0.0),
                item.labels,
                item.correct_label,
            )
            if selection is not None:
                lms.answer(learner_id, exam.exam_id, item.item_id, selection)
        lms.submit(learner_id, exam.exam_id)


class TestSemesterLifecycle:
    def test_full_semester(self, tmp_path):
        bank = build_bank()
        repository = PackageRepository(tmp_path / "repo")

        midterm = (
            ExamBuilder("midterm", "Algorithms Midterm")
            .add_from_bank(bank, *[f"q{i:02d}" for i in range(8)])
            .time_limit(1800)
            .build()
        )
        repository.publish(midterm)

        lms = Lms(clock=ManualClock())
        lms.offer_exam(repository.fetch_exam("midterm"))
        abilities = {
            f"stu-{index:02d}": 1.5 if index < 6 else -1.5
            for index in range(12)
        }
        for learner_id in abilities:
            lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
            lms.enroll(learner_id, "midterm")
        sit_class(lms, lms.exam("midterm"), abilities, seed=1)
        assert len(lms.results_for("midterm")) == 12

        # server restart: save, reload, verify results survive
        state_path = tmp_path / "lms-state.json"
        save_lms(lms, state_path)
        lms = load_lms(state_path, clock=ManualClock())
        assert len(lms.results_for("midterm")) == 12

        # second exam taken on the restored instance
        final = (
            ExamBuilder("final", "Algorithms Final")
            .add_from_bank(bank, *[f"q{i:02d}" for i in range(8, 16)])
            .build()
        )
        lms.offer_exam(final)
        for learner_id in abilities:
            lms.enroll(learner_id, "final")
        sit_class(lms, final, abilities, seed=2)

        # write measured statistics back into the midterm's items
        cohort = lms.analyze_exam("midterm")
        updated = write_back_statistics(
            lms.exam("midterm"),
            cohort,
            durations_seconds=[
                sitting.duration_seconds
                for sitting in lms.results_for("midterm")
            ],
        )
        assert updated == 8
        # push the rated items back into the bank
        for item in lms.exam("midterm").items:
            bank.add_or_update(item)

        # calibrate a CAT pool and build an individualized make-up exam
        pool = calibrate_pool_from_bank(bank)
        weakest = min(
            lms.results_for("final"), key=lambda sitting: sitting.percent
        )
        makeup = assemble_individualized_exam(
            "makeup", "Make-up", bank, pool, ability=-1.0, length=5
        )
        assert len(makeup.items) == 5

        # transcripts record both exams for every learner
        transcript = build_transcript(lms, weakest.learner_id)
        assert [row.exam_id for row in transcript.rows] == ["midterm", "final"]
        rendered = transcript.render()
        assert "Algorithms Midterm" in rendered
        assert "Algorithms Final" in rendered

        # the strong half passed both exams
        strong_transcript = build_transcript(lms, "stu-00")
        assert strong_transcript.passed_count == 2
