"""Fuzz/robustness tests: every parser rejects malformed input with the
library's typed errors — never an unhandled exception.

Covers the metadata XML binding, the QTI item binding, imsmanifest.xml,
content packages, and the bank JSON loaders.
"""

import io
import json
import zipfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AssessmentError
from repro.core.metadata_xml import MINE_NAMESPACE, from_xml
from repro.bank.storage import item_from_record, load_bank
from repro.items.qti import item_from_qti_xml
from repro.scorm.manifest import manifest_from_xml
from repro.scorm.package import ContentPackage

TEXT = st.text(max_size=300)


class TestMetadataXmlFuzz:
    @settings(max_examples=80, deadline=None)
    @given(blob=TEXT)
    def test_arbitrary_text_never_crashes(self, blob):
        try:
            from_xml(blob)
        except AssessmentError:
            pass  # typed rejection is the contract

    @settings(max_examples=40, deadline=None)
    @given(payload=TEXT)
    def test_wellformed_but_wrong_content(self, payload):
        safe = payload.replace("&", "").replace("<", "").replace("]", "")
        xml = (
            f'<mineMetadata xmlns="{MINE_NAMESPACE}">'
            f"<assessment><individualTest>"
            f"<itemDifficultyIndex>{safe}</itemDifficultyIndex>"
            f"</individualTest></assessment></mineMetadata>"
        )
        try:
            metadata = from_xml(xml)
        except AssessmentError:
            return
        # if it parsed, the value must be a float or None
        value = metadata.assessment.individual_test.item_difficulty_index
        assert value is None or isinstance(value, float)


class TestQtiFuzz:
    @settings(max_examples=80, deadline=None)
    @given(blob=TEXT)
    def test_arbitrary_text_never_crashes(self, blob):
        try:
            item_from_qti_xml(blob)
        except AssessmentError:
            pass

    @settings(max_examples=40, deadline=None)
    @given(style=st.sampled_from(
        ["multiple_choice", "true_false", "match", "completion",
         "essay", "questionnaire", "bogus"]
    ))
    def test_skeleton_items(self, style):
        xml = f"<item ident='x' mine_style='{style}'/>"
        try:
            item_from_qti_xml(xml)
        except AssessmentError:
            pass


class TestManifestFuzz:
    @settings(max_examples=80, deadline=None)
    @given(blob=TEXT)
    def test_arbitrary_text_never_crashes(self, blob):
        try:
            manifest_from_xml(blob)
        except AssessmentError:
            pass


class TestPackageFuzz:
    @settings(max_examples=40, deadline=None)
    @given(blob=st.binary(max_size=2000))
    def test_arbitrary_bytes_never_crash(self, blob):
        try:
            ContentPackage(blob)
        except AssessmentError:
            pass

    @settings(max_examples=20, deadline=None)
    @given(manifest_text=TEXT)
    def test_zip_with_garbage_manifest(self, manifest_text):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("imsmanifest.xml", manifest_text)
        try:
            ContentPackage(buffer.getvalue())
        except AssessmentError:
            pass


class TestBankRecordFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        record=st.dictionaries(
            keys=st.sampled_from(
                ["style", "item_id", "subject", "content", "cognition_level"]
            ),
            values=st.one_of(
                st.none(), st.text(max_size=20), st.integers(),
                st.dictionaries(st.text(max_size=5), st.text(max_size=5),
                                max_size=3),
            ),
        )
    )
    def test_arbitrary_records_never_crash(self, record):
        try:
            item_from_record(record)
        except (AssessmentError, ValueError, TypeError):
            # ValueError/TypeError allowed only for cognition parse / type
            # coercion paths, which are themselves explicit validations
            pass

    def test_bank_file_with_garbage_items(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text(json.dumps({
            "format": "mine-bank-v1",
            "items": [{"style": "riddle"}],
        }))
        with pytest.raises(AssessmentError):
            load_bank(path)
