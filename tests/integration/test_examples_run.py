"""Smoke tests: every example script must run cleanly.

Examples are documentation that executes; this suite runs each one
in-process (stdout captured) so a library change that breaks an example
fails the test suite, not a user's first experience.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda path: path.stem
)
def test_example_runs(script, capsys, tmp_path, monkeypatch):
    # report_artifacts.py writes into ./report-artifacts; keep it in tmp
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_all_examples_discovered():
    """The repo ships at least the documented example set."""
    names = {path.stem for path in EXAMPLE_SCRIPTS}
    assert {
        "quickstart",
        "authoring_workflow",
        "classroom_analysis",
        "scorm_roundtrip",
        "adaptive_testing",
        "item_lifecycle",
        "report_artifacts",
    } <= names
