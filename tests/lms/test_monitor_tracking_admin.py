"""Tests for the exam monitor, tracking service, and administrator role."""

import pytest

from repro.core.errors import MonitorError, NotFoundError
from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.items.truefalse import TrueFalseItem
from repro.lms.admin import Administrator
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.lms.monitor import ExamMonitor
from repro.lms.tracking import EventKind, TrackingService


class TestMonitorCapture:
    def test_capture_produces_frame(self):
        monitor = ExamMonitor()
        frame = monitor.capture("alice", "ex1", 0.0)
        assert frame.learner_id == "alice"
        assert frame.sequence == 0
        assert frame.payload.startswith(b"MINEPIC0")
        assert len(frame.payload) > 1000

    def test_frames_deterministic(self):
        a = ExamMonitor().capture("alice", "ex1", 0.0)
        b = ExamMonitor().capture("alice", "ex1", 0.0)
        assert a.checksum() == b.checksum()

    def test_different_sittings_different_frames(self):
        monitor = ExamMonitor()
        a = monitor.capture("alice", "ex1", 0.0)
        b = monitor.capture("bob", "ex1", 0.0)
        assert a.checksum() != b.checksum()

    def test_poll_respects_interval(self):
        monitor = ExamMonitor(interval_seconds=30)
        assert monitor.poll("a", "e", 0.0) is not None
        assert monitor.poll("a", "e", 10.0) is None
        assert monitor.poll("a", "e", 29.9) is None
        assert monitor.poll("a", "e", 30.0) is not None

    def test_sequence_increments(self):
        monitor = ExamMonitor()
        first = monitor.capture("a", "e", 0.0)
        second = monitor.capture("a", "e", 31.0)
        assert (first.sequence, second.sequence) == (0, 1)

    def test_retention_bound(self):
        monitor = ExamMonitor(interval_seconds=1, max_frames=5)
        for tick in range(8):
            monitor.capture("a", "e", float(tick))
        frames = monitor.frames_for("a", "e")
        assert len(frames) == 5
        assert monitor.dropped_count("a", "e") == 3
        # oldest retained frame is sequence 3
        assert frames[0].sequence == 3
        assert frames[-1].sequence == 7

    def test_disabled_monitor(self):
        monitor = ExamMonitor(enabled=False)
        assert monitor.poll("a", "e", 0.0) is None
        with pytest.raises(MonitorError):
            monitor.capture("a", "e", 0.0)

    def test_clear(self):
        monitor = ExamMonitor()
        monitor.capture("a", "e", 0.0)
        assert monitor.clear("a", "e") == 1
        assert monitor.frames_for("a", "e") == []

    def test_negative_elapsed_rejected(self):
        with pytest.raises(MonitorError):
            ExamMonitor().poll("a", "e", -1.0)

    @pytest.mark.parametrize("interval", [0, -5])
    def test_bad_interval_rejected(self, interval):
        with pytest.raises(MonitorError):
            ExamMonitor(interval_seconds=interval)

    def test_bad_retention_rejected(self):
        with pytest.raises(MonitorError):
            ExamMonitor(max_frames=0)


class TestTrackingService:
    def test_record_and_filter(self):
        tracking = TrackingService()
        tracking.record(EventKind.LAUNCHED, "a", "e1", 0.0)
        tracking.record(EventKind.ANSWERED, "a", "e1", 1.0, detail="q1")
        tracking.record(EventKind.ANSWERED, "b", "e1", 2.0, detail="q1")
        tracking.record(EventKind.ANSWERED, "a", "e2", 3.0, detail="q9")
        assert len(tracking) == 4
        assert len(tracking.events(kind=EventKind.ANSWERED)) == 3
        assert len(tracking.events(learner_id="a")) == 3
        assert len(tracking.events(course_id="e1")) == 3
        assert (
            len(tracking.events(kind=EventKind.ANSWERED, learner_id="a",
                                course_id="e1"))
            == 1
        )

    def test_counts_by_kind(self):
        tracking = TrackingService()
        tracking.record(EventKind.LAUNCHED, "a", "e", 0.0)
        tracking.record(EventKind.ANSWERED, "a", "e", 1.0)
        tracking.record(EventKind.ANSWERED, "a", "e", 2.0)
        counts = tracking.counts_by_kind()
        assert counts[EventKind.ANSWERED] == 2
        assert counts[EventKind.LAUNCHED] == 1


def lms_with_sitting():
    clock = ManualClock()
    lms = Lms(clock=clock)
    exam = (
        ExamBuilder("e1", "E")
        .add_item(TrueFalseItem(item_id="q1", question="True?"))
        .build()
    )
    lms.offer_exam(exam)
    lms.register_learner(Learner(learner_id="alice", name="Alice"))
    lms.enroll("alice", "e1")
    lms.start_exam("alice", "e1")
    return lms


class TestAdministrator:
    def test_monitor_toggle(self):
        lms = lms_with_sitting()
        admin = Administrator(lms)
        admin.disable_monitor()
        assert lms.monitor.enabled is False
        admin.enable_monitor()
        assert lms.monitor.enabled is True

    def test_capture_interval(self):
        admin = Administrator(lms_with_sitting())
        admin.set_capture_interval(10.0)
        assert admin.lms.monitor.interval_seconds == 10.0
        with pytest.raises(MonitorError):
            admin.set_capture_interval(0)

    def test_purge_footage(self):
        lms = lms_with_sitting()
        admin = Administrator(lms)
        assert admin.monitored_sittings() == [("alice", "e1")]
        assert admin.purge_footage("alice", "e1") == 1
        assert admin.monitored_sittings() == []

    def test_withdraw_exam(self):
        lms = lms_with_sitting()
        admin = Administrator(lms)
        admin.withdraw_exam("e1")
        assert lms.offered_exams() == []
        with pytest.raises(NotFoundError):
            admin.withdraw_exam("e1")

    def test_remove_learner_clears_enrollment(self):
        lms = lms_with_sitting()
        admin = Administrator(lms)
        admin.remove_learner("alice")
        assert "alice" not in lms.learners
