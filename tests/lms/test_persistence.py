"""Tests for LMS persistence (repro.lms.persistence)."""

import json

import pytest

from repro.core.errors import BankError
from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.items.essay import EssayItem
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.lms.persistence import load_lms, save_lms
from repro.lms.tracking import EventKind


def busy_lms():
    lms = Lms(clock=ManualClock())
    exam = (
        ExamBuilder("ex1", "Exam One")
        .add_item(
            MultipleChoiceItem.build("q1", "Pick A.", ["a", "b"], correct_index=0)
        )
        .add_item(EssayItem(item_id="q2", question="Discuss.", max_points=4))
        .time_limit(600)
        .build()
    )
    lms.offer_exam(exam)
    for learner_id in ("amy", "bob"):
        lms.register_learner(Learner(learner_id=learner_id, name=learner_id.title()))
        lms.enroll(learner_id, "ex1")
    lms.start_exam("amy", "ex1")
    lms.answer("amy", "ex1", "q1", "A")
    lms.answer("amy", "ex1", "q2", "a long enough essay answer")
    lms.submit("amy", "ex1")
    return lms


class TestSaveLoad:
    def test_round_trip_core_state(self, tmp_path):
        lms = busy_lms()
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path, clock=ManualClock())
        assert restored.offered_exams() == ["ex1"]
        assert restored.exam("ex1").title == "Exam One"
        assert sorted(restored.learners.ids()) == ["amy", "bob"]
        assert restored.enrolled("ex1") == ["amy", "bob"]

    def test_results_restored(self, tmp_path):
        lms = busy_lms()
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        sittings = restored.results_for("ex1")
        assert len(sittings) == 1
        sitting = sittings[0]
        assert sitting.learner_id == "amy"
        assert sitting.scores["q1"].correct is True
        assert sitting.scores["q2"].needs_manual_grading
        assert sitting.pending_items() == ["q2"]

    def test_learner_progress_restored(self, tmp_path):
        lms = busy_lms()
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        amy = restored.learners.get("amy")
        assert amy.status_for("ex1") in ("passed", "failed", "incomplete")
        assert "ex1" in amy.course_scores

    def test_tracking_restored(self, tmp_path):
        lms = busy_lms()
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        assert len(restored.tracking) == len(lms.tracking)
        assert restored.tracking.counts_by_kind()[EventKind.SUBMITTED] == 1

    def test_restored_lms_accepts_new_sittings(self, tmp_path):
        """The reloaded LMS is live: bob can sit the exam."""
        path = tmp_path / "lms.json"
        save_lms(busy_lms(), path)
        restored = load_lms(path, clock=ManualClock())
        restored.start_exam("bob", "ex1")
        restored.answer("bob", "ex1", "q1", "A")
        graded = restored.submit("bob", "ex1")
        assert graded.learner_id == "bob"
        assert len(restored.results_for("ex1")) == 2

    def test_analysis_works_on_restored_results(self, tmp_path):
        lms = Lms(clock=ManualClock())
        exam = (
            ExamBuilder("e", "E")
            .add_item(
                MultipleChoiceItem.build("q1", "A?", ["a", "b"], correct_index=0)
            )
            .build()
        )
        lms.offer_exam(exam)
        for index in range(8):
            learner_id = f"s{index}"
            lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
            lms.enroll(learner_id, "e")
            lms.start_exam(learner_id, "e")
            lms.answer(learner_id, "e", "q1", "A" if index < 4 else "B")
            lms.submit(learner_id, "e")
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        analysis = restored.analyze_exam("e")
        assert analysis.questions[0].discrimination == 1.0


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BankError):
            load_lms(tmp_path / "ghost.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(BankError):
            load_lms(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(BankError):
            load_lms(path)
