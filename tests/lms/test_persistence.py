"""Tests for LMS persistence (repro.lms.persistence)."""

import json

import pytest

from repro.core.errors import BankError
from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.items.essay import EssayItem
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.lms.persistence import load_lms, save_lms
from repro.lms.tracking import EventKind


def busy_lms():
    lms = Lms(clock=ManualClock())
    exam = (
        ExamBuilder("ex1", "Exam One")
        .add_item(
            MultipleChoiceItem.build("q1", "Pick A.", ["a", "b"], correct_index=0)
        )
        .add_item(EssayItem(item_id="q2", question="Discuss.", max_points=4))
        .time_limit(600)
        .build()
    )
    lms.offer_exam(exam)
    for learner_id in ("amy", "bob"):
        lms.register_learner(Learner(learner_id=learner_id, name=learner_id.title()))
        lms.enroll(learner_id, "ex1")
    lms.start_exam("amy", "ex1")
    lms.answer("amy", "ex1", "q1", "A")
    lms.answer("amy", "ex1", "q2", "a long enough essay answer")
    lms.submit("amy", "ex1")
    return lms


class TestSaveLoad:
    def test_round_trip_core_state(self, tmp_path):
        lms = busy_lms()
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path, clock=ManualClock())
        assert restored.offered_exams() == ["ex1"]
        assert restored.exam("ex1").title == "Exam One"
        assert sorted(restored.learners.ids()) == ["amy", "bob"]
        assert restored.enrolled("ex1") == ["amy", "bob"]

    def test_results_restored(self, tmp_path):
        lms = busy_lms()
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        sittings = restored.results_for("ex1")
        assert len(sittings) == 1
        sitting = sittings[0]
        assert sitting.learner_id == "amy"
        assert sitting.scores["q1"].correct is True
        assert sitting.scores["q2"].needs_manual_grading
        assert sitting.pending_items() == ["q2"]

    def test_learner_progress_restored(self, tmp_path):
        lms = busy_lms()
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        amy = restored.learners.get("amy")
        assert amy.status_for("ex1") in ("passed", "failed", "incomplete")
        assert "ex1" in amy.course_scores

    def test_tracking_restored(self, tmp_path):
        lms = busy_lms()
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        assert len(restored.tracking) == len(lms.tracking)
        assert restored.tracking.counts_by_kind()[EventKind.SUBMITTED] == 1

    def test_restored_lms_accepts_new_sittings(self, tmp_path):
        """The reloaded LMS is live: bob can sit the exam."""
        path = tmp_path / "lms.json"
        save_lms(busy_lms(), path)
        restored = load_lms(path, clock=ManualClock())
        restored.start_exam("bob", "ex1")
        restored.answer("bob", "ex1", "q1", "A")
        graded = restored.submit("bob", "ex1")
        assert graded.learner_id == "bob"
        assert len(restored.results_for("ex1")) == 2

    def test_analysis_works_on_restored_results(self, tmp_path):
        lms = Lms(clock=ManualClock())
        exam = (
            ExamBuilder("e", "E")
            .add_item(
                MultipleChoiceItem.build("q1", "A?", ["a", "b"], correct_index=0)
            )
            .build()
        )
        lms.offer_exam(exam)
        for index in range(8):
            learner_id = f"s{index}"
            lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
            lms.enroll(learner_id, "e")
            lms.start_exam(learner_id, "e")
            lms.answer(learner_id, "e", "q1", "A" if index < 4 else "B")
            lms.submit(learner_id, "e")
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        analysis = restored.analyze_exam("e")
        assert analysis.questions[0].discrimination == 1.0


class TestMonitorRoundTrip:
    """save_lms/load_lms used to drop the proctoring record entirely."""

    def test_frames_and_totals_survive_restart(self, tmp_path):
        lms = busy_lms()
        # force extra captures beyond the poll-driven one
        lms.monitor.capture("amy", "ex1", 31.0)
        lms.monitor.capture("amy", "ex1", 62.0)
        before = lms.monitor
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        after = restored.monitor
        assert after.metrics() == before.metrics()
        previous = before.frames_for("amy", "ex1")
        current = after.frames_for("amy", "ex1")
        assert [frame.sequence for frame in current] == [
            frame.sequence for frame in previous
        ]
        # payload integrity: byte-identical frames, checksums included
        assert [frame.checksum() for frame in current] == [
            frame.checksum() for frame in previous
        ]
        assert [frame.elapsed_seconds for frame in current] == [
            frame.elapsed_seconds for frame in previous
        ]

    def test_capture_schedule_survives(self, tmp_path):
        """The restored monitor does not double-capture immediately."""
        lms = busy_lms()
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        # last capture was at elapsed 0.0 during start; a poll inside the
        # interval must not capture again
        assert restored.monitor.poll("amy", "ex1", 1.0) is None
        assert restored.monitor.poll("amy", "ex1", 31.0) is not None

    def test_dropped_counts_and_config_survive(self, tmp_path):
        from repro.lms.monitor import ExamMonitor

        monitor = ExamMonitor(interval_seconds=5.0, max_frames=2)
        lms = Lms(clock=ManualClock(), monitor=monitor)
        exam = (
            ExamBuilder("e", "E")
            .add_item(
                MultipleChoiceItem.build("q1", "A?", ["a", "b"], correct_index=0)
            )
            .build()
        )
        lms.offer_exam(exam)
        for elapsed in (0.0, 5.0, 10.0, 15.0):
            monitor.capture("x", "e", elapsed)
        assert monitor.dropped_count("x", "e") == 2
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        assert restored.monitor.interval_seconds == 5.0
        assert restored.monitor.max_frames == 2
        assert restored.monitor.dropped_count("x", "e") == 2
        # sequences continue where they left off (no reused frame ids)
        frame = restored.monitor.capture("x", "e", 20.0)
        assert frame.sequence == 4

    def test_old_state_files_without_monitor_section_load(self, tmp_path):
        lms = busy_lms()
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        payload = json.loads(path.read_text())
        del payload["monitor"]
        path.write_text(json.dumps(payload))
        restored = load_lms(path)
        assert restored.monitor.metrics()["frames_captured"] == 0


def resumable_lms():
    """An LMS with one in-progress and one suspended sitting."""
    lms = Lms(clock=ManualClock(50.0))
    exam = (
        ExamBuilder("ex1", "Exam One")
        .add_item(
            MultipleChoiceItem.build("q1", "Pick A.", ["a", "b"], correct_index=0)
        )
        .add_item(
            MultipleChoiceItem.build("q2", "Pick B.", ["a", "b"], correct_index=1)
        )
        .resumable(True)
        .time_limit(600)
        .build()
    )
    lms.offer_exam(exam)
    for learner_id in ("amy", "bob"):
        lms.register_learner(Learner(learner_id=learner_id, name=learner_id.title()))
        lms.enroll(learner_id, "ex1")
        lms.start_exam(learner_id, "ex1")
    lms.clock.advance(10.0)
    lms.answer("amy", "ex1", "q1", "A")  # amy stays in progress
    lms.answer("bob", "ex1", "q1", "B")
    lms.clock.advance(5.0)
    lms.suspend("bob", "ex1")  # bob walks away
    return lms


class TestInFlightSittings:
    """save_lms/load_lms used to silently drop un-submitted sittings."""

    def test_in_progress_sitting_survives_restart(self, tmp_path):
        lms = resumable_lms()
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)
        sitting = restored.sitting("amy", "ex1")
        assert sitting.session.state.value == "in_progress"
        assert sitting.session.response_to("q1") == "A"
        assert sitting.item_order == lms.sitting("amy", "ex1").item_order

    def test_restored_sitting_continues_to_submission(self, tmp_path):
        path = tmp_path / "lms.json"
        save_lms(resumable_lms(), path)
        restored = load_lms(path, clock=ManualClock(200.0))
        restored.answer("amy", "ex1", "q2", "B")
        graded = restored.submit("amy", "ex1")
        assert graded.scores["q1"].correct is True
        assert graded.scores["q2"].correct is True

    def test_suspended_sitting_survives_and_resumes(self, tmp_path):
        path = tmp_path / "lms.json"
        save_lms(resumable_lms(), path)
        restored = load_lms(path, clock=ManualClock(500.0))
        sitting = restored.sitting("bob", "ex1")
        assert sitting.session.state.value == "suspended"
        restored.resume("bob", "ex1")
        restored.answer("bob", "ex1", "q2", "A")
        graded = restored.submit("bob", "ex1")
        assert graded.scores["q1"].selected == "B"

    def test_clock_reanchors_across_restart(self, tmp_path):
        """Without an explicit clock, load_lms installs an OffsetClock at
        the saved timeline — elapsed time does not jump by wall-clock."""
        lms = resumable_lms()
        elapsed_before = lms.sitting("amy", "ex1").session.elapsed_seconds(
            lms.clock.now()
        )
        path = tmp_path / "lms.json"
        save_lms(lms, path)
        restored = load_lms(path)  # no clock argument
        elapsed_after = restored.sitting("amy", "ex1").session.elapsed_seconds(
            restored.clock.now()
        )
        # a real restart takes nonzero wall time; allow a generous margin
        # while catching the old failure mode (decades of drift from epoch
        # wall-clock vs. the ManualClock's small floats)
        assert elapsed_before <= elapsed_after < elapsed_before + 30.0

    def test_cmi_interactions_rebuilt(self, tmp_path):
        """The restored sitting's SCORM API saw every recorded answer."""
        path = tmp_path / "lms.json"
        save_lms(resumable_lms(), path)
        restored = load_lms(path)
        sitting = restored.sitting("amy", "ex1")
        assert sitting.interaction_count == 1
        api = sitting.api
        assert api.LMSGetValue("cmi.interactions._count") == "1"
        # interaction fields are write-only in SCORM 1.2; read the
        # LMS-side record instead
        recorded = api.datamodel.interactions()[0]
        assert recorded["id"] == "q1"

    def test_old_state_files_without_sittings_section_load(self, tmp_path):
        path = tmp_path / "lms.json"
        save_lms(resumable_lms(), path)
        payload = json.loads(path.read_text())
        del payload["sittings"]
        path.write_text(json.dumps(payload))
        restored = load_lms(path)
        assert restored.offered_exams() == ["ex1"]

    def test_sitting_for_a_retired_exam_is_skipped(self, tmp_path):
        """A sitting whose exam vanished from the payload is dropped, not
        a crash at load time."""
        path = tmp_path / "lms.json"
        save_lms(resumable_lms(), path)
        payload = json.loads(path.read_text())
        payload["sittings"] = [
            dict(record, exam_id="ghost") for record in payload["sittings"]
        ]
        path.write_text(json.dumps(payload))
        restored = load_lms(path)
        assert restored.offered_exams() == ["ex1"]


class TestAtomicWrite:
    def test_failed_save_leaves_previous_snapshot_intact(self, tmp_path):
        path = tmp_path / "lms.json"
        save_lms(busy_lms(), path)
        good = path.read_text()

        lms = busy_lms()
        # sabotage serialization mid-collect: an unserializable monitor
        lms.monitor.export_state = lambda: {"bad": object()}  # type: ignore
        with pytest.raises(TypeError):
            save_lms(lms, path)
        # the old file is untouched and still loads
        assert path.read_text() == good
        assert load_lms(path).offered_exams() == ["ex1"]

    def test_no_temp_file_debris_after_failure(self, tmp_path):
        path = tmp_path / "lms.json"
        lms = busy_lms()
        lms.monitor.export_state = lambda: {"bad": object()}  # type: ignore
        with pytest.raises(TypeError):
            save_lms(lms, path)
        assert list(tmp_path.iterdir()) == []

    def test_replace_failure_cleans_up_the_temp_file(
        self, tmp_path, monkeypatch
    ):
        from repro.lms import persistence

        def boom(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(persistence.os, "replace", boom)
        with pytest.raises(OSError, match="disk on fire"):
            persistence._write_atomic(tmp_path / "x.json", "{}")
        assert list(tmp_path.iterdir()) == []

    def test_save_into_current_directory_path(self, tmp_path, monkeypatch):
        """A bare filename (no directory part) writes atomically too."""
        monkeypatch.chdir(tmp_path)
        save_lms(busy_lms(), "lms.json")
        assert load_lms("lms.json").offered_exams() == ["ex1"]


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BankError):
            load_lms(tmp_path / "ghost.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(BankError):
            load_lms(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(BankError):
            load_lms(path)
