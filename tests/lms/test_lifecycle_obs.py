"""LMS lifecycle sequencing, monitor metrics, and obs instrumentation."""

import pytest

from repro import obs
from repro.core.errors import SessionStateError
from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.obs import Registry


@pytest.fixture()
def fresh_registry():
    registry = Registry(enabled=True)
    previous = obs.set_registry(registry)
    try:
        yield registry
    finally:
        obs.set_registry(previous)


def build_exam(exam_id="ex1"):
    return (
        ExamBuilder(exam_id, "Lifecycle Exam")
        .add_item(
            MultipleChoiceItem.build("q1", "Pick A.", ["a", "b"], correct_index=0)
        )
        .add_item(
            MultipleChoiceItem.build("q2", "Pick B.", ["a", "b"], correct_index=1)
        )
        .time_limit(600)
        .build()
    )


def fresh_lms():
    lms = Lms(clock=ManualClock())
    lms.offer_exam(build_exam())
    lms.register_learner(Learner(learner_id="alice", name="Alice"))
    lms.enroll("alice", "ex1")
    return lms


class TestLifecycleSequencing:
    def test_suspend_resume_submit_round_trip(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        lms.suspend("alice", "ex1")
        # a suspended sitting cannot take answers...
        with pytest.raises(SessionStateError):
            lms.answer("alice", "ex1", "q2", "B")
        lms.resume("alice", "ex1")
        lms.answer("alice", "ex1", "q2", "B")
        graded = lms.submit("alice", "ex1")
        assert graded.percent == 100.0

    def test_double_submit_rejected(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        lms.submit("alice", "ex1")
        with pytest.raises(SessionStateError):
            lms.submit("alice", "ex1")

    def test_resume_without_suspend_rejected(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        with pytest.raises(SessionStateError):
            lms.resume("alice", "ex1")

    def test_restart_of_open_sitting_rejected(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        with pytest.raises(SessionStateError):
            lms.start_exam("alice", "ex1")


class TestLifecycleCounters:
    def test_full_lifecycle_counts_every_stage(self, fresh_registry):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        lms.suspend("alice", "ex1")
        lms.resume("alice", "ex1")
        lms.answer("alice", "ex1", "q2", "B")
        lms.submit("alice", "ex1")
        counters = fresh_registry.counters()
        assert counters["lms.sittings.started"] == 1
        assert counters["lms.answers.recorded"] == 2
        assert counters["lms.sittings.suspended"] == 1
        assert counters["lms.sittings.resumed"] == 1
        assert counters["lms.sittings.submitted"] == 1
        names = {root.name for root in fresh_registry.roots}
        assert {
            "lms.start_exam",
            "lms.answer",
            "lms.suspend",
            "lms.resume",
            "lms.submit",
        } <= names

    def test_failed_operation_does_not_count(self, fresh_registry):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.submit("alice", "ex1")
        with pytest.raises(SessionStateError):
            lms.submit("alice", "ex1")
        assert fresh_registry.counter("lms.sittings.submitted") == 1
        errored = [r for r in fresh_registry.roots if r.error is not None]
        assert [r.name for r in errored] == ["lms.submit"]

    def test_analyze_and_report_spans(self, fresh_registry):
        lms = fresh_lms()
        for learner_id in ("alice", "bob", "carol", "dave",
                           "erin", "frank", "grace", "heidi"):
            if learner_id != "alice":
                lms.register_learner(
                    Learner(learner_id=learner_id, name=learner_id)
                )
                lms.enroll(learner_id, "ex1")
            lms.start_exam(learner_id, "ex1")
            lms.answer(learner_id, "ex1", "q1", "A")
            lms.answer(learner_id, "ex1", "q2", "A")
            lms.submit(learner_id, "ex1")
        lms.analyze_exam("ex1")
        lms.report_for("ex1")
        names = {root.name for root in fresh_registry.roots}
        assert "lms.analyze_exam" in names
        assert "lms.report_for" in names


class TestMonitorMetrics:
    def test_metrics_reflect_monitored_activity(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        lms.answer("alice", "ex1", "q2", "B")
        metrics = lms.monitor.metrics()
        assert metrics["sittings_monitored"] == 1
        assert metrics["polls"] >= 3  # launch + two answers
        assert metrics["frames_retained"] >= 1
        assert metrics["frames_captured"] >= metrics["frames_retained"]
        assert metrics["frames_dropped"] == (
            metrics["frames_captured"] - metrics["frames_retained"]
        )

    def test_sitting_metrics_for_one_learner(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        per = lms.monitor.sitting_metrics("alice", "ex1")
        assert per["frames_retained"] >= 1
        assert per["last_capture_elapsed"] >= 0.0

    def test_lifetime_totals_survive_clear(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        before = lms.monitor.metrics()
        lms.monitor.clear("alice", "ex1")
        after = lms.monitor.metrics()
        assert after["frames_captured"] == before["frames_captured"]
        assert after["polls"] == before["polls"]
        assert after["frames_retained"] == 0

    def test_monitor_counters_under_obs(self, fresh_registry):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        captured = fresh_registry.counter("monitor.frames.captured")
        assert captured == lms.monitor.metrics()["frames_captured"]
