"""Tests for LMS questionnaire tabulation and report reliability."""

import pytest

from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.items.questionnaire import QuestionnaireItem
from repro.lms.learners import Learner
from repro.lms.lms import Lms


def exam_with_questionnaire():
    return (
        ExamBuilder("course-eval", "Course with evaluation")
        .add_item(
            MultipleChoiceItem.build("q1", "Pick A.", ["a", "b"], correct_index=0)
        )
        .add_item(
            MultipleChoiceItem.build("q2", "Pick B.", ["a", "b"], correct_index=1)
        )
        .add_item(
            QuestionnaireItem(
                item_id="opinion",
                question="The unit was well paced.",
                scale=["disagree", "neutral", "agree"],
            )
        )
        .build()
    )


def run_class(n=12):
    lms = Lms(clock=ManualClock())
    lms.offer_exam(exam_with_questionnaire())
    opinions = ["agree", "agree", "neutral", "disagree"]
    for index in range(n):
        learner_id = f"s{index:02d}"
        lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
        lms.enroll(learner_id, "course-eval")
        lms.start_exam(learner_id, "course-eval")
        lms.answer(learner_id, "course-eval", "q1", "A" if index < n // 2 else "B")
        lms.answer(learner_id, "course-eval", "q2", "B" if index < n // 2 else "A")
        if index % 4 != 3:  # one in four skips the questionnaire
            lms.answer(
                learner_id, "course-eval", "opinion", opinions[index % 4]
            )
        lms.submit(learner_id, "course-eval")
    return lms


class TestQuestionnaireSummaries:
    def test_one_summary_per_questionnaire_item(self):
        lms = run_class()
        summaries = lms.questionnaire_summaries("course-eval")
        assert len(summaries) == 1
        assert summaries[0].question == "The unit was well paced."

    def test_counts_and_omissions(self):
        lms = run_class(n=12)
        summary = lms.questionnaire_summaries("course-eval")[0]
        # pattern repeats every 4 learners: agree, agree, neutral, skip
        assert summary.counts["agree"] == 6
        assert summary.counts["neutral"] == 3
        assert summary.counts["disagree"] == 0
        assert summary.omissions == 3
        assert summary.respondents == 9

    def test_mean_position(self):
        lms = run_class(n=12)
        summary = lms.questionnaire_summaries("course-eval")[0]
        # positions: agree=3 (x6), neutral=2 (x3) -> (18+6)/9
        assert summary.mean_position == pytest.approx(24 / 9)

    def test_exam_without_questionnaires(self):
        lms = Lms(clock=ManualClock())
        exam = (
            ExamBuilder("plain", "Plain")
            .add_item(
                MultipleChoiceItem.build("q", "Pick.", ["a", "b"], correct_index=0)
            )
            .build()
        )
        lms.offer_exam(exam)
        assert lms.questionnaire_summaries("plain") == []


class TestReportReliability:
    def test_report_includes_kr20_and_sem(self):
        lms = run_class(n=16)
        report = lms.report_for("course-eval")
        assert report.reliability is not None
        assert report.reliability <= 1.0
        assert report.sem is not None and report.sem >= 0.0
        assert "KR-20" in report.render()

    def test_export_includes_reliability(self):
        from repro.core.export import report_to_dict

        lms = run_class(n=16)
        payload = report_to_dict(lms.report_for("course-eval"))
        assert "reliability" in payload
        assert payload["reliability"]["kr20"] == pytest.approx(
            lms.report_for("course-eval").reliability
        )

    def test_degenerate_cohort_omits_reliability(self):
        """Everyone identical -> zero variance -> section omitted."""
        lms = Lms(clock=ManualClock())
        exam = (
            ExamBuilder("flat", "Flat")
            .add_item(
                MultipleChoiceItem.build("q1", "A.", ["a", "b"], correct_index=0)
            )
            .add_item(
                MultipleChoiceItem.build("q2", "B.", ["a", "b"], correct_index=0)
            )
            .build()
        )
        lms.offer_exam(exam)
        for index in range(8):
            learner_id = f"s{index}"
            lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
            lms.enroll(learner_id, "flat")
            lms.start_exam(learner_id, "flat")
            lms.answer(learner_id, "flat", "q1", "A")
            lms.answer(learner_id, "flat", "q2", "A")
            lms.submit(learner_id, "flat")
        report = lms.report_for("flat")
        assert report.reliability is None
        assert "KR-20" not in report.render()


class TestConceptPerformanceInReport:
    def test_report_renders_remediation_section(self):
        lms = run_class(n=16)
        text = lms.report_for("course-eval").render()
        assert "Concept performance" in text

    def test_export_includes_concept_rows(self):
        from repro.core.export import report_to_dict

        lms = run_class(n=16)
        payload = report_to_dict(lms.report_for("course-eval"))
        assert "concept_performance" in payload
        rows = payload["concept_performance"]
        assert all("needs_remedial_course" in row for row in rows)
