"""Tests for learner transcripts (repro.lms.transcripts)."""

import pytest

from repro.core.errors import NotFoundError
from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.lms.transcripts import build_transcript


def two_exam_lms():
    lms = Lms(clock=ManualClock())
    for exam_id, title in (("math", "Math Exam"), ("cs", "CS Exam")):
        lms.offer_exam(
            ExamBuilder(exam_id, title)
            .add_item(
                MultipleChoiceItem.build(
                    f"{exam_id}-q1", "Pick A.", ["a", "b"], correct_index=0
                )
            )
            .add_item(
                MultipleChoiceItem.build(
                    f"{exam_id}-q2", "Pick B.", ["a", "b"], correct_index=1
                )
            )
            .build()
        )
    lms.register_learner(Learner(learner_id="amy", name="Amy"))
    lms.enroll("amy", "math")
    lms.enroll("amy", "cs")
    return lms


def sit(lms, exam_id, answers):
    lms.start_exam("amy", exam_id)
    for item_id, response in answers.items():
        lms.answer("amy", exam_id, item_id, response)
    return lms.submit("amy", exam_id)


class TestTranscript:
    def test_rows_cover_enrolled_exams(self):
        lms = two_exam_lms()
        sit(lms, "math", {"math-q1": "A", "math-q2": "B"})
        transcript = build_transcript(lms, "amy")
        assert [row.exam_id for row in transcript.rows] == ["math", "cs"]

    def test_passed_exam_row(self):
        lms = two_exam_lms()
        sit(lms, "math", {"math-q1": "A", "math-q2": "B"})
        transcript = build_transcript(lms, "amy")
        math_row = transcript.rows[0]
        assert math_row.status == "passed"
        assert math_row.best_score_percent == 100.0
        assert math_row.attempts == 1
        assert math_row.sittings == 1

    def test_unattempted_exam_row(self):
        lms = two_exam_lms()
        transcript = build_transcript(lms, "amy")
        cs_row = transcript.rows[1]
        assert cs_row.status == "not attempted"
        assert cs_row.best_score_percent is None
        assert cs_row.sittings == 0

    def test_best_score_across_sittings(self):
        lms = two_exam_lms()
        sit(lms, "math", {"math-q1": "A"})  # 50% -> failed
        sit(lms, "math", {"math-q1": "A", "math-q2": "B"})  # 100%
        transcript = build_transcript(lms, "amy")
        math_row = transcript.rows[0]
        assert math_row.best_score_percent == 100.0
        assert math_row.attempts == 2
        assert math_row.sittings == 2

    def test_passed_count(self):
        lms = two_exam_lms()
        sit(lms, "math", {"math-q1": "A", "math-q2": "B"})
        sit(lms, "cs", {"cs-q1": "B"})  # 0% -> failed
        transcript = build_transcript(lms, "amy")
        assert transcript.passed_count == 1

    def test_render(self):
        lms = two_exam_lms()
        sit(lms, "math", {"math-q1": "A", "math-q2": "B"})
        text = build_transcript(lms, "amy").render()
        assert "Amy" in text
        assert "Math Exam" in text
        assert "passed" in text
        assert "1 of 2 exams passed" in text

    def test_render_empty(self):
        lms = Lms(clock=ManualClock())
        lms.register_learner(Learner(learner_id="new", name="New"))
        text = build_transcript(lms, "new").render()
        assert "no exams taken" in text

    def test_unknown_learner_rejected(self):
        with pytest.raises(NotFoundError):
            build_transcript(two_exam_lms(), "ghost")

    def test_unenrolled_exams_excluded(self):
        lms = two_exam_lms()
        lms.register_learner(Learner(learner_id="bob", name="Bob"))
        lms.enroll("bob", "math")
        transcript = build_transcript(lms, "bob")
        assert [row.exam_id for row in transcript.rows] == ["math"]
