"""Lock semantics and contention accounting for the sharded LMS.

The coarse ``Lms`` RLock became a reader-writer :class:`ShardLock` plus
per-sitting :class:`InstrumentedRLock`\\ s.  These tests pin the
semantics the refactor depends on: shared sections genuinely overlap,
exclusive sections exclude everything, a shared→exclusive upgrade is a
programming error (deadlock otherwise), reentrancy works both ways, and
every acquisition feeds the :class:`LockStats` that ``/metrics``
surfaces.
"""

import threading
import time

import pytest

from repro.lms.locks import (
    MAX_SITTING_LABELS,
    InstrumentedRLock,
    LockStats,
    ShardLock,
)


class TestShardLockSemantics:
    def test_shared_sections_overlap(self):
        lock = ShardLock(LockStats())
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.shared():
                inside.wait()  # both readers in simultaneously or bust

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not any(thread.is_alive() for thread in threads)

    def test_exclusive_excludes_shared(self):
        lock = ShardLock(LockStats())
        order = []
        entered = threading.Event()

        def reader():
            entered.set()
            with lock.shared():
                order.append("reader")

        with lock:
            thread = threading.Thread(target=reader)
            thread.start()
            entered.wait(timeout=5)
            time.sleep(0.05)  # give the reader a chance to (wrongly) enter
            order.append("writer-done")
        thread.join(timeout=5)
        assert order == ["writer-done", "reader"]

    def test_writer_waits_for_readers(self):
        lock = ShardLock(LockStats())
        order = []
        in_read = threading.Event()

        def writer():
            with lock:
                order.append("writer")

        with lock.shared():
            in_read.set()
            thread = threading.Thread(target=writer)
            thread.start()
            time.sleep(0.05)
            order.append("reader-done")
        thread.join(timeout=5)
        assert order == ["reader-done", "writer"]

    def test_exclusive_is_reentrant(self):
        lock = ShardLock(LockStats())
        with lock:
            with lock:
                pass  # no deadlock

    def test_shared_inside_exclusive_passes_through(self):
        lock = ShardLock(LockStats())
        with lock:
            with lock.shared():
                pass  # the writer already excludes everyone

    def test_upgrade_is_a_programming_error(self):
        lock = ShardLock(LockStats())
        with lock.shared():
            with pytest.raises(RuntimeError):
                lock.acquire()

    def test_reentrant_shared(self):
        lock = ShardLock(LockStats())
        with lock.shared():
            with lock.shared():
                pass


class TestStats:
    def test_acquisitions_counted_per_scope(self):
        stats = LockStats()
        lock = ShardLock(stats)
        with lock:
            pass
        with lock.shared():
            pass
        snapshot = stats.snapshot()
        assert snapshot["scopes"]["shard.exclusive"]["acquisitions"] == 1
        assert snapshot["scopes"]["shard.shared"]["acquisitions"] == 1

    def test_contention_counted_with_wait_time(self):
        stats = LockStats()
        lock = ShardLock(stats)
        released = threading.Event()
        holding = threading.Event()

        def holder():
            with lock:
                holding.set()
                released.wait(timeout=5)

        thread = threading.Thread(target=holder)
        thread.start()
        holding.wait(timeout=5)
        timer = threading.Timer(0.08, released.set)
        timer.start()
        with lock:  # must wait for the holder → contended
            pass
        thread.join(timeout=5)
        scope = stats.snapshot()["scopes"]["shard.exclusive"]
        assert scope["contended"] >= 1
        assert scope["wait_ms_total"] > 0

    def test_sitting_lock_reports_its_label(self):
        stats = LockStats()
        lock = InstrumentedRLock(stats, "sitting", "amy:exam-1")
        blocking = threading.Event()
        go = threading.Event()

        def holder():
            with lock:
                blocking.set()
                go.wait(timeout=5)

        thread = threading.Thread(target=holder)
        thread.start()
        blocking.wait(timeout=5)
        timer = threading.Timer(0.05, go.set)
        timer.start()
        with lock:
            pass
        thread.join(timeout=5)
        snapshot = stats.snapshot()
        assert "amy:exam-1" in snapshot["contended_sittings"]

    def test_sitting_label_map_is_bounded(self):
        stats = LockStats()
        for index in range(MAX_SITTING_LABELS * 2):
            stats.record(
                "sitting", 0.001, True, label=f"learner-{index}:exam"
            )
        snapshot = stats.snapshot()
        contended = snapshot["contended_sittings"]
        assert len(contended) <= MAX_SITTING_LABELS + 1  # + "(other)"
        assert contended.get("(other)", 0) >= MAX_SITTING_LABELS

    def test_uncontended_acquire_is_not_contended(self):
        stats = LockStats()
        lock = InstrumentedRLock(stats, "sitting", "solo:exam")
        with lock:
            pass
        snapshot = stats.snapshot()
        assert snapshot["scopes"]["sitting"]["contended"] == 0
        assert snapshot["contended_sittings"] == {}


class TestLmsWiring:
    def test_lms_snapshot_appears_in_lock_stats(self):
        from repro.lms.lms import Lms

        lms = Lms()
        lms.offered_exams()  # a shared acquisition
        snapshot = lms.lock_stats.snapshot()
        assert snapshot["scopes"]["shard.shared"]["acquisitions"] >= 1

    def test_concurrent_sittings_do_not_serialize_on_the_shard(self):
        """Two learners answering simultaneously overlap: the shard
        lock is held shared, only each learner's own sitting lock is
        exclusive.  (With the old single RLock this test deadlocks on
        the barrier.)"""
        from repro.lms.learners import Learner
        from repro.lms.lms import Lms
        from repro.sim.workloads import classroom_exam

        exam = classroom_exam(4)
        lms = Lms()
        lms.offer_exam(exam)
        for learner_id in ("amy", "bob"):
            lms.register_learner(
                Learner(learner_id=learner_id, name=learner_id)
            )
            lms.enroll(learner_id, exam.exam_id)
            lms.start_exam(learner_id, exam.exam_id)

        barrier = threading.Barrier(2, timeout=5)
        errors = []

        def sit(learner_id):
            try:
                barrier.wait()
                for item in exam.analyzable_items():
                    lms.answer(learner_id, exam.exam_id, item.item_id, "A")
                lms.submit(learner_id, exam.exam_id)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=sit, args=(learner_id,))
            for learner_id in ("amy", "bob")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert len(lms.results_for(exam.exam_id)) == 2
