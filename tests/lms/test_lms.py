"""Tests for the LMS (repro.lms.lms) and learner registry."""

import pytest

from repro.core.errors import (
    DuplicateIdError,
    NotFoundError,
    SessionStateError,
)
from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.lms.learners import Learner, LearnerRegistry
from repro.lms.lms import Lms
from repro.lms.tracking import EventKind
from repro.scorm.api import ApiState


def two_question_exam(exam_id="ex1"):
    return (
        ExamBuilder(exam_id, "Exam")
        .add_item(
            MultipleChoiceItem.build("q1", "Pick A.", ["a", "b"], correct_index=0)
        )
        .add_item(
            MultipleChoiceItem.build("q2", "Pick B.", ["a", "b"], correct_index=1)
        )
        .time_limit(600)
        .build()
    )


def fresh_lms():
    lms = Lms(clock=ManualClock())
    lms.offer_exam(two_question_exam())
    lms.register_learner(Learner(learner_id="alice", name="Alice"))
    lms.enroll("alice", "ex1")
    return lms


class TestLearnerRegistry:
    def test_register_get(self):
        registry = LearnerRegistry()
        registry.register(Learner(learner_id="a", name="A"))
        assert registry.get("a").name == "A"
        assert "a" in registry and len(registry) == 1

    def test_duplicate_rejected(self):
        registry = LearnerRegistry()
        registry.register(Learner(learner_id="a", name="A"))
        with pytest.raises(DuplicateIdError):
            registry.register(Learner(learner_id="a", name="A2"))

    def test_missing_learner(self):
        with pytest.raises(NotFoundError):
            LearnerRegistry().get("ghost")

    def test_record_result_keeps_best_score(self):
        learner = Learner(learner_id="a", name="A")
        learner.record_result("c1", "failed", 40.0)
        learner.record_result("c1", "passed", 80.0)
        learner.record_result("c1", "passed", 60.0)
        assert learner.course_scores["c1"] == 80.0
        assert learner.status_for("c1") == "passed"
        assert learner.status_for("other") == "not attempted"


class TestOfferingAndEnrollment:
    def test_offer_and_enroll(self):
        lms = fresh_lms()
        assert lms.offered_exams() == ["ex1"]
        assert lms.enrolled("ex1") == ["alice"]

    def test_duplicate_offer_rejected(self):
        lms = fresh_lms()
        with pytest.raises(DuplicateIdError):
            lms.offer_exam(two_question_exam())

    def test_enroll_unknown_learner(self):
        lms = fresh_lms()
        with pytest.raises(NotFoundError):
            lms.enroll("ghost", "ex1")

    def test_enroll_unknown_exam(self):
        lms = fresh_lms()
        with pytest.raises(NotFoundError):
            lms.enroll("alice", "ghost")

    def test_enrollment_tracked(self):
        lms = fresh_lms()
        assert len(lms.tracking.events(kind=EventKind.ENROLLED)) == 1


class TestSittingFlow:
    def test_full_sitting(self):
        lms = fresh_lms()
        sitting = lms.start_exam("alice", "ex1")
        assert sitting.api.state is ApiState.RUNNING
        lms.answer("alice", "ex1", "q1", "A")
        lms.answer("alice", "ex1", "q2", "B")
        graded = lms.submit("alice", "ex1")
        assert graded.percent == 100.0
        assert sitting.api.state is ApiState.FINISHED

    def test_start_requires_enrollment(self):
        lms = fresh_lms()
        lms.register_learner(Learner(learner_id="bob", name="Bob"))
        with pytest.raises(SessionStateError):
            lms.start_exam("bob", "ex1")

    def test_cannot_open_two_sittings(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        with pytest.raises(SessionStateError):
            lms.start_exam("alice", "ex1")

    def test_cmi_interactions_recorded(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        lms.answer("alice", "ex1", "q2", "A")  # wrong
        lms.submit("alice", "ex1")
        record = lms.rte.record("alice", "ex1")
        interactions = record.last_snapshot["interactions"]
        assert len(interactions) == 2
        assert interactions[0]["id"] == "q1"
        assert interactions[0]["result"] == "correct"
        assert interactions[1]["result"] == "wrong"

    def test_cmi_score_and_status(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        lms.submit("alice", "ex1")
        record = lms.rte.record("alice", "ex1")
        assert record.score_raw == 50.0
        assert record.lesson_status == "failed"

    def test_passing_status(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        lms.answer("alice", "ex1", "q2", "B")
        lms.submit("alice", "ex1")
        assert lms.rte.record("alice", "ex1").lesson_status == "passed"
        assert lms.learners.get("alice").course_scores["ex1"] == 100.0

    def test_suspend_resume_flow(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        lms.suspend("alice", "ex1")
        lms.resume("alice", "ex1")
        lms.answer("alice", "ex1", "q2", "B")
        graded = lms.submit("alice", "ex1")
        assert graded.percent == 100.0
        kinds = [e.kind for e in lms.tracking.events(learner_id="alice")]
        assert EventKind.SUSPENDED in kinds
        assert EventKind.RESUMED in kinds

    def test_suspend_commits_suspend_data(self):
        lms = fresh_lms()
        sitting = lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        lms.suspend("alice", "ex1")
        snapshot = lms.rte.record("alice", "ex1").last_snapshot
        assert snapshot["suspend_data"] == "answered=1"

    def test_tracking_sequence(self):
        lms = fresh_lms()
        lms.start_exam("alice", "ex1")
        lms.answer("alice", "ex1", "q1", "A")
        lms.submit("alice", "ex1")
        kinds = [event.kind for event in lms.tracking]
        assert kinds == [
            EventKind.ENROLLED,
            EventKind.LAUNCHED,
            EventKind.ANSWERED,
            EventKind.SUBMITTED,
            EventKind.GRADED,
        ]

    def test_sitting_lookup(self):
        lms = fresh_lms()
        with pytest.raises(NotFoundError):
            lms.sitting("alice", "ex1")
        lms.start_exam("alice", "ex1")
        assert lms.sitting("alice", "ex1").learner_id == "alice"


class TestMonitorIntegration:
    def test_frames_captured_during_sitting(self):
        clock = ManualClock()
        lms = Lms(clock=clock)
        lms.offer_exam(two_question_exam())
        lms.register_learner(Learner(learner_id="alice", name="Alice"))
        lms.enroll("alice", "ex1")
        lms.start_exam("alice", "ex1")  # capture at t=0
        clock.advance(31)
        lms.answer("alice", "ex1", "q1", "A")  # capture due
        clock.advance(5)
        lms.answer("alice", "ex1", "q2", "B")  # too soon, no capture
        frames = lms.monitor.frames_for("alice", "ex1")
        assert len(frames) == 2


class TestAnalysisIntegration:
    def test_analyze_exam_over_cohort(self):
        clock = ManualClock()
        lms = Lms(clock=clock)
        lms.offer_exam(two_question_exam())
        for index in range(12):
            learner_id = f"s{index:02d}"
            lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
            lms.enroll(learner_id, "ex1")
            lms.start_exam(learner_id, "ex1")
            # top half answer both right; bottom half both wrong
            if index < 6:
                lms.answer(learner_id, "ex1", "q1", "A")
                lms.answer(learner_id, "ex1", "q2", "B")
            else:
                lms.answer(learner_id, "ex1", "q1", "B")
                lms.answer(learner_id, "ex1", "q2", "A")
            clock.advance(30)
            lms.submit(learner_id, "ex1")
        analysis = lms.analyze_exam("ex1")
        assert len(analysis.questions) == 2
        for question in analysis.questions:
            assert question.discrimination == 1.0

    def _run_cohort(self, lms, clock, count=12, start=0):
        for index in range(start, start + count):
            learner_id = f"s{index:02d}"
            lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
            lms.enroll(learner_id, "ex1")
            lms.start_exam(learner_id, "ex1")
            if index % 2 == 0:
                lms.answer(learner_id, "ex1", "q1", "A")
                lms.answer(learner_id, "ex1", "q2", "B")
            else:
                lms.answer(learner_id, "ex1", "q1", "B")
                lms.answer(learner_id, "ex1", "q2", "A")
            clock.advance(30)
            lms.submit(learner_id, "ex1")

    def test_analyze_exam_engines_agree(self):
        clock = ManualClock()
        lms = Lms(clock=clock)
        lms.offer_exam(two_question_exam())
        self._run_cohort(lms, clock)
        assert lms.analyze_exam("ex1", engine="columnar") == lms.analyze_exam(
            "ex1", engine="reference"
        )

    def test_live_analysis_tracks_submissions_incrementally(self):
        clock = ManualClock()
        lms = Lms(clock=clock)
        lms.offer_exam(two_question_exam())
        self._run_cohort(lms, clock)
        # seed the warm analyzer, then submit more sittings on top
        first = lms.live_analysis("ex1")
        assert first == lms.analyze_exam("ex1")
        self._run_cohort(lms, clock, count=8, start=12)
        warm = lms.live_analysis("ex1")
        assert warm == lms.analyze_exam("ex1")
        assert len(warm.scores) == 20

    def test_live_analysis_replaces_resubmitted_sittings(self):
        clock = ManualClock()
        lms = Lms(clock=clock)
        lms.offer_exam(two_question_exam())
        self._run_cohort(lms, clock)
        lms.live_analysis("ex1")  # warm it before the re-sit
        # s01 re-sits and aces the exam; the latest sitting must win in
        # both the warm path and the from-scratch path
        lms.start_exam("s01", "ex1")
        lms.answer("s01", "ex1", "q1", "A")
        lms.answer("s01", "ex1", "q2", "B")
        clock.advance(30)
        lms.submit("s01", "ex1")
        warm = lms.live_analysis("ex1")
        cold = lms.analyze_exam("ex1")
        assert warm == cold
        assert warm.scores["s01"] == 2
        assert len(warm.scores) == 12  # s01 still counted once

    def test_report_for_exam(self):
        clock = ManualClock()
        lms = Lms(clock=clock)
        lms.offer_exam(two_question_exam())
        for index in range(8):
            learner_id = f"s{index}"
            lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
            lms.enroll(learner_id, "ex1")
            lms.start_exam(learner_id, "ex1")
            clock.advance(10)
            lms.answer(learner_id, "ex1", "q1", "A" if index < 4 else "B")
            clock.advance(10)
            lms.answer(learner_id, "ex1", "q2", "B" if index < 4 else "A")
            lms.submit(learner_id, "ex1")
        report = lms.report_for("ex1")
        text = report.render()
        assert "Number representation" in text
        assert "Signal representation" in text
        assert "time limit 600" in text

    def test_report_time_figures_count_resitters_once(self):
        # regression: answer_times used every graded sitting while the
        # cohort kept only each learner's latest, so a re-sitter was
        # double-counted in the time figures
        from repro.core.exam_analysis import time_vs_answered

        clock = ManualClock()
        lms = Lms(clock=clock)
        lms.offer_exam(two_question_exam())
        for index in range(8):
            learner_id = f"s{index}"
            lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
            lms.enroll(learner_id, "ex1")
            lms.start_exam(learner_id, "ex1")
            clock.advance(10)
            lms.answer(learner_id, "ex1", "q1", "A" if index < 4 else "B")
            clock.advance(10)
            lms.answer(learner_id, "ex1", "q2", "B" if index < 4 else "A")
            lms.submit(learner_id, "ex1")
        # s0 re-sits on a different schedule; only the re-sit may count
        lms.start_exam("s0", "ex1")
        clock.advance(40)
        lms.answer("s0", "ex1", "q1", "A")
        clock.advance(40)
        lms.answer("s0", "ex1", "q2", "B")
        lms.submit("s0", "ex1")
        report = lms.report_for("ex1")
        expected = time_vs_answered(
            [[10.0, 20.0]] * 7 + [[40.0, 80.0]], time_limit_seconds=600
        )
        assert report.time_analysis == expected
        assert len(report.cohort.scores) == 8
