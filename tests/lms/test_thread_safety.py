"""Concurrency stress tests for the LMS (the invariant repro.server
rests on: one Lms shared by many worker threads must not lose answers,
double-grade, or serve a torn live analysis)."""

import threading

import pytest

from repro.core.errors import SessionStateError
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.server.serialize import analysis_to_dict
from repro.sim.workloads import classroom_exam

EXAM_ID = "classroom-mid"
QUESTIONS = 10
THREADS = 16
LEARNERS_PER_THREAD = 5


def build_lms(learner_ids):
    lms = Lms()
    lms.offer_exam(classroom_exam(QUESTIONS))
    for learner_id in learner_ids:
        lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
        lms.enroll(learner_id, EXAM_ID)
    return lms


def run_sitting(lms, learner_id, offset):
    sitting = lms.start_exam(learner_id, EXAM_ID)
    exam = sitting.session.exam
    for index, item in enumerate(exam.items):
        # a deterministic per-learner answer pattern
        label = item.labels[(offset + index) % len(item.labels)]
        lms.answer(learner_id, EXAM_ID, item.item_id, label)
    return lms.submit(learner_id, EXAM_ID)


class TestConcurrentSittings:
    def test_no_lost_answers_no_duplicate_gradings(self):
        ids = [
            f"t{thread:02d}-l{index}"
            for thread in range(THREADS)
            for index in range(LEARNERS_PER_THREAD)
        ]
        lms = build_lms(ids)
        # seed the warm live analysis BEFORE the storm so every submit
        # folds into it incrementally under contention
        with pytest.raises(Exception):
            lms.live_analysis(EXAM_ID)  # empty cohort: analysis error
        errors = []
        barrier = threading.Barrier(THREADS)

        def work(thread_index):
            try:
                barrier.wait()
                for index in range(LEARNERS_PER_THREAD):
                    learner_id = f"t{thread_index:02d}-l{index}"
                    run_sitting(lms, learner_id, thread_index + index)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(index,))
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

        results = lms.results_for(EXAM_ID)
        # exactly one graded sitting per learner: nothing lost, nothing
        # double-graded
        assert len(results) == THREADS * LEARNERS_PER_THREAD
        assert sorted(r.learner_id for r in results) == sorted(ids)
        # every sitting kept every answer
        for graded in results:
            assert len(graded.scores) == QUESTIONS
            assert all(
                score.selected is not None
                for score in graded.scores.values()
            )

    def test_live_analysis_consistent_after_the_storm(self):
        ids = [f"w{index:03d}" for index in range(40)]
        lms = build_lms(ids)
        threads = [
            threading.Thread(
                target=run_sitting, args=(lms, learner_id, offset)
            )
            for offset, learner_id in enumerate(ids)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # the incrementally-maintained live analysis equals a cold
        # re-analysis over the full cohort
        live = lms.live_analysis(EXAM_ID)
        cold = lms.analyze_exam(EXAM_ID)
        assert analysis_to_dict(live) == analysis_to_dict(cold)

    def test_double_start_race_single_winner(self):
        """Many threads race to start the SAME sitting: exactly one wins."""
        lms = build_lms(["amy"])
        outcomes = []
        barrier = threading.Barrier(8)

        def race():
            barrier.wait()
            try:
                lms.start_exam("amy", EXAM_ID)
                outcomes.append("started")
            except SessionStateError:
                outcomes.append("rejected")

        threads = [threading.Thread(target=race) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count("started") == 1
        assert outcomes.count("rejected") == 7

    def test_concurrent_submit_race_single_winner(self):
        """Two threads race to submit one sitting: one grading, one 409."""
        lms = build_lms(["bob"])
        sitting = lms.start_exam("bob", EXAM_ID)
        exam = sitting.session.exam
        for item in exam.items:
            lms.answer("bob", EXAM_ID, item.item_id, item.labels[0])
        outcomes = []
        barrier = threading.Barrier(6)

        def race():
            barrier.wait()
            try:
                lms.submit("bob", EXAM_ID)
                outcomes.append("graded")
            except SessionStateError:
                outcomes.append("rejected")

        threads = [threading.Thread(target=race) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count("graded") == 1
        assert len(lms.results_for(EXAM_ID)) == 1
