"""Retry-After backoff: honoured, bounded, and jittered per worker."""

import random

from repro.server.loadgen import MAX_RETRY_SLEEP, _backoff_seconds


class TestBackoffSeconds:
    def test_hint_is_the_ceiling(self):
        rng = random.Random(1)
        for _ in range(200):
            sleep = _backoff_seconds("0.3", rng)
            assert 0.3 * 0.25 <= sleep <= 0.3

    def test_large_hint_clamped(self):
        rng = random.Random(2)
        for _ in range(200):
            assert _backoff_seconds("60", rng) <= MAX_RETRY_SLEEP

    def test_missing_or_garbage_hint_uses_default(self):
        rng = random.Random(3)
        for header in (None, "", "soon", "1s"):
            sleep = _backoff_seconds(header, rng)
            assert 0.1 * 0.25 <= sleep <= 0.1

    def test_tiny_hint_keeps_a_floor(self):
        rng = random.Random(4)
        for _ in range(100):
            assert _backoff_seconds("0.0001", rng) >= 0.02 * 0.25

    def test_jitter_spreads_workers_apart(self):
        """Two workers with distinct seeded RNGs (what ``run_loadgen``
        builds) draw different sleeps from the same hint — the herd
        does not wake on one tick."""
        one = random.Random("7:backoff:0")
        two = random.Random("7:backoff:1")
        draws_one = [_backoff_seconds("1", one) for _ in range(32)]
        draws_two = [_backoff_seconds("1", two) for _ in range(32)]
        assert draws_one != draws_two
        # and a single worker's own draws vary too
        assert len(set(draws_one)) > 16

    def test_same_seed_is_reproducible(self):
        first = [
            _backoff_seconds("1", random.Random("s:backoff:3"))
            for _ in range(1)
        ]
        second = [
            _backoff_seconds("1", random.Random("s:backoff:3"))
            for _ in range(1)
        ]
        assert first == second
