"""The acceptance end-to-end: a full seeded cohort over the wire.

``run_loadgen`` drives >= 200 simulated learners x 20 items through the
HTTP API against an in-process :class:`ExamServer`, then the test
proves the server-side ``live_analysis`` (as served by
``GET /exams/{id}/analysis``) equals an in-process ``analyze_cohort``
over the exact same responses.

The one subtlety: the server's cohort order is *submission* order,
which is nondeterministic under concurrent workers — and split-boundary
ties break by cohort order.  So the client-side responses are reordered
to the server's ``GET /exams/{id}/results`` order before the local
analysis runs; both sides then see the identical cohort.
"""

import http.client
import json

import pytest

from repro.core.question_analysis import analyze_cohort
from repro.server.app import ExamServer
from repro.server.loadgen import run_loadgen
from repro.server.serialize import analysis_to_dict
from repro.sim.workloads import classroom_exam

LEARNERS = 200
QUESTIONS = 20


def get_json(server, path):
    connection = http.client.HTTPConnection(
        server.host, server.port, timeout=30
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        assert response.status == 200, path
        return json.loads(response.read())
    finally:
        connection.close()


@pytest.fixture(scope="module")
def run():
    """One shared cohort run: server, loadgen report, server analysis."""
    exam = classroom_exam(QUESTIONS)
    with ExamServer() as server:
        report = run_loadgen(
            server.url,
            learners=LEARNERS,
            questions=QUESTIONS,
            seed=7,
            workers=8,
        )
        results = get_json(server, f"/exams/{exam.exam_id}/results")
        analysis = get_json(server, f"/exams/{exam.exam_id}/analysis")
        healthz = get_json(server, "/healthz")
        metrics = get_json(server, "/metrics")
    return {
        "exam": exam,
        "report": report,
        "results": results,
        "analysis": analysis,
        "healthz": healthz,
        "metrics": metrics,
    }


class TestCohortOverTheWire:
    def test_every_learner_graded_exactly_once(self, run):
        results = run["results"]["results"]
        assert len(results) == LEARNERS
        learner_ids = [graded["learner_id"] for graded in results]
        assert len(set(learner_ids)) == LEARNERS

    def test_no_errors_and_expected_request_count(self, run):
        report = run["report"]
        assert report.errors == 0
        # setup (1 offer + 2 per learner) + start + submit per learner +
        # one answer per non-omitted selection (omit_rate=0 -> all)
        expected = 1 + LEARNERS * 2 + LEARNERS * 2 + LEARNERS * QUESTIONS
        assert report.requests == expected + report.retries_503
        assert report.learners == LEARNERS
        assert report.questions == QUESTIONS

    def test_every_answer_arrived_intact(self, run):
        """The server's stored selections == the client's script."""
        by_learner = {
            graded["learner_id"]: graded for graded in run["results"]["results"]
        }
        exam = run["exam"]
        item_ids = [item.item_id for item in exam.analyzable_items()]
        for responses in run["report"].responses:
            graded = by_learner[responses.examinee_id]
            for item_id, selection in zip(item_ids, responses.selections):
                assert graded["scores"][item_id]["selected"] == selection

    def test_server_analysis_equals_local_analyze_cohort(self, run):
        """THE differential: wire-served live analysis == local analysis."""
        exam = run["exam"]
        # reorder client responses into the server's cohort order
        server_order = [
            graded["learner_id"] for graded in run["results"]["results"]
        ]
        by_id = {r.examinee_id: r for r in run["report"].responses}
        reordered = [by_id[learner_id] for learner_id in server_order]
        local = analyze_cohort(reordered, exam.question_specs())
        assert run["analysis"] == analysis_to_dict(local)

    def test_health_and_metrics_after_the_storm(self, run):
        assert run["healthz"]["status"] == "ok"
        counters = run["metrics"]["counters"]
        assert counters["server.requests{route=sittings.submit}"] == LEARNERS
        assert (
            counters["server.requests{route=sittings.answer}"]
            == LEARNERS * QUESTIONS
        )
        # nothing was dropped on the floor mid-run
        assert run["metrics"]["in_flight"] <= 1  # just the /metrics call

    def test_loadgen_is_seeded_and_reproducible(self, run):
        """A second run with the same seed posts identical selections."""
        exam = classroom_exam(QUESTIONS)
        with ExamServer() as server:
            again = run_loadgen(
                server.url,
                learners=LEARNERS,
                questions=QUESTIONS,
                seed=7,
                workers=4,  # different scheduling, same selections
            )
        first = {
            r.examinee_id: list(r.selections)
            for r in run["report"].responses
        }
        second = {
            r.examinee_id: list(r.selections) for r in again.responses
        }
        assert first == second


class TestOmissions:
    def test_omitted_items_are_skipped_not_posted(self):
        with ExamServer() as server:
            report = run_loadgen(
                server.url,
                learners=30,
                questions=8,
                seed=3,
                workers=4,
                omit_rate=0.3,
            )
            results = get_json(server, "/exams/classroom-mid/results")
        omitted = sum(
            1
            for responses in report.responses
            for selection in responses.selections
            if selection is None
        )
        assert omitted > 0  # the scenario actually exercised omissions
        answered = report.routes["answer"].count
        assert answered == 30 * 8 - omitted
        # and the server shows those items unanswered
        unanswered_server = sum(
            1
            for graded in results["results"]
            for score in graded["scores"].values()
            if score["selected"] is None
        )
        assert unanswered_server == omitted
