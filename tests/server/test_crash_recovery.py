"""Crash-injection: SIGKILL a serving process, recover every ack.

The durability contract under test: any answer the server *acknowledged*
(HTTP 200 before the kill) is present after :func:`repro.store.recover`
runs over the surviving WAL directory — including answers inside
in-flight sittings that never submitted.  The server process gets no
warning: ``SIGKILL`` mid-cohort, no ``finally`` blocks, no shutdown
checkpoint.

A second pass replays the torn-write fuzz at the directory level: any
truncation of the final surviving segment must still recover cleanly to
a prefix of the acknowledged history.
"""

import http.client
import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bank.exambank import exam_to_record
from repro.sim.workloads import classroom_exam
from repro.store import recover
from repro.store.journal import segment_files

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")
QUESTIONS = 6
LABELS = ["A", "B", "C", "D", "E"]

BOOTSTRAP = (
    "from repro.cli import main; import sys; sys.exit(main(sys.argv[1:]))"
)


def spawn_server(wal_dir, fsync="never", extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    process = subprocess.Popen(
        [
            sys.executable,
            "-c",
            BOOTSTRAP,
            "serve",
            "--port",
            "0",
            "--wal-dir",
            str(wal_dir),
            "--fsync",
            fsync,
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    deadline = time.monotonic() + 30
    url = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith("serving on "):
            url = line[len("serving on "):].strip()
            break
    if url is None:
        process.kill()
        raise RuntimeError("server never announced its URL")
    host, _, port = url[len("http://"):].partition(":")
    return process, host, int(port)


def request(host, port, method, path, body=None):
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {} if body is None else {"Content-Type": "application/json"}
        connection.request(method, path, payload, headers)
        response = connection.getresponse()
        data = json.loads(response.read() or b"{}")
        return response.status, data
    finally:
        connection.close()


@pytest.fixture(scope="module")
def crashed_run(tmp_path_factory):
    """Serve, drive a cohort, SIGKILL mid-flight; return what was acked."""
    wal_dir = tmp_path_factory.mktemp("crash-wal")
    exam = classroom_exam(QUESTIONS)
    record = exam_to_record(exam)
    process, host, port = spawn_server(wal_dir)
    acked = {"answers": [], "submitted": [], "checkpoint": None}
    try:
        status, _ = request(host, port, "POST", "/exams", record)
        assert status == 201
        learner_ids = [f"crash{i:02d}" for i in range(12)]
        for learner_id in learner_ids:
            status, _ = request(
                host, port, "POST", "/learners",
                {"learner_id": learner_id, "name": learner_id},
            )
            assert status == 201
            status, _ = request(
                host, port, "POST",
                f"/exams/{exam.exam_id}/enrollments",
                {"learner_id": learner_id},
            )
            assert status == 201
            status, _ = request(
                host, port, "POST",
                f"/exams/{exam.exam_id}/sittings/{learner_id}/start",
            )
            assert status == 201
        # learners 0-7 answer everything and submit ...
        for index, learner_id in enumerate(learner_ids[:8]):
            for question in range(1, QUESTIONS + 1):
                item_id = f"q{question:02d}"
                label = LABELS[(index + question) % len(LABELS)]
                status, _ = request(
                    host, port, "POST",
                    f"/exams/{exam.exam_id}/sittings/{learner_id}/answer",
                    {"item_id": item_id, "response": label},
                )
                assert status == 200
                acked["answers"].append((learner_id, item_id, label))
            status, _ = request(
                host, port, "POST",
                f"/exams/{exam.exam_id}/sittings/{learner_id}/submit",
            )
            assert status == 200
            acked["submitted"].append(learner_id)
        # ... a checkpoint lands mid-history ...
        status, body = request(host, port, "POST", "/admin/checkpoint")
        assert status == 200
        acked["checkpoint"] = body["covered_lsn"]
        # ... and learners 8-11 are mid-sitting when the power goes out
        for index, learner_id in enumerate(learner_ids[8:], start=8):
            for question in range(1, index - 6 + 1):  # partial progress
                item_id = f"q{question:02d}"
                label = LABELS[(index * question) % len(LABELS)]
                status, _ = request(
                    host, port, "POST",
                    f"/exams/{exam.exam_id}/sittings/{learner_id}/answer",
                    {"item_id": item_id, "response": label},
                )
                assert status == 200
                acked["answers"].append((learner_id, item_id, label))
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    return {
        "wal_dir": wal_dir,
        "exam": exam,
        "exam_id": exam.exam_id,
        "acked": acked,
    }


def assert_answer_recovered(lms, exam_id, learner_id, item_id, label, acked):
    if learner_id in acked["submitted"]:
        graded = {
            g.learner_id: g for g in lms.results_for(exam_id)
        }[learner_id]
        assert graded.scores[item_id].selected == label
    else:
        sitting = lms.sitting(learner_id, exam_id)
        assert sitting.session.response_to(item_id) == label


class TestSigkillRecovery:
    def test_the_kill_was_ungraceful(self, crashed_run):
        """No shutdown checkpoint ran: the newest checkpoint predates
        the final acked answers."""
        report = recover(crashed_run["wal_dir"])
        assert report.checkpoint_lsn == crashed_run["acked"]["checkpoint"]
        assert report.last_lsn > report.checkpoint_lsn
        assert report.records_replayed > 0

    def test_every_acked_answer_survives(self, crashed_run):
        report = recover(crashed_run["wal_dir"])
        acked = crashed_run["acked"]
        assert acked["answers"], "cohort never ran"
        for learner_id, item_id, label in acked["answers"]:
            assert_answer_recovered(
                report.lms, crashed_run["exam_id"],
                learner_id, item_id, label, acked,
            )

    def test_submitted_sittings_are_graded(self, crashed_run):
        report = recover(crashed_run["wal_dir"])
        graded_ids = {
            g.learner_id
            for g in report.lms.results_for(crashed_run["exam_id"])
        }
        assert graded_ids == set(crashed_run["acked"]["submitted"])

    def test_recovered_analysis_equals_local_analyze_cohort(
        self, crashed_run
    ):
        """THE acceptance differential: the recovered LMS's warm
        ``live_analysis`` == an in-process ``analyze_cohort`` over the
        acknowledged responses, in submission order."""
        from repro.core.question_analysis import (
            ExamineeResponses,
            analyze_cohort,
        )
        from repro.server.serialize import analysis_to_dict

        exam = crashed_run["exam"]
        acked = crashed_run["acked"]
        by_learner = {}
        for learner_id, item_id, label in acked["answers"]:
            by_learner.setdefault(learner_id, {})[item_id] = label
        item_ids = [item.item_id for item in exam.analyzable_items()]
        cohort = [
            ExamineeResponses.of(
                learner_id,
                [by_learner[learner_id].get(item_id) for item_id in item_ids],
            )
            for learner_id in acked["submitted"]  # == submission order
        ]
        local = analyze_cohort(cohort, exam.question_specs())
        report = recover(crashed_run["wal_dir"])
        recovered = report.lms.live_analysis(exam.exam_id)
        assert analysis_to_dict(recovered) == analysis_to_dict(local)

    def test_recovered_server_keeps_serving(self, crashed_run):
        """Boot a fresh server over the survivors; the cohort continues."""
        from repro.server.app import ExamServer

        with ExamServer(lms=None, wal_dir=crashed_run["wal_dir"]) as server:
            status, body = request(
                server.host, server.port, "GET",
                f"/exams/{crashed_run['exam_id']}/sittings/crash09",
            )
            assert status == 200
            assert body["state"] == "in_progress"
            status, _ = request(
                server.host, server.port, "POST",
                f"/exams/{crashed_run['exam_id']}/sittings/crash09/submit",
            )
            assert status == 200


@pytest.fixture(scope="module")
def crashed_batch_run(tmp_path_factory):
    """The batched variant: group-committed ``answers:batch`` requests
    (including the whole-sitting submit form) acked, then SIGKILL."""
    wal_dir = tmp_path_factory.mktemp("crash-batch-wal")
    exam = classroom_exam(QUESTIONS)
    record = exam_to_record(exam)
    process, host, port = spawn_server(
        wal_dir, fsync="always", extra=("--group-commit",)
    )
    acked = {"answers": [], "submitted": [], "checkpoint": None}
    try:
        status, _ = request(host, port, "POST", "/exams", record)
        assert status == 201
        learner_ids = [f"batch{i:02d}" for i in range(8)]
        for learner_id in learner_ids:
            request(
                host, port, "POST", "/learners",
                {"learner_id": learner_id, "name": learner_id},
            )
            request(
                host, port, "POST",
                f"/exams/{exam.exam_id}/enrollments",
                {"learner_id": learner_id},
            )
            status, _ = request(
                host, port, "POST",
                f"/exams/{exam.exam_id}/sittings/{learner_id}/start",
            )
            assert status == 201
        # learners 0-5: the whole sitting in ONE batch request
        for index, learner_id in enumerate(learner_ids[:6]):
            answers = [
                {
                    "item_id": f"q{question:02d}",
                    "response": LABELS[(index + question) % len(LABELS)],
                }
                for question in range(1, QUESTIONS + 1)
            ]
            status, body = request(
                host, port, "POST",
                f"/exams/{exam.exam_id}/sittings/{learner_id}/answers:batch",
                {"answers": answers, "submit": True},
            )
            assert status == 200 and body["submitted"] is True
            for entry in answers:
                acked["answers"].append(
                    (learner_id, entry["item_id"], entry["response"])
                )
            acked["submitted"].append(learner_id)
        # learners 6-7: a partial batch, mid-sitting at the kill
        for index, learner_id in enumerate(learner_ids[6:], start=6):
            answers = [
                {
                    "item_id": f"q{question:02d}",
                    "response": LABELS[(index * question) % len(LABELS)],
                }
                for question in range(1, 4)
            ]
            status, _ = request(
                host, port, "POST",
                f"/exams/{exam.exam_id}/sittings/{learner_id}/answers:batch",
                {"answers": answers},
            )
            assert status == 200
            for entry in answers:
                acked["answers"].append(
                    (learner_id, entry["item_id"], entry["response"])
                )
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    return {
        "wal_dir": wal_dir,
        "exam": exam,
        "exam_id": exam.exam_id,
        "acked": acked,
    }


class TestBatchSigkillRecovery:
    def test_every_acked_batched_answer_survives(self, crashed_batch_run):
        report = recover(crashed_batch_run["wal_dir"])
        acked = crashed_batch_run["acked"]
        assert acked["answers"], "cohort never ran"
        # the WAL really does carry batch events, not per-answer ones
        assert report.batched_answers >= len(acked["answers"])
        for learner_id, item_id, label in acked["answers"]:
            assert_answer_recovered(
                report.lms, crashed_batch_run["exam_id"],
                learner_id, item_id, label, acked,
            )

    def test_batched_submits_are_graded(self, crashed_batch_run):
        report = recover(crashed_batch_run["wal_dir"])
        graded_ids = {
            g.learner_id
            for g in report.lms.results_for(crashed_batch_run["exam_id"])
        }
        assert graded_ids == set(crashed_batch_run["acked"]["submitted"])

    def test_recovered_server_resumes_the_partial_batches(
        self, crashed_batch_run
    ):
        from repro.server.app import ExamServer

        exam_id = crashed_batch_run["exam_id"]
        with ExamServer(
            lms=None, wal_dir=crashed_batch_run["wal_dir"]
        ) as server:
            status, body = request(
                server.host, server.port, "GET",
                f"/exams/{exam_id}/sittings/batch07",
            )
            assert status == 200
            assert body["state"] == "in_progress"
            assert len(body["answered"]) == 3
            # finish the sitting with another batch over the new server
            answers = [
                {"item_id": f"q{q:02d}", "response": "A"}
                for q in range(4, QUESTIONS + 1)
            ]
            status, body = request(
                server.host, server.port, "POST",
                f"/exams/{exam_id}/sittings/batch07/answers:batch",
                {"answers": answers, "submit": True},
            )
            assert status == 200
            assert body["submitted"] is True


class TestTornWriteFuzz:
    def test_any_truncation_of_the_tail_recovers_a_prefix(
        self, crashed_run, tmp_path
    ):
        """Directory-level kill-at-byte-N over the post-crash WAL."""
        source = crashed_run["wal_dir"]
        tail = segment_files(source)[-1]
        size = tail.stat().st_size
        acked_set = set(crashed_run["acked"]["answers"])
        recovered_counts = []
        for cut in sorted({0, 1, 7, size // 3, size // 2, size - 1, size}):
            fuzz_dir = tmp_path / f"cut{cut}"
            shutil.copytree(source, fuzz_dir)
            torn = fuzz_dir / tail.name
            torn.write_bytes(tail.read_bytes()[: size - cut])
            report = recover(fuzz_dir)  # must never raise
            lms = report.lms
            present = 0
            for learner_id, item_id, label in acked_set:
                try:
                    assert_answer_recovered(
                        lms, crashed_run["exam_id"],
                        learner_id, item_id, label,
                        crashed_run["acked"],
                    )
                    present += 1
                except Exception:
                    continue  # lost to the cut — prefix check below
            recovered_counts.append((cut, present, report.last_lsn))
        # cutting nothing recovers everything; deeper cuts recover
        # monotonically shorter prefixes, never an error
        by_cut = dict((c, n) for c, n, _ in recovered_counts)
        assert by_cut[0] == len(acked_set)
        ordered = [n for _, n, _ in sorted(recovered_counts)]
        assert ordered == sorted(ordered, reverse=True)
