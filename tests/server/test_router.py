"""Unit tests for the path-template router."""

import pytest

from repro.server.errors import ApiError
from repro.server.router import Router


def handler(ctx, params, body, query):
    return params


@pytest.fixture
def router():
    r = Router()
    r.add("GET", "/healthz", handler, "health")
    r.add("GET", "/exams", handler, "exams.list")
    r.add("POST", "/exams", handler, "exams.offer")
    r.add("GET", "/exams/{exam_id}", handler, "exams.get")
    r.add(
        "POST",
        "/exams/{exam_id}/sittings/{learner_id}/answer",
        handler,
        "answer",
    )
    return r


class TestResolve:
    def test_literal_route(self, router):
        match = router.resolve("GET", "/healthz")
        assert match.route.name == "health"
        assert match.params == {}

    def test_params_extracted(self, router):
        match = router.resolve("POST", "/exams/mid-1/sittings/amy/answer")
        assert match.params == {"exam_id": "mid-1", "learner_id": "amy"}

    def test_trailing_slash_tolerated(self, router):
        assert router.resolve("GET", "/exams/").route.name == "exams.list"

    def test_method_disambiguates(self, router):
        assert router.resolve("GET", "/exams").route.name == "exams.list"
        assert router.resolve("POST", "/exams").route.name == "exams.offer"

    def test_unknown_path_404(self, router):
        with pytest.raises(ApiError) as excinfo:
            router.resolve("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_depth_404(self, router):
        with pytest.raises(ApiError) as excinfo:
            router.resolve("GET", "/exams/mid-1/extra")
        assert excinfo.value.status == 404

    def test_known_path_wrong_method_405(self, router):
        with pytest.raises(ApiError) as excinfo:
            router.resolve("DELETE", "/exams")
        assert excinfo.value.status == 405
        assert "GET" in excinfo.value.message
        assert "POST" in excinfo.value.message

    def test_name_defaults_to_handler_name(self):
        r = Router()
        route = r.add("GET", "/x", handler)
        assert route.name == "handler"
