"""Route-by-route tests for the HTTP service (repro.server.app).

Every test talks to a real in-process :class:`ExamServer` over a
socket — the same stack ``mine-assess serve`` runs — so routing, JSON
framing, keep-alive, error rendering, backpressure, and shutdown are
all exercised end to end.
"""

import http.client
import json
import threading
import time

import pytest

from repro.bank.exambank import exam_to_record
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.lms.persistence import load_lms
from repro.server.app import ExamServer
from repro.sim.workloads import classroom_exam

EXAM_ID = "classroom-mid"
QUESTIONS = 4


class Client:
    """A minimal keep-alive JSON client for the test server."""

    def __init__(self, server):
        self._conn = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )

    def request(self, method, path, body=None, raw_body=None, headers=None):
        data = raw_body
        if body is not None:
            data = json.dumps(body).encode("utf-8")
        self._conn.request(method, path, body=data, headers=headers or {})
        response = self._conn.getresponse()
        payload = response.read()
        parsed = json.loads(payload) if payload else None
        return response.status, parsed, dict(response.getheaders())

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body=None, **kwargs):
        return self.request("POST", path, body=body, **kwargs)

    def close(self):
        self._conn.close()


def seeded_lms(learner_ids=("amy", "bob")):
    lms = Lms()
    lms.offer_exam(classroom_exam(QUESTIONS))
    for learner_id in learner_ids:
        lms.register_learner(Learner(learner_id=learner_id, name=learner_id))
        lms.enroll(learner_id, EXAM_ID)
    return lms


@pytest.fixture
def server():
    with ExamServer(seeded_lms()) as srv:
        yield srv


@pytest.fixture
def client(server):
    c = Client(server)
    yield c
    c.close()


def answer_all(client, learner_id, correct=True):
    """Answer every question in the started sitting; returns item count."""
    exam = classroom_exam(QUESTIONS)
    for item in exam.items:
        wrong = next(
            option for option in item.labels if option != item.correct_label
        )
        label = item.correct_label if correct else wrong
        status, payload, _ = client.post(
            f"/exams/{EXAM_ID}/sittings/{learner_id}/answer",
            body={"item_id": item.item_id, "response": label},
        )
        assert status == 200, payload
    return len(exam.items)


class TestMeta:
    def test_healthz(self, client):
        status, payload, headers = client.get("/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["exams_offered"] == 1
        assert payload["uptime_seconds"] >= 0
        assert headers["Content-Type"].startswith("application/json")

    def test_metrics_counts_requests(self, server, client):
        client.get("/healthz")
        client.get("/healthz")
        status, payload, _ = client.get("/metrics")
        assert status == 200
        assert payload["counters"]["server.requests{route=healthz}"] == 2
        assert "server.in_flight" in payload["gauges"]
        assert payload["in_flight"] >= 1  # this very request
        assert "frames_captured" in payload["monitor"]
        # per-route spans were recorded
        assert server.context.registry.counter(
            "server.requests", route="healthz"
        ) == 2

    def test_keep_alive_reuses_one_connection(self, client):
        # many requests through the same Client / socket
        for _ in range(5):
            status, _, headers = client.get("/healthz")
            assert status == 200
            assert headers.get("Connection", "").lower() != "close"


class TestCatalog:
    def test_list_and_get_exam(self, client):
        status, payload, _ = client.get("/exams")
        assert status == 200
        assert payload == {"exams": [EXAM_ID]}
        status, record, _ = client.get(f"/exams/{EXAM_ID}")
        assert status == 200
        assert record["exam_id"] == EXAM_ID
        assert len(record["items"]) == QUESTIONS

    def test_offer_exam_round_trips_a_record(self, client):
        record = exam_to_record(classroom_exam(3))
        record["exam_id"] = "quiz-2"
        status, payload, _ = client.post("/exams", body=record)
        assert status == 201
        assert payload == {"exam_id": "quiz-2", "items": 3}
        status, fetched, _ = client.get("/exams/quiz-2")
        assert status == 200
        assert fetched["exam_id"] == "quiz-2"

    def test_offer_duplicate_exam_409(self, client):
        record = exam_to_record(classroom_exam(QUESTIONS))
        status, payload, _ = client.post("/exams", body=record)
        assert status == 409
        assert payload["error"]["code"] == "conflict"

    def test_unknown_exam_404(self, client):
        status, payload, _ = client.get("/exams/ghost")
        assert status == 404
        assert payload["error"]["code"] == "not_found"


class TestLearners:
    def test_register_and_fetch(self, client):
        status, payload, _ = client.post(
            "/learners",
            body={"learner_id": "zoe", "name": "Zoe", "email": "z@x.io"},
        )
        assert status == 201
        assert payload == {"learner_id": "zoe"}
        status, learner, _ = client.get("/learners/zoe")
        assert status == 200
        assert learner["name"] == "Zoe"
        assert learner["email"] == "z@x.io"

    def test_duplicate_registration_409(self, client):
        status, payload, _ = client.post(
            "/learners", body={"learner_id": "amy"}
        )
        assert status == 409
        assert payload["error"]["code"] == "conflict"

    def test_enroll_and_roster(self, client):
        client.post("/learners", body={"learner_id": "zoe"})
        status, payload, _ = client.post(
            f"/exams/{EXAM_ID}/enrollments", body={"learner_id": "zoe"}
        )
        assert status == 201
        status, roster, _ = client.get(f"/exams/{EXAM_ID}/enrollments")
        assert status == 200
        assert roster["enrolled"] == ["amy", "bob", "zoe"]

    def test_roster_of_unknown_exam_404(self, client):
        status, payload, _ = client.get("/exams/ghost/enrollments")
        assert status == 404

    def test_enroll_unknown_learner_404(self, client):
        status, payload, _ = client.post(
            f"/exams/{EXAM_ID}/enrollments", body={"learner_id": "ghost"}
        )
        assert status == 404


class TestSittingLifecycle:
    def test_full_lifecycle(self, client):
        base = f"/exams/{EXAM_ID}/sittings/amy"
        status, started, _ = client.post(base + "/start")
        assert status == 201
        assert started["state"] == "in_progress"
        assert len(started["item_order"]) == QUESTIONS

        count = answer_all(client, "amy")
        status, sitting, _ = client.get(base)
        assert status == 200
        assert sorted(sitting["answered"]) == sorted(started["item_order"])

        status, payload, _ = client.post(base + "/suspend")
        assert (status, payload["state"]) == (200, "suspended")
        status, payload, _ = client.post(base + "/resume")
        assert (status, payload["state"]) == (200, "in_progress")

        status, graded, _ = client.post(base + "/submit")
        assert status == 200
        assert graded["learner_id"] == "amy"
        assert len(graded["scores"]) == count
        assert graded["total_points"] == graded["max_points"]

        status, results, _ = client.get(f"/exams/{EXAM_ID}/results")
        assert status == 200
        assert [r["learner_id"] for r in results["results"]] == ["amy"]

    def test_answer_echoes_scored_response(self, client):
        client.post(f"/exams/{EXAM_ID}/sittings/amy/start")
        exam = classroom_exam(QUESTIONS)
        item = exam.items[0]
        status, payload, _ = client.post(
            f"/exams/{EXAM_ID}/sittings/amy/answer",
            body={"item_id": item.item_id, "response": item.labels[0]},
        )
        assert status == 200
        assert payload["item_id"] == item.item_id
        assert payload["scored"]["selected"] == item.labels[0]
        assert payload["scored"]["correct"] is True

    def test_start_twice_409_invalid_state(self, client):
        base = f"/exams/{EXAM_ID}/sittings/amy"
        client.post(base + "/start")
        status, payload, _ = client.post(base + "/start")
        assert status == 409
        assert payload["error"]["code"] == "invalid_state"

    def test_double_submit_409(self, client):
        base = f"/exams/{EXAM_ID}/sittings/amy"
        client.post(base + "/start")
        answer_all(client, "amy")
        status, _, _ = client.post(base + "/submit")
        assert status == 200
        status, payload, _ = client.post(base + "/submit")
        assert status == 409
        assert payload["error"]["code"] == "invalid_state"

    def test_answer_without_start_404(self, client):
        status, payload, _ = client.post(
            f"/exams/{EXAM_ID}/sittings/amy/answer",
            body={"item_id": "q1", "response": "A"},
        )
        assert status == 404

    def test_answer_unknown_item_400(self, client):
        client.post(f"/exams/{EXAM_ID}/sittings/amy/start")
        status, payload, _ = client.post(
            f"/exams/{EXAM_ID}/sittings/amy/answer",
            body={"item_id": "ghost", "response": "A"},
        )
        assert status in (400, 404), payload


class TestAnalysisRoutes:
    def seed_results(self, client, count=8):
        for index in range(count):
            learner_id = f"s{index}"
            client.post("/learners", body={"learner_id": learner_id})
            client.post(
                f"/exams/{EXAM_ID}/enrollments",
                body={"learner_id": learner_id},
            )
            client.post(f"/exams/{EXAM_ID}/sittings/{learner_id}/start")
            answer_all(client, learner_id, correct=(index % 2 == 0))
            client.post(f"/exams/{EXAM_ID}/sittings/{learner_id}/submit")

    def test_analysis_route(self, server, client):
        self.seed_results(client)
        status, payload, _ = client.get(f"/exams/{EXAM_ID}/analysis")
        assert status == 200
        assert len(payload["questions"]) == QUESTIONS
        assert set(payload["scores"]) == {f"s{i}" for i in range(8)}
        # the wire rendering matches the in-process analysis
        from repro.server.serialize import analysis_to_dict

        assert payload == analysis_to_dict(server.lms.live_analysis(EXAM_ID))

    def test_analysis_empty_cohort_422(self, client):
        status, payload, _ = client.get(f"/exams/{EXAM_ID}/analysis")
        assert status == 422
        assert payload["error"]["code"] == "unprocessable"

    def test_report_route(self, client):
        self.seed_results(client)
        status, payload, _ = client.get(f"/exams/{EXAM_ID}/report")
        assert status == 200
        assert "title" in payload
        assert len(payload["questions"]) == QUESTIONS

    def test_monitor_metrics_route(self, client):
        self.seed_results(client)
        status, payload, _ = client.get("/monitor/metrics")
        assert status == 200
        assert payload["frames_captured"] >= 2  # one per start


class TestBadRequests:
    def test_unknown_route_404(self, client):
        status, payload, _ = client.get("/nope/nothing")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_method_405(self, client):
        status, payload, _ = client.request("DELETE", "/exams")
        assert status == 405
        assert "GET" in payload["error"]["message"]

    def test_malformed_json_400(self, client):
        status, payload, _ = client.post(
            "/learners", raw_body=b"{not json", headers={"Content-Length": "9"}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "not valid JSON" in payload["error"]["message"]

    def test_non_object_body_400(self, client):
        status, payload, _ = client.post("/learners", body=[1, 2, 3])
        assert status == 400
        assert "JSON object" in payload["error"]["message"]

    def test_missing_required_field_400(self, client):
        status, payload, _ = client.post("/learners", body={"name": "x"})
        assert status == 400
        assert "learner_id" in payload["error"]["message"]

    def test_unknown_field_400(self, client):
        status, payload, _ = client.post(
            "/learners", body={"learner_id": "x", "learner": "typo"}
        )
        assert status == 400
        assert "unknown field" in payload["error"]["message"]

    def test_mistyped_field_400(self, client):
        status, payload, _ = client.post("/learners", body={"learner_id": 7})
        assert status == 400
        assert "must be str" in payload["error"]["message"]

    def test_oversized_body_413(self):
        with ExamServer(seeded_lms(), max_body_bytes=64) as server:
            client = Client(server)
            try:
                status, payload, _ = client.post(
                    "/learners", body={"learner_id": "x" * 200}
                )
                assert status == 413
                assert payload["error"]["code"] == "payload_too_large"
            finally:
                client.close()

    def test_internal_errors_are_opaque_500(self, server, client):
        # sabotage one route: the client must never see the detail
        server.lms.offered_exams = lambda: 1 / 0
        status, payload, _ = client.get("/healthz")
        assert status == 500
        assert payload["error"] == {
            "code": "internal_error",
            "message": "internal server error",
        }
        assert server.context.registry.counter(
            "server.internal_errors", type="ZeroDivisionError"
        ) == 1


class TestBackpressure:
    def test_503_with_retry_after_when_saturated(self):
        with ExamServer(seeded_lms(), max_in_flight=1) as server:
            client = Client(server)
            try:
                assert server.in_flight.try_acquire()  # eat the only slot
                try:
                    status, payload, headers = client.get("/healthz")
                    assert status == 503
                    assert payload["error"]["code"] == "overloaded"
                    assert headers["Retry-After"] == "1"
                    assert server.context.registry.counter(
                        "server.rejected"
                    ) == 1
                finally:
                    server.in_flight.release()
                # capacity back: the same connection works again
                status, _, _ = client.get("/healthz")
                assert status == 200
            finally:
                client.close()

    def test_rejected_requests_do_not_leak_slots(self):
        with ExamServer(seeded_lms(), max_in_flight=1) as server:
            client = Client(server)
            try:
                server.in_flight.try_acquire()
                for _ in range(3):
                    status, _, _ = client.get("/healthz")
                    assert status == 503
                server.in_flight.release()
                assert server.in_flight.current() == 0
                status, _, _ = client.get("/healthz")
                assert status == 200
            finally:
                client.close()


class TestGracefulShutdown:
    def test_shutdown_drains_in_flight_requests(self):
        server = ExamServer(seeded_lms()).start()
        client = Client(server)
        outcome = {}
        try:
            client.post(f"/exams/{EXAM_ID}/sittings/amy/start")
            # stall the LMS: the next request blocks inside its handler
            server.lms.lock.acquire()

            def stalled_request():
                slow = Client(server)
                try:
                    outcome["response"] = slow.get(
                        f"/exams/{EXAM_ID}/sittings/amy"
                    )
                finally:
                    slow.close()

            worker = threading.Thread(target=stalled_request)
            worker.start()
            deadline = time.time() + 5
            while server.in_flight.current() == 0:
                assert time.time() < deadline, "request never went in flight"
                time.sleep(0.005)

            shutter = threading.Thread(
                target=lambda: outcome.update(
                    drained=server.shutdown(drain_timeout=10)
                )
            )
            shutter.start()
            time.sleep(0.15)
            # shutdown is waiting on the drain, not killing the request
            assert shutter.is_alive()
            server.lms.lock.release()
            shutter.join(timeout=10)
            worker.join(timeout=10)
            assert not shutter.is_alive()
            assert outcome["drained"] is True
            status, payload, _ = outcome["response"]
            assert status == 200  # the in-flight request completed
            assert payload["learner_id"] == "amy"
        finally:
            client.close()
            server.shutdown()

    def test_shutdown_reports_failed_drain(self):
        server = ExamServer(seeded_lms()).start()
        try:
            server.in_flight.try_acquire()  # a request that never finishes
            assert server.shutdown(drain_timeout=0.1) is False
        finally:
            server.in_flight.release()

    def test_shutdown_twice_is_idempotent(self):
        server = ExamServer(seeded_lms()).start()
        assert server.shutdown() is True
        assert server.shutdown() is True

    def test_start_twice_raises(self):
        server = ExamServer(seeded_lms()).start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.shutdown()


class TestSnapshotting:
    def test_admin_snapshot_writes_state(self, tmp_path):
        path = tmp_path / "state.json"
        with ExamServer(seeded_lms(), snapshot_path=path) as server:
            client = Client(server)
            try:
                status, payload, _ = client.post("/admin/snapshot")
                assert status == 200
                assert payload["snapshot"] == str(path)
            finally:
                client.close()
        restored = load_lms(path)
        assert restored.offered_exams() == [EXAM_ID]
        assert sorted(restored.learners.ids()) == ["amy", "bob"]

    def test_admin_snapshot_without_path_409(self, client):
        status, payload, _ = client.post("/admin/snapshot")
        assert status == 409
        assert payload["error"]["code"] == "invalid_state"

    def test_shutdown_takes_final_snapshot(self, tmp_path):
        path = tmp_path / "state.json"
        server = ExamServer(seeded_lms(), snapshot_path=path).start()
        client = Client(server)
        try:
            client.post("/learners", body={"learner_id": "zoe"})
        finally:
            client.close()
        server.shutdown()
        assert "zoe" in load_lms(path).learners.ids()

    def test_periodic_snapshots(self, tmp_path):
        path = tmp_path / "state.json"
        server = ExamServer(
            seeded_lms(),
            snapshot_path=path,
            snapshot_interval_seconds=0.05,
        ).start()
        try:
            deadline = time.time() + 5
            while not path.exists():
                assert time.time() < deadline, "no periodic snapshot"
                time.sleep(0.01)
        finally:
            server.shutdown()
        assert load_lms(path).offered_exams() == [EXAM_ID]
