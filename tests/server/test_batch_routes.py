"""The batch ingestion routes (``POST .../answers:batch``).

Covers the contract the loadgen and differential suites rely on:
all-or-nothing application with the failing index named in the 4xx,
oversized batches rejected 413 before touching the LMS, backpressure
accounting one in-flight slot per *request* (not per answer), and the
``BodySpec`` nested-element validation that keeps malformed batch
payloads in the 4xx taxonomy instead of opaque 500s.
"""

import pytest

from test_app import EXAM_ID, QUESTIONS, Client, seeded_lms

from repro.lms.lms import Lms
from repro.server.app import ExamServer
from repro.sim.workloads import classroom_exam
from repro.store import read_records


@pytest.fixture
def server():
    with ExamServer(seeded_lms()) as srv:
        yield srv


@pytest.fixture
def client(server):
    c = Client(server)
    yield c
    c.close()


def batch_body(count=QUESTIONS, response="A", submit=False):
    exam = classroom_exam(QUESTIONS)
    answers = [
        {
            "item_id": item.item_id,
            "response": item.correct_label if response == "A" else response,
        }
        for item in exam.items[:count]
    ]
    body = {"answers": answers}
    if submit:
        body["submit"] = True
    return body


class TestBatchHappyPath:
    def test_batch_answers_and_submit_in_one_request(self, client):
        base = f"/exams/{EXAM_ID}/sittings/amy"
        client.post(base + "/start")
        status, payload, _ = client.post(
            base + "/answers:batch", body=batch_body(submit=True)
        )
        assert status == 200, payload
        assert payload["count"] == QUESTIONS
        assert payload["submitted"] is True
        assert len(payload["scored"]) == QUESTIONS
        assert all(e["scored"]["correct"] for e in payload["scored"])
        assert payload["graded"]["total_points"] == payload["graded"][
            "max_points"
        ]

    def test_batch_without_submit_leaves_sitting_open(self, client):
        base = f"/exams/{EXAM_ID}/sittings/amy"
        client.post(base + "/start")
        status, payload, _ = client.post(
            base + "/answers:batch", body=batch_body(count=2)
        )
        assert status == 200
        assert payload["submitted"] is False
        status, sitting, _ = client.get(base)
        assert status == 200
        assert len(sitting["answered"]) == 2

    def test_batch_equals_singles_in_the_analysis(self, client):
        for learner_id, use_batch in (("amy", True), ("bob", False)):
            base = f"/exams/{EXAM_ID}/sittings/{learner_id}"
            client.post(base + "/start")
            if use_batch:
                client.post(
                    base + "/answers:batch", body=batch_body(submit=True)
                )
            else:
                for entry in batch_body()["answers"]:
                    client.post(base + "/answer", body=entry)
                client.post(base + "/submit")
        status, results, _ = client.get(f"/exams/{EXAM_ID}/results")
        assert status == 200
        by_learner = {r["learner_id"]: r for r in results["results"]}
        assert by_learner["amy"]["total_points"] == by_learner["bob"][
            "total_points"
        ]


class TestBatchAllOrNothing:
    def test_invalid_answer_rejects_whole_batch_naming_the_index(
        self, client
    ):
        base = f"/exams/{EXAM_ID}/sittings/amy"
        client.post(base + "/start")
        body = batch_body()
        body["answers"][2]["item_id"] = "ghost"
        status, payload, _ = client.post(base + "/answers:batch", body=body)
        assert status in (400, 404)
        assert "answers[2]" in payload["error"]["message"]
        assert "ghost" in payload["error"]["message"]
        # nothing was applied
        status, sitting, _ = client.get(base)
        assert sitting["answered"] == []

    def test_failed_batch_writes_nothing_to_the_journal(self, tmp_path):
        with ExamServer(seeded_lms(), wal_dir=tmp_path) as server:
            client = Client(server)
            try:
                base = f"/exams/{EXAM_ID}/sittings/amy"
                client.post(base + "/start")
                before = server.journal.last_lsn
                body = batch_body()
                body["answers"][0]["response"] = "!"
                status, payload, _ = client.post(
                    base + "/answers:batch", body=body
                )
                assert 400 <= status < 500
                server.journal.sync()
                assert server.journal.last_lsn == before
                types = [r.type for r in read_records(tmp_path)]
                assert "answers" not in types
            finally:
                client.close()

    def test_batch_on_unstarted_sitting_404(self, client):
        status, payload, _ = client.post(
            f"/exams/{EXAM_ID}/sittings/amy/answers:batch",
            body=batch_body(count=1),
        )
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_empty_batch_400(self, client):
        base = f"/exams/{EXAM_ID}/sittings/amy"
        client.post(base + "/start")
        status, payload, _ = client.post(
            base + "/answers:batch", body={"answers": []}
        )
        assert status == 400
        assert "empty" in payload["error"]["message"]


class TestBatchLimits:
    def test_oversized_batch_413(self):
        with ExamServer(seeded_lms(), max_batch_answers=3) as server:
            client = Client(server)
            try:
                base = f"/exams/{EXAM_ID}/sittings/amy"
                client.post(base + "/start")
                status, payload, _ = client.post(
                    base + "/answers:batch", body=batch_body(count=4)
                )
                assert status == 413
                assert payload["error"]["code"] == "payload_too_large"
                # rejected before the LMS saw anything
                status, sitting, _ = client.get(base)
                assert sitting["answered"] == []
            finally:
                client.close()

    def test_batch_at_the_limit_is_accepted(self):
        with ExamServer(seeded_lms(), max_batch_answers=QUESTIONS) as server:
            client = Client(server)
            try:
                base = f"/exams/{EXAM_ID}/sittings/amy"
                client.post(base + "/start")
                status, payload, _ = client.post(
                    base + "/answers:batch", body=batch_body()
                )
                assert status == 200
                assert payload["count"] == QUESTIONS
            finally:
                client.close()

    def test_backpressure_counts_one_slot_per_request(self):
        """A K-answer batch consumes exactly one in-flight slot: with
        max_in_flight=1 and a free slot it succeeds outright; with the
        slot taken it is rejected 503 exactly once, not once per
        answer."""
        with ExamServer(seeded_lms(), max_in_flight=1) as server:
            client = Client(server)
            try:
                base = f"/exams/{EXAM_ID}/sittings/amy"
                client.post(base + "/start")
                # the handler releases its slot *after* flushing the
                # response we just read — wait for that, don't race it
                assert server.in_flight.wait_idle(timeout=5.0)
                assert server.in_flight.try_acquire()
                try:
                    status, payload, _ = client.post(
                        base + "/answers:batch", body=batch_body()
                    )
                    assert status == 503
                    assert server.context.registry.counter(
                        "server.rejected"
                    ) == 1
                finally:
                    server.in_flight.release()
                status, payload, _ = client.post(
                    base + "/answers:batch", body=batch_body()
                )
                assert status == 200
                assert payload["count"] == QUESTIONS
            finally:
                client.close()


class TestNestedBodyValidation:
    """Regression: malformed batch payloads used to surface as opaque
    500s; BodySpec element validation now yields 400s with a JSON
    pointer to the offending element."""

    def start(self, client):
        client.post(f"/exams/{EXAM_ID}/sittings/amy/start")
        return f"/exams/{EXAM_ID}/sittings/amy/answers:batch"

    def test_non_dict_element_400_with_pointer(self, client):
        path = self.start(client)
        status, payload, _ = client.post(
            path, body={"answers": [{"item_id": "q1", "response": "A"}, 7]}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "/answers/1" in payload["error"]["message"]

    def test_element_missing_field_400_with_pointer(self, client):
        path = self.start(client)
        status, payload, _ = client.post(
            path, body={"answers": [{"item_id": "q1"}]}
        )
        assert status == 400
        assert "response" in payload["error"]["message"]
        assert "/answers/0" in payload["error"]["message"]

    def test_element_mistyped_field_400_with_pointer(self, client):
        path = self.start(client)
        status, payload, _ = client.post(
            path, body={"answers": [{"item_id": 5, "response": "A"}]}
        )
        assert status == 400
        assert "must be str" in payload["error"]["message"]
        assert "/answers/0" in payload["error"]["message"]

    def test_element_unknown_field_400_with_pointer(self, client):
        path = self.start(client)
        status, payload, _ = client.post(
            path,
            body={
                "answers": [
                    {"item_id": "q1", "response": "A", "respnse": "typo"}
                ]
            },
        )
        assert status == 400
        assert "unknown field" in payload["error"]["message"]
        assert "/answers/0" in payload["error"]["message"]

    def test_top_level_messages_unchanged(self, client):
        # the pointer suffix only appears for nested elements
        path = self.start(client)
        status, payload, _ = client.post(path, body={})
        assert status == 400
        assert "answers" in payload["error"]["message"]
        assert " at /" not in payload["error"]["message"]


class TestBatchDurability:
    def test_batched_sittings_survive_recovery(self, tmp_path):
        from repro.store import recover, state_fingerprint

        with ExamServer(seeded_lms(), wal_dir=tmp_path) as server:
            client = Client(server)
            try:
                base = f"/exams/{EXAM_ID}/sittings/amy"
                client.post(base + "/start")
                status, _, _ = client.post(
                    base + "/answers:batch", body=batch_body(submit=True)
                )
                assert status == 200
                server.journal.sync()
                live = state_fingerprint(server.lms)
            finally:
                client.close()
        report = recover(tmp_path)
        assert state_fingerprint(report.lms) == live
