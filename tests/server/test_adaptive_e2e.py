"""Adaptive delivery end to end: HTTP sitting loop, policy enforcement,
WAL recovery, the calibration loop, and ``loadgen --adaptive``.

The tentpole contract under test: an adaptive sitting driven entirely
over HTTP (`next-item` → `answer` → … → `submit`) journals every step,
recovers bit-identically (item sequence AND theta trajectory are part of
the state fingerprint), and a ``mine-assess calibrate`` snapshot is
picked up by a restarted server.
"""

import http.client
import json

import pytest

from repro.bank.exambank import exam_to_record
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.server.app import ExamServer
from repro.server.loadgen import LoadgenError, run_loadgen
from repro.sim.workloads import classroom_adaptive_exam, classroom_exam
from repro.store import recover
from repro.store.recovery import state_fingerprint

EXAM_ID = "classroom-mid"
QUESTIONS = 8
MAX_ITEMS = 4


class Client:
    """A minimal keep-alive JSON client for the test server."""

    def __init__(self, server):
        self._conn = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )

    def request(self, method, path, body=None):
        data = json.dumps(body).encode("utf-8") if body is not None else None
        self._conn.request(method, path, body=data)
        response = self._conn.getresponse()
        payload = response.read()
        return response.status, json.loads(payload) if payload else None

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body=None):
        return self.request("POST", path, body=body)

    def close(self):
        self._conn.close()


def setup_over_http(client, learner_ids=("amy", "bob")):
    """Offer the adaptive exam and enroll learners *through the API*, so
    a WAL-backed server journals the whole world and can replay it."""
    exam = classroom_adaptive_exam(QUESTIONS, max_items=MAX_ITEMS)
    status, payload = client.post("/exams", body=exam_to_record(exam))
    assert status == 201, payload
    for learner_id in learner_ids:
        status, _ = client.post("/learners", body={"learner_id": learner_id})
        assert status == 201
        status, _ = client.post(
            f"/exams/{EXAM_ID}/enrollments", body={"learner_id": learner_id}
        )
        assert status == 201


def drive_sitting(client, learner_id, correct=True):
    """Run one adaptive sitting over HTTP; returns (sequence, final)."""
    labels = {}
    for item in classroom_exam(QUESTIONS).items:
        wrong = next(
            option for option in item.labels if option != item.correct_label
        )
        labels[item.item_id] = item.correct_label if correct else wrong
    status, payload = client.post(
        f"/exams/{EXAM_ID}/sittings/{learner_id}/start"
    )
    assert status == 201, payload
    sequence = []
    for _ in range(QUESTIONS + 1):
        status, payload = client.get(
            f"/exams/{EXAM_ID}/sittings/{learner_id}/next-item"
        )
        assert status == 200, payload
        if payload["done"]:
            break
        item_id = payload["item_id"]
        sequence.append(item_id)
        status, answer_payload = client.post(
            f"/exams/{EXAM_ID}/sittings/{learner_id}/answer",
            body={"item_id": item_id, "response": labels[item_id]},
        )
        assert status == 200, answer_payload
    else:
        raise AssertionError("sitting never reported done")
    return sequence, payload


@pytest.fixture
def wal_dir(tmp_path):
    return tmp_path / "wal"


@pytest.fixture
def server(wal_dir):
    with ExamServer(wal_dir=wal_dir, fsync="never") as srv:
        yield srv


@pytest.fixture
def client(server):
    c = Client(server)
    setup_over_http(c)
    yield c
    c.close()


class TestAdaptiveSittingOverHttp:
    def test_full_sitting_respects_policy(self, client):
        sequence, final = drive_sitting(client, "amy")
        assert len(sequence) == MAX_ITEMS
        assert len(set(sequence)) == MAX_ITEMS
        assert final["reason"] in ("max_items", "se_target")
        assert final["theta"] is not None
        status, graded = client.post(
            f"/exams/{EXAM_ID}/sittings/amy/submit"
        )
        assert status == 200
        assert graded["total_points"] == float(len(sequence))
        # unserved items grade as no-selection, never as a guess
        unserved = [
            item_id for item_id, score in graded["scores"].items()
            if score["selected"] is None
        ]
        assert len(unserved) == QUESTIONS - len(sequence)

    def test_next_item_carries_ability_state(self, client):
        client.post(f"/exams/{EXAM_ID}/sittings/amy/start")
        status, first = client.get(
            f"/exams/{EXAM_ID}/sittings/amy/next-item"
        )
        assert status == 200
        assert first["step"] == 0
        assert first["table_version"] == 0
        assert first["administered"] == []
        client.post(
            f"/exams/{EXAM_ID}/sittings/amy/answer",
            body={"item_id": first["item_id"], "response": "A"},
        )
        status, second = client.get(
            f"/exams/{EXAM_ID}/sittings/amy/next-item"
        )
        assert second["step"] == 1
        assert second["administered"] == [first["item_id"]]
        assert second["theta"] != first["theta"]

    def test_out_of_policy_answer_is_409(self, client):
        client.post(f"/exams/{EXAM_ID}/sittings/amy/start")
        status, chosen = client.get(
            f"/exams/{EXAM_ID}/sittings/amy/next-item"
        )
        off_policy = next(
            f"q{index:02d}" for index in range(1, QUESTIONS + 1)
            if f"q{index:02d}" != chosen["item_id"]
        )
        status, payload = client.post(
            f"/exams/{EXAM_ID}/sittings/amy/answer",
            body={"item_id": off_policy, "response": "A"},
        )
        assert status == 409
        assert payload["error"]["code"] == "invalid_state"
        assert chosen["item_id"] in payload["error"]["message"]
        # the policy-chosen item is still answerable afterwards
        status, _ = client.post(
            f"/exams/{EXAM_ID}/sittings/amy/answer",
            body={"item_id": chosen["item_id"], "response": "A"},
        )
        assert status == 200

    def test_batch_answers_rejected_for_adaptive(self, client):
        client.post(f"/exams/{EXAM_ID}/sittings/amy/start")
        status, payload = client.post(
            f"/exams/{EXAM_ID}/sittings/amy/answers:batch",
            body={"answers": [{"item_id": "q01", "response": "A"}]},
        )
        assert status == 409
        assert payload["error"]["code"] == "invalid_state"
        assert "one answer at a time" in payload["error"]["message"]

    def test_next_item_on_fixed_exam_is_409(self):
        lms = Lms()
        lms.offer_exam(classroom_exam(4))
        lms.register_learner(Learner(learner_id="amy", name="amy"))
        lms.enroll("amy", EXAM_ID)
        with ExamServer(lms) as server:
            fixed = Client(server)
            fixed.post(f"/exams/{EXAM_ID}/sittings/amy/start")
            status, payload = fixed.get(
                f"/exams/{EXAM_ID}/sittings/amy/next-item"
            )
            fixed.close()
        assert status == 409
        assert payload["error"]["code"] == "invalid_state"
        assert "not adaptive" in payload["error"]["message"]


class TestAdaptiveRecovery:
    def test_recovered_state_is_bit_identical(self, server, client, wal_dir):
        drive_sitting(client, "amy", correct=True)
        # bob's sitting is mid-flight at "crash" time
        client.post(f"/exams/{EXAM_ID}/sittings/bob/start")
        _, chosen = client.get(f"/exams/{EXAM_ID}/sittings/bob/next-item")
        client.post(
            f"/exams/{EXAM_ID}/sittings/bob/answer",
            body={"item_id": chosen["item_id"], "response": "B"},
        )
        server.journal.sync()
        report = recover(wal_dir)
        assert state_fingerprint(report.lms) == state_fingerprint(server.lms)
        status = report.lms.next_item("bob", EXAM_ID)
        assert status["step"] == 1
        assert status["administered"] == [chosen["item_id"]]


class TestCalibrationLoop:
    def run_cli(self, *argv):
        from repro.cli import main

        return main([str(arg) for arg in argv])

    def submitted_cohort(self, wal_dir):
        """A WAL with two submitted adaptive sittings."""
        with ExamServer(wal_dir=wal_dir, fsync="never") as srv:
            client = Client(srv)
            setup_over_http(client)
            drive_sitting(client, "amy", correct=True)
            client.post(f"/exams/{EXAM_ID}/sittings/amy/submit")
            drive_sitting(client, "bob", correct=False)
            client.post(f"/exams/{EXAM_ID}/sittings/bob/submit")
            client.close()

    def test_calibrate_snapshot_survives_restart(self, wal_dir):
        self.submitted_cohort(wal_dir)
        assert self.run_cli("calibrate", wal_dir, "--min-sittings", "2") == 0
        snapshots = list((wal_dir / "calibration").glob("params-*.json"))
        assert len(snapshots) == 1
        # a restarted server hot-swaps the fitted pool at boot: a fresh
        # sitting selects from the calibrated table, version 1
        with ExamServer(wal_dir=wal_dir, fsync="never") as srv:
            assert srv.lms.calibration_version(EXAM_ID) == 1
            srv.lms.register_learner(Learner(learner_id="cara", name="cara"))
            srv.lms.enroll("cara", EXAM_ID)
            srv.lms.start_exam("cara", EXAM_ID)
            status = srv.lms.next_item("cara", EXAM_ID)
            assert status["table_version"] == 1
            assert status["item_id"] is not None

    def test_boot_does_not_reapply_journaled_version(self, wal_dir):
        self.submitted_cohort(wal_dir)
        assert self.run_cli("calibrate", wal_dir, "--min-sittings", "2") == 0
        # first restart applies v1 and journals it; the second must see
        # the journaled version and skip the snapshot, not re-apply it
        for _ in range(2):
            with ExamServer(wal_dir=wal_dir, fsync="never") as srv:
                assert srv.lms.calibration_version(EXAM_ID) == 1
                admin = Client(srv)
                status, payload = admin.post("/admin/calibration/reload")
                admin.close()
                assert status == 200
                assert payload["applied"] == []

    def test_reload_refused_while_sittings_open(self, server, client, wal_dir):
        from repro.adaptive.online import write_calibration_snapshot

        client.post(f"/exams/{EXAM_ID}/sittings/amy/start")
        exam = server.lms.exam(EXAM_ID)
        pool = exam.adaptive.pool_for(exam)
        write_calibration_snapshot(wal_dir / "calibration", EXAM_ID, 1, pool)
        status, payload = client.post("/admin/calibration/reload")
        assert status == 200
        assert payload["applied"] == []
        assert len(payload["skipped"]) == 1
        assert "open" in payload["skipped"][0]["reason"]
        # once the sitting closes, the same reload applies cleanly
        _, chosen = client.get(f"/exams/{EXAM_ID}/sittings/amy/next-item")
        client.post(
            f"/exams/{EXAM_ID}/sittings/amy/answer",
            body={"item_id": chosen["item_id"], "response": "A"},
        )
        client.post(f"/exams/{EXAM_ID}/sittings/amy/submit")
        status, payload = client.post("/admin/calibration/reload")
        assert status == 200
        assert [entry["version"] for entry in payload["applied"]] == [1]

    def test_calibrate_needs_enough_sittings(self, wal_dir):
        self.submitted_cohort(wal_dir)
        assert self.run_cli("calibrate", wal_dir, "--min-sittings", "5") == 1
        assert not list((wal_dir / "calibration").glob("params-*.json"))


class TestAdaptiveLoadgen:
    def run(self, srv, learners=4, seed=5):
        return run_loadgen(
            srv.url, learners=learners, questions=QUESTIONS,
            seed=seed, adaptive=True,
        )

    def test_adaptive_report(self):
        with ExamServer(Lms()) as srv:
            report = self.run(srv, learners=6, seed=13)
        assert report.adaptive is True
        assert report.errors == 0
        assert len(report.item_sequences) == 6
        policy_cap = classroom_adaptive_exam(QUESTIONS).adaptive.max_items
        for sequence in report.item_sequences.values():
            assert 0 < len(sequence) <= policy_cap
        assert report.to_dict()["adaptive"] is True

    def test_adaptive_is_deterministic_per_seed(self):
        with ExamServer(Lms()) as srv:
            first = self.run(srv)
        with ExamServer(Lms()) as srv:
            again = self.run(srv)
        assert first.item_sequences == again.item_sequences

    def test_adaptive_rejects_batch_mode(self):
        with ExamServer(Lms()) as srv:
            with pytest.raises(LoadgenError, match="batch"):
                run_loadgen(
                    srv.url, learners=2, questions=QUESTIONS,
                    adaptive=True, batch=4,
                )

    def test_adaptive_requires_adaptive_exam(self):
        with ExamServer(Lms()) as srv:
            with pytest.raises(LoadgenError, match="adaptive"):
                run_loadgen(
                    srv.url, learners=2, questions=QUESTIONS,
                    adaptive=True, exam=classroom_exam(QUESTIONS),
                )
