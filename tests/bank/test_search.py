"""Tests for problem search (repro.bank.search)."""

import pytest

from repro.core.cognition import CognitionLevel
from repro.core.errors import BankError
from repro.core.metadata import QuestionStyle
from repro.bank.itembank import ItemBank
from repro.bank.search import Query, find_similar, search
from repro.items.choice import MultipleChoiceItem
from repro.items.essay import EssayItem
from repro.items.truefalse import TrueFalseItem


def populated_bank():
    bank = ItemBank()
    bank.add(
        MultipleChoiceItem.build(
            "mc-sort-1",
            "Which sort algorithm is stable?",
            ["mergesort", "quicksort", "heapsort", "selection sort"],
            correct_index=0,
            subject="sorting",
            cognition_level=CognitionLevel.KNOWLEDGE,
        )
    )
    item = MultipleChoiceItem.build(
        "mc-sort-2",
        "What is the worst-case complexity of quicksort?",
        ["O(n^2)", "O(n log n)", "O(n)", "O(log n)"],
        correct_index=0,
        subject="sorting",
        cognition_level=CognitionLevel.COMPREHENSION,
    )
    item.metadata.assessment.individual_test.item_difficulty_index = 0.45
    bank.add(item)
    bank.add(
        TrueFalseItem(
            item_id="tf-hash-1",
            question="A hash table guarantees O(1) worst-case lookup.",
            correct_value=False,
            subject="hashing",
            cognition_level=CognitionLevel.COMPREHENSION,
        )
    )
    bank.add(
        EssayItem(
            item_id="essay-hash-1",
            question="Explain how open addressing resolves hash collisions.",
            subject="hashing",
            cognition_level=CognitionLevel.ANALYSIS,
        )
    )
    return bank


class TestQueryFilters:
    def test_empty_query_matches_everything(self):
        bank = populated_bank()
        assert len(search(bank, Query())) == len(bank)

    def test_by_subject(self):
        results = search(populated_bank(), Query().with_subject("hashing"))
        assert {item.item_id for item in results} == {
            "tf-hash-1",
            "essay-hash-1",
        }

    def test_by_style(self):
        results = search(
            populated_bank(), Query().with_style(QuestionStyle.MULTIPLE_CHOICE)
        )
        assert {item.item_id for item in results} == {"mc-sort-1", "mc-sort-2"}

    def test_by_cognition_level(self):
        results = search(
            populated_bank(),
            Query().with_cognition_level(CognitionLevel.COMPREHENSION),
        )
        assert {item.item_id for item in results} == {"mc-sort-2", "tf-hash-1"}

    def test_by_difficulty_band(self):
        results = search(populated_bank(), Query().with_difficulty(0.4, 0.5))
        assert [item.item_id for item in results] == ["mc-sort-2"]

    def test_difficulty_excludes_unrated_items(self):
        results = search(populated_bank(), Query().with_difficulty(0.0, 1.0))
        assert [item.item_id for item in results] == ["mc-sort-2"]

    def test_bad_difficulty_band_rejected(self):
        with pytest.raises(BankError):
            Query().with_difficulty(0.8, 0.2)
        with pytest.raises(BankError):
            Query().with_difficulty(-0.1, 0.5)

    def test_by_keywords(self):
        results = search(populated_bank(), Query().with_keywords("quicksort"))
        assert [item.item_id for item in results] == ["mc-sort-2"]

    def test_keywords_case_insensitive(self):
        results = search(populated_bank(), Query().with_keywords("QUICKSORT"))
        assert len(results) == 1

    def test_keywords_search_hint_too(self):
        bank = ItemBank()
        bank.add(
            TrueFalseItem(
                item_id="t1",
                question="Water boils at 100C at sea level.",
                hint="remember standard pressure",
            )
        )
        assert search(bank, Query().with_keywords("pressure"))

    def test_conjunction(self):
        query = (
            Query()
            .with_subject("sorting")
            .with_cognition_level(CognitionLevel.COMPREHENSION)
        )
        results = search(populated_bank(), query)
        assert [item.item_id for item in results] == ["mc-sort-2"]

    def test_query_immutable(self):
        base = Query()
        narrowed = base.with_subject("sorting")
        assert base.subject is None
        assert narrowed.subject == "sorting"


class TestFindSimilar:
    def test_same_subject_ranked_first(self):
        bank = populated_bank()
        reference = bank.get("mc-sort-1")
        similar = find_similar(bank, reference)
        assert similar[0].subject == "sorting"

    def test_reference_item_excluded(self):
        bank = populated_bank()
        reference = bank.get("mc-sort-1")
        assert all(item.item_id != "mc-sort-1" for item in find_similar(bank, reference))

    def test_limit_respected(self):
        bank = populated_bank()
        similar = find_similar(bank, bank.get("mc-sort-1"), limit=1)
        assert len(similar) == 1

    def test_bad_limit_rejected(self):
        bank = populated_bank()
        with pytest.raises(BankError):
            find_similar(bank, bank.get("mc-sort-1"), limit=0)

    def test_word_overlap_contributes(self):
        bank = ItemBank()
        bank.add(
            TrueFalseItem(item_id="a", question="Quicksort uses a pivot element.")
        )
        bank.add(
            TrueFalseItem(item_id="b", question="Mergesort splits the array.")
        )
        reference = TrueFalseItem(
            item_id="ref", question="Quicksort chooses a pivot."
        )
        similar = find_similar(bank, reference)
        assert similar[0].item_id == "a"
