"""Tests for bank persistence (repro.bank.storage, repro.bank.exambank)."""

import json

import pytest

from repro.core.cognition import CognitionLevel
from repro.core.errors import BankError
from repro.core.metadata import DisplayType
from repro.bank.exambank import (
    ExamBank,
    exam_from_record,
    exam_to_record,
    load_exams,
    save_exams,
)
from repro.bank.itembank import ItemBank
from repro.bank.storage import (
    item_from_record,
    item_to_record,
    load_bank,
    save_bank,
)
from repro.exams.authoring import ExamBuilder
from repro.items.base import Picture
from repro.items.choice import MultipleChoiceItem
from repro.items.completion import CompletionItem
from repro.items.essay import EssayItem
from repro.items.matching import MatchItem
from repro.items.questionnaire import QuestionnaireItem
from repro.items.truefalse import TrueFalseItem


def all_style_items():
    return [
        MultipleChoiceItem.build(
            "mc1",
            "Pick the stable sort.",
            ["mergesort", "quicksort"],
            correct_index=0,
            subject="sorting",
            cognition_level=CognitionLevel.KNOWLEDGE,
        ),
        TrueFalseItem(
            item_id="tf1",
            question="Heapsort is stable.",
            correct_value=False,
            subject="sorting",
        ),
        EssayItem(
            item_id="e1",
            question="Compare BFS and DFS.",
            model_answer="...",
            max_points=5.0,
            subject="graphs",
        ),
        MatchItem(
            item_id="m1",
            question="Match.",
            premises=["stack", "queue"],
            options=["LIFO", "FIFO"],
            key={"stack": "LIFO", "queue": "FIFO"},
        ),
        CompletionItem(
            item_id="c1",
            question="A graph with no cycles is a ___.",
            accepted_answers=[["forest", "tree"]],
        ),
        QuestionnaireItem(
            item_id="s1",
            question="The exam was fair.",
            scale=["no", "yes"],
            resumable=False,
            display_type=DisplayType.RANDOM_ORDER,
        ),
    ]


class TestItemRecords:
    @pytest.mark.parametrize("item", all_style_items(), ids=lambda i: i.item_id)
    def test_every_style_round_trips(self, item):
        record = item_to_record(item)
        json.dumps(record)  # must be JSON-serializable
        restored = item_from_record(record)
        assert type(restored) is type(item)
        assert restored.item_id == item.item_id
        assert restored.question == item.question
        assert restored.subject == item.subject
        assert restored.content_fields() == item.content_fields()

    def test_pictures_round_trip(self):
        item = TrueFalseItem(
            item_id="tf2",
            question="The diagram shows a DAG.",
            pictures=[Picture(resource="dag.gif", x=10, y=2)],
        )
        restored = item_from_record(item_to_record(item))
        assert restored.pictures == [Picture(resource="dag.gif", x=10, y=2)]

    def test_stored_indices_round_trip(self):
        item = all_style_items()[0]
        item.metadata.assessment.individual_test.item_difficulty_index = 0.7
        item.metadata.assessment.individual_test.item_discrimination_index = 0.4
        restored = item_from_record(item_to_record(item))
        ind = restored.metadata.assessment.individual_test
        assert ind.item_difficulty_index == 0.7
        assert ind.item_discrimination_index == 0.4

    def test_unknown_style_rejected(self):
        with pytest.raises(BankError):
            item_from_record({"style": "riddle", "item_id": "x"})


class TestBankFiles:
    def test_save_load_round_trip(self, tmp_path):
        bank = ItemBank()
        for item in all_style_items():
            bank.add(item)
        path = tmp_path / "bank.json"
        save_bank(bank, path)
        restored = load_bank(path)
        assert restored.ids() == bank.ids()
        for item_id in bank.ids():
            assert (
                restored.get(item_id).content_fields()
                == bank.get(item_id).content_fields()
            )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(BankError):
            load_bank(tmp_path / "ghost.json")

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BankError):
            load_bank(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"format": "other", "items": []}))
        with pytest.raises(BankError):
            load_bank(path)


def sample_exam():
    items = all_style_items()[:3]
    return (
        ExamBuilder("mid-1", "Midterm One")
        .add_items(items)
        .group("objective-part", ["mc1", "tf1"], template_name="default-choice")
        .time_limit(3600)
        .resumable(False)
        .display(DisplayType.RANDOM_ORDER)
        .build()
    )


class TestExamBank:
    def test_crud(self):
        bank = ExamBank()
        bank.add(sample_exam())
        assert "mid-1" in bank
        assert bank.get("mid-1").title == "Midterm One"
        bank.remove("mid-1")
        assert len(bank) == 0

    def test_duplicate_rejected(self):
        bank = ExamBank()
        bank.add(sample_exam())
        from repro.core.errors import DuplicateIdError

        with pytest.raises(DuplicateIdError):
            bank.add(sample_exam())

    def test_exam_record_round_trip(self):
        exam = sample_exam()
        restored = exam_from_record(exam_to_record(exam))
        assert restored.exam_id == exam.exam_id
        assert restored.title == exam.title
        assert restored.display_type is DisplayType.RANDOM_ORDER
        assert restored.time_limit_seconds == 3600
        assert restored.resumable is False
        assert [item.item_id for item in restored.items] == ["mc1", "tf1", "e1"]
        assert restored.groups[0].name == "objective-part"
        assert restored.groups[0].template_name == "default-choice"

    def test_exam_file_round_trip(self, tmp_path):
        bank = ExamBank()
        bank.add(sample_exam())
        path = tmp_path / "exams.json"
        save_exams(bank, path)
        restored = load_exams(path)
        assert restored.ids() == ["mid-1"]

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"format": "other", "exams": []}))
        with pytest.raises(BankError):
            load_exams(path)
