"""Tests for the problem database (repro.bank.itembank)."""

import pytest

from repro.core.cognition import CognitionLevel
from repro.core.errors import DuplicateIdError, ItemError, NotFoundError
from repro.bank.itembank import ItemBank
from repro.items.choice import MultipleChoiceItem
from repro.items.truefalse import TrueFalseItem


def mc(item_id, subject="sorting", level=CognitionLevel.KNOWLEDGE):
    return MultipleChoiceItem.build(
        item_id,
        f"Question {item_id}?",
        ["right", "wrong1", "wrong2", "wrong3"],
        correct_index=0,
        subject=subject,
        cognition_level=level,
    )


class TestCrud:
    def test_add_get(self):
        bank = ItemBank()
        bank.add(mc("q1"))
        assert bank.get("q1").item_id == "q1"
        assert len(bank) == 1
        assert "q1" in bank

    def test_duplicate_rejected(self):
        bank = ItemBank()
        bank.add(mc("q1"))
        with pytest.raises(DuplicateIdError):
            bank.add(mc("q1"))

    def test_get_missing(self):
        with pytest.raises(NotFoundError):
            ItemBank().get("ghost")

    def test_remove(self):
        bank = ItemBank()
        bank.add(mc("q1"))
        removed = bank.remove("q1")
        assert removed.item_id == "q1"
        assert len(bank) == 0

    def test_remove_missing(self):
        with pytest.raises(NotFoundError):
            ItemBank().remove("ghost")

    def test_update(self):
        bank = ItemBank()
        bank.add(mc("q1", subject="sorting"))
        bank.update(mc("q1", subject="hashing"))
        assert bank.get("q1").subject == "hashing"

    def test_update_missing(self):
        with pytest.raises(NotFoundError):
            ItemBank().update(mc("q1"))

    def test_add_or_update(self):
        bank = ItemBank()
        bank.add_or_update(mc("q1", subject="a"))
        bank.add_or_update(mc("q1", subject="b"))
        assert bank.get("q1").subject == "b"
        assert len(bank) == 1

    def test_invalid_item_rejected_on_add(self):
        bad = MultipleChoiceItem(
            item_id="bad",
            question="stem?",
            choices=[],
            correct_label="A",
        )
        with pytest.raises(ItemError):
            ItemBank().add(bad)

    def test_insertion_order_preserved(self):
        bank = ItemBank()
        for item_id in ("c", "a", "b"):
            bank.add(mc(item_id))
        assert bank.ids() == ["c", "a", "b"]
        assert [item.item_id for item in bank] == ["c", "a", "b"]


class TestQueries:
    def test_items_matching(self):
        bank = ItemBank()
        bank.add(mc("q1", subject="sorting"))
        bank.add(mc("q2", subject="hashing"))
        matched = bank.items_matching(lambda item: item.subject == "hashing")
        assert [item.item_id for item in matched] == ["q2"]

    def test_subjects_deduplicated(self):
        bank = ItemBank()
        bank.add(mc("q1", subject="sorting"))
        bank.add(mc("q2", subject="sorting"))
        bank.add(mc("q3", subject="hashing"))
        bank.add(
            TrueFalseItem(item_id="q4", question="x is y.", subject="")
        )
        assert bank.subjects() == ["sorting", "hashing"]
