"""Tests for bank-level QTI exchange (repro.bank.qti_io)."""

import io
import json
import zipfile

import pytest

from repro.core.cognition import CognitionLevel
from repro.core.errors import BankError
from repro.bank.itembank import ItemBank
from repro.bank.qti_io import export_bank_qti, import_bank_qti
from repro.items.choice import MultipleChoiceItem
from repro.items.essay import EssayItem
from repro.items.qti import item_to_qti_xml
from repro.items.truefalse import TrueFalseItem


def stocked_bank():
    bank = ItemBank()
    bank.add(
        MultipleChoiceItem.build(
            "mc1", "Pick the stable sort.", ["mergesort", "quicksort"],
            correct_index=0, subject="sorting",
            cognition_level=CognitionLevel.KNOWLEDGE,
        )
    )
    bank.add(
        TrueFalseItem(item_id="tf1", question="Heapsort is stable.",
                      correct_value=False)
    )
    bank.add(EssayItem(item_id="e1", question="Compare the two."))
    return bank


class TestExport:
    def test_export_contains_every_item(self):
        payload = export_bank_qti(stocked_bank())
        names = set(zipfile.ZipFile(io.BytesIO(payload)).namelist())
        assert {"items/mc1.xml", "items/tf1.xml", "items/e1.xml"} <= names
        assert "qti_index.json" in names

    def test_export_writes_file(self, tmp_path):
        path = tmp_path / "bank.zip"
        export_bank_qti(stocked_bank(), path)
        assert path.exists()

    def test_empty_bank_rejected(self):
        with pytest.raises(BankError):
            export_bank_qti(ItemBank())


class TestImport:
    def test_round_trip(self):
        original = stocked_bank()
        restored = import_bank_qti(export_bank_qti(original))
        assert sorted(restored.ids()) == sorted(original.ids())
        assert (
            restored.get("mc1").content_fields()
            == original.get("mc1").content_fields()
        )
        assert restored.get("mc1").cognition_level is CognitionLevel.KNOWLEDGE

    def test_import_without_index(self):
        """Foreign zips (no index) import every .xml file."""
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr(
                "anything.xml",
                item_to_qti_xml(
                    TrueFalseItem(item_id="foreign", question="Imported?")
                ),
            )
        bank = import_bank_qti(buffer.getvalue())
        assert bank.ids() == ["foreign"]

    def test_not_a_zip_rejected(self):
        with pytest.raises(BankError):
            import_bank_qti(b"plain text")

    def test_corrupt_index_rejected(self):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("qti_index.json", "{broken")
        with pytest.raises(BankError):
            import_bank_qti(buffer.getvalue())

    def test_index_referencing_missing_file_rejected(self):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr(
                "qti_index.json",
                json.dumps({"format": "mine-qti-v1", "items": ["ghost.xml"]}),
            )
        with pytest.raises(BankError):
            import_bank_qti(buffer.getvalue())

    def test_empty_archive_rejected(self):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("readme.txt", "nothing here")
        with pytest.raises(BankError):
            import_bank_qti(buffer.getvalue())

    def test_duplicate_ids_rejected(self):
        from repro.core.errors import DuplicateIdError

        buffer = io.BytesIO()
        xml = item_to_qti_xml(
            TrueFalseItem(item_id="dup", question="Twice?")
        )
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("a.xml", xml)
            archive.writestr("b.xml", xml)
        with pytest.raises(DuplicateIdError):
            import_bank_qti(buffer.getvalue())
