"""Tests for item revision history (repro.bank.versioning)."""

import pytest

from repro.core.errors import NotFoundError
from repro.bank.versioning import VersionedItemBank
from repro.items.choice import MultipleChoiceItem


def item(question="What is a stack?"):
    return MultipleChoiceItem.build(
        "q1", question, ["LIFO structure", "FIFO structure"], correct_index=0
    )


class TestVersioning:
    def test_add_creates_revision_1(self):
        bank = VersionedItemBank()
        assert bank.add(item(), author="amy") == 1
        assert bank.current_revision("q1") == 1
        assert bank.bank.get("q1").question == "What is a stack?"

    def test_update_appends_revision(self):
        bank = VersionedItemBank()
        bank.add(item())
        number = bank.update(item("What is a stack? (clarified)"),
                             author="bob", note="reworded stem")
        assert number == 2
        assert bank.current_revision("q1") == 2
        assert "clarified" in bank.bank.get("q1").question

    def test_old_revision_recoverable(self):
        bank = VersionedItemBank()
        bank.add(item("original"))
        bank.update(item("revised"))
        old = bank.revision("q1", 1).restore()
        assert old.question == "original"
        assert bank.bank.get("q1").question == "revised"

    def test_rollback_publishes_old_text_as_new_revision(self):
        bank = VersionedItemBank()
        bank.add(item("original"))
        bank.update(item("broken edit"))
        restored = bank.rollback("q1", 1, author="admin")
        assert restored.question == "original"
        assert bank.current_revision("q1") == 3
        assert bank.bank.get("q1").question == "original"

    def test_history_retained_after_remove(self):
        bank = VersionedItemBank()
        bank.add(item())
        bank.remove("q1")
        assert "q1" not in bank.bank
        assert bank.current_revision("q1") == 1  # audit trail survives

    def test_audit_trail(self):
        bank = VersionedItemBank()
        bank.add(item(), author="amy")
        bank.update(item("v2"), author="bob", note="fix distractor")
        trail = bank.audit_trail("q1")
        assert trail[0] == "r1: created (amy)"
        assert trail[1] == "r2: fix distractor (bob)"

    def test_unknown_item_history_rejected(self):
        with pytest.raises(NotFoundError):
            VersionedItemBank().history("ghost")

    def test_out_of_range_revision_rejected(self):
        bank = VersionedItemBank()
        bank.add(item())
        with pytest.raises(NotFoundError):
            bank.revision("q1", 2)
        with pytest.raises(NotFoundError):
            bank.revision("q1", 0)

    def test_revisions_isolated_from_later_mutation(self):
        bank = VersionedItemBank()
        first = item("original")
        bank.add(first)
        # mutate the live object after storing; history must not change
        first.question = "mutated in place"
        assert bank.revision("q1", 1).restore().question == "original"
