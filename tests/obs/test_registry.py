"""Tests for the observability registry (repro.obs.registry)."""

import threading

import pytest

from repro.obs import NOOP_SPAN, Registry


class TestSpans:
    def test_disabled_returns_shared_noop(self):
        registry = Registry(enabled=False)
        first = registry.span("a")
        second = registry.span("b", tag=1)
        assert first is NOOP_SPAN and second is NOOP_SPAN
        with first:
            pass  # entering/exiting the no-op records nothing
        assert registry.roots == []

    def test_root_span_records_timings(self):
        registry = Registry(enabled=True)
        with registry.span("work", exam_id="ex1"):
            sum(range(1000))
        (root,) = registry.roots
        assert root.name == "work"
        assert root.tags == {"exam_id": "ex1"}
        assert root.wall_seconds >= 0.0
        assert root.cpu_seconds >= 0.0
        assert root.error is None

    def test_nesting_builds_a_tree(self):
        registry = Registry(enabled=True)
        with registry.span("outer"):
            with registry.span("inner"):
                with registry.span("leaf"):
                    pass
            with registry.span("inner"):
                pass
        (root,) = registry.roots
        assert [child.name for child in root.children] == ["inner", "inner"]
        assert root.children[0].children[0].name == "leaf"
        names = [record.name for _, record in root.walk()]
        assert names == ["outer", "inner", "leaf", "inner"]

    def test_exception_marks_error_and_still_records(self):
        registry = Registry(enabled=True)
        with pytest.raises(ValueError):
            with registry.span("boom"):
                raise ValueError("no")
        (root,) = registry.roots
        assert root.error == "ValueError"

    def test_tag_after_entry(self):
        registry = Registry(enabled=True)
        with registry.span("job") as span:
            span.tag(rows=7)
        assert registry.roots[0].tags == {"rows": 7}

    def test_to_dict_is_json_ready(self):
        registry = Registry(enabled=True)
        with registry.span("outer", k="v"):
            with registry.span("inner"):
                pass
        payload = registry.roots[0].to_dict()
        assert payload["type"] == "span"
        assert payload["name"] == "outer"
        assert payload["tags"] == {"k": "v"}
        assert payload["children"][0]["name"] == "inner"
        assert "error" not in payload

    def test_max_roots_retention(self):
        registry = Registry(enabled=True, max_roots=3)
        for index in range(5):
            with registry.span(f"r{index}"):
                pass
        assert [root.name for root in registry.roots] == ["r2", "r3", "r4"]

    def test_threads_get_independent_stacks(self):
        registry = Registry(enabled=True)
        seen = []

        def worker(name):
            with registry.span(name):
                pass
            seen.append(name)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        with registry.span("main"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # the four thread spans are roots, not children of "main"
        assert len(seen) == 4
        names = sorted(root.name for root in registry.roots)
        assert names == ["main", "t0", "t1", "t2", "t3"]
        (main,) = [r for r in registry.roots if r.name == "main"]
        assert main.children == []

    def test_timed_decorator(self):
        registry = Registry(enabled=True)

        @registry.timed("fn.add", kind="demo")
        def add(a, b):
            """Adds."""
            return a + b

        assert add(2, 3) == 5
        assert add.__name__ == "add" and add.__doc__ == "Adds."
        assert [root.name for root in registry.roots] == ["fn.add"]


class TestSampling:
    def test_sample_every_records_one_in_n_roots(self):
        registry = Registry(enabled=True, sample_every=3)
        for _ in range(9):
            with registry.span("req"):
                with registry.span("child"):
                    pass
        assert len(registry.roots) == 3
        # children of sampled-out roots vanish with them
        assert all(len(root.children) == 1 for root in registry.roots)

    def test_nested_spans_follow_their_root(self):
        registry = Registry(enabled=True, sample_every=2)
        with registry.span("kept"):  # root 1 of 2: recorded
            assert registry.span("inner") is not NOOP_SPAN

    def test_sampled_out_root_suppresses_descendants(self):
        registry = Registry(enabled=True, sample_every=2)
        with registry.span("kept"):
            pass
        with registry.span("dropped"):  # root 2 of 2: sampled out
            assert registry.span("inner") is NOOP_SPAN
            with registry.span("inner"):
                pass
        with registry.span("kept-again"):
            pass
        assert [root.name for root in registry.roots] == [
            "kept", "kept-again"
        ]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Registry(sample_every=0)
        with pytest.raises(ValueError):
            Registry(max_roots=0)


class TestCountersAndGauges:
    def test_count_accumulates(self):
        registry = Registry(enabled=True)
        registry.count("jobs")
        registry.count("jobs", 4)
        assert registry.counters() == {"jobs": 5}
        assert registry.counter("jobs") == 5
        assert registry.counter("never") == 0

    def test_tags_fold_into_series_key(self):
        registry = Registry(enabled=True)
        registry.count("hits", exam="a")
        registry.count("hits", exam="b")
        registry.count("hits", exam="a")
        assert registry.counters() == {"hits{exam=a}": 2, "hits{exam=b}": 1}
        assert registry.counter("hits", exam="a") == 2

    def test_gauge_last_value_wins(self):
        registry = Registry(enabled=True)
        registry.gauge("depth", 3)
        registry.gauge("depth", 9)
        assert registry.gauges() == {"depth": 9}

    def test_disabled_registry_records_nothing(self):
        registry = Registry(enabled=False)
        registry.count("jobs")
        registry.gauge("depth", 1)
        assert registry.counters() == {} and registry.gauges() == {}

    def test_snapshot_and_reset(self):
        registry = Registry(enabled=True)
        with registry.span("s"):
            pass
        registry.count("c")
        registry.gauge("g", 2)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 2}
        assert snap["spans"][0]["name"] == "s"
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "spans": []
        }
