"""Tests for observability sinks and the profile renderer."""

import io
import json

import pytest

from repro.obs import (
    JsonLinesSink,
    Registry,
    RingBufferSink,
    parse_jsonl,
    render_counters,
    render_profile,
    render_span_tree,
)


class TestRingBufferSink:
    def test_receives_completed_root_spans(self):
        sink = RingBufferSink()
        registry = Registry(enabled=True)
        registry.add_sink(sink)
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        assert len(sink) == 1
        (event,) = sink.events
        assert event["type"] == "span" and event["name"] == "outer"
        assert event["children"][0]["name"] == "inner"

    def test_bounded_retention(self):
        sink = RingBufferSink(maxlen=2)
        for index in range(5):
            sink.emit({"type": "span", "name": f"s{index}"})
        assert [event["name"] for event in sink.events] == ["s3", "s4"]

    def test_of_type_and_clear(self):
        sink = RingBufferSink()
        sink.emit({"type": "span", "name": "a"})
        sink.emit({"type": "counters", "values": {}})
        assert len(sink.of_type("counters")) == 1
        sink.clear()
        assert len(sink) == 0

    def test_invalid_maxlen(self):
        with pytest.raises(ValueError):
            RingBufferSink(maxlen=0)

    def test_flush_emits_counter_and_gauge_snapshots(self):
        sink = RingBufferSink()
        registry = Registry(enabled=True)
        registry.add_sink(sink)
        registry.count("jobs", 3)
        registry.gauge("depth", 7)
        registry.flush()
        (counters,) = sink.of_type("counters")
        (gauges,) = sink.of_type("gauges")
        assert counters["values"] == {"jobs": 3}
        assert gauges["values"] == {"depth": 7}

    def test_remove_sink(self):
        sink = RingBufferSink()
        registry = Registry(enabled=True)
        registry.add_sink(sink)
        assert registry.remove_sink(sink) is True
        assert registry.remove_sink(sink) is False
        with registry.span("quiet"):
            pass
        assert len(sink) == 0


class TestJsonLinesSink:
    def test_writes_parseable_lines_to_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        registry = Registry(enabled=True)
        registry.add_sink(JsonLinesSink(path))
        with registry.span("job", index=1):
            pass
        registry.count("done")
        registry.close()
        events = parse_jsonl(path.read_text(encoding="utf-8"))
        kinds = [event["type"] for event in events]
        assert kinds == ["span", "counters"]
        assert events[0]["name"] == "job"
        assert events[1]["values"] == {"done": 1}

    def test_accepts_writable_object(self):
        buffer = io.StringIO()
        sink = JsonLinesSink(buffer)
        sink.emit({"type": "span", "name": "x"})
        sink.close()  # must not close a handle it does not own
        assert json.loads(buffer.getvalue()) == {"type": "span", "name": "x"}
        assert sink.lines_written == 1

    def test_lazy_open_writes_nothing_when_unused(self, tmp_path):
        path = tmp_path / "untouched.jsonl"
        sink = JsonLinesSink(path)
        sink.flush()
        sink.close()
        assert not path.exists()


class TestRender:
    def _registry(self):
        registry = Registry(enabled=True)
        for _ in range(2):
            with registry.span("batch"):
                with registry.span("step"):
                    pass
                with registry.span("step"):
                    pass
        registry.count("rows", 10)
        registry.gauge("size", 3)
        return registry

    def test_span_tree_merges_same_named_siblings(self):
        text = render_span_tree(self._registry())
        lines = text.splitlines()
        assert "span" in lines[0] and "calls" in lines[0]
        batch_line = next(line for line in lines if "batch" in line)
        step_line = next(line for line in lines if "step" in line)
        assert batch_line.split()[-1] == "2"  # two roots folded
        assert step_line.split()[-1] == "4"  # four children folded
        assert step_line.startswith("  ")  # indented under batch

    def test_error_marker(self):
        registry = Registry(enabled=True)
        try:
            with registry.span("bad"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "[!1]" in render_span_tree(registry)

    def test_counters_table(self):
        text = render_counters(self._registry())
        assert "counters" in text and "rows" in text
        assert "gauges" in text and "size" in text

    def test_empty_registry_renders_placeholders(self):
        registry = Registry(enabled=True)
        profile = render_profile(registry)
        assert "(no spans recorded)" in profile
        assert "(none recorded)" in profile
