"""Tests for the module-level repro.obs helpers (the default registry)."""

import pytest

from repro import obs
from repro.obs import NOOP_SPAN, Registry, RingBufferSink


@pytest.fixture()
def fresh_registry():
    """Swap in an isolated default registry for the duration of a test."""
    registry = Registry(enabled=False)
    previous = obs.set_registry(registry)
    try:
        yield registry
    finally:
        obs.set_registry(previous)


class TestModuleHelpers:
    def test_disabled_by_default(self, fresh_registry):
        assert obs.enabled() is False
        assert obs.span("anything") is NOOP_SPAN
        obs.count("nothing")
        obs.gauge("nothing", 1)
        assert obs.snapshot() == {"counters": {}, "gauges": {}, "spans": []}

    def test_enable_records_and_disable_stops(self, fresh_registry):
        obs.enable()
        assert obs.enabled() is True
        with obs.span("job", index=1):
            obs.count("steps", 2)
        obs.gauge("size", 5)
        obs.disable()
        with obs.span("after"):  # not recorded
            obs.count("after")
        snap = obs.snapshot()
        assert [s["name"] for s in snap["spans"]] == ["job"]
        assert snap["counters"] == {"steps": 2}
        assert snap["gauges"] == {"size": 5}

    def test_enable_attaches_sinks_and_flush_feeds_them(self, fresh_registry):
        sink = RingBufferSink()
        obs.enable(sink)
        with obs.span("s"):
            pass
        obs.count("c")
        obs.flush()
        assert [event["type"] for event in sink.events] == [
            "span", "counters"
        ]

    def test_enable_sample_every(self, fresh_registry):
        obs.enable(sample_every=2)
        for _ in range(4):
            with obs.span("req"):
                pass
        assert len(obs.snapshot()["spans"]) == 2

    def test_reset_clears_state(self, fresh_registry):
        obs.enable()
        with obs.span("s"):
            pass
        obs.count("c")
        obs.reset()
        assert obs.snapshot() == {"counters": {}, "gauges": {}, "spans": []}

    def test_render_mentions_spans_and_counters(self, fresh_registry):
        obs.enable()
        with obs.span("visible.region"):
            pass
        obs.count("visible.counter", 3)
        text = obs.render()
        assert "visible.region" in text
        assert "visible.counter" in text

    def test_set_registry_returns_previous(self):
        current = obs.get_registry()
        replacement = Registry()
        assert obs.set_registry(replacement) is current
        assert obs.get_registry() is replacement
        assert obs.set_registry(current) is replacement


class TestInstrumentedPaths:
    """The threaded-through call sites record under an enabled registry."""

    def test_analyze_cohort_spans_both_engines(self, fresh_registry):
        from repro import ExamineeResponses, QuestionSpec, analyze_cohort

        specs = [QuestionSpec(options=("A", "B"), correct="A")] * 3
        cohort = [
            ExamineeResponses.of(f"s{i}", ["A", "B", "A"]) for i in range(8)
        ]
        obs.enable()
        analyze_cohort(cohort, specs, engine="columnar")
        analyze_cohort(cohort, specs, engine="reference")
        names = [s["name"] for s in obs.snapshot()["spans"]]
        assert "analyze.columnar" in names
        assert "analyze.reference" in names

    def test_simulation_emits_shard_spans_and_counters(self, fresh_registry):
        from repro import (
            classroom_exam,
            classroom_parameters,
            make_population,
            simulate_sitting_data,
        )

        obs.enable()
        simulate_sitting_data(
            classroom_exam(5),
            classroom_parameters(5),
            make_population(10, seed=1),
            seed=2,
            sim_engine="auto",
        )
        snap = obs.snapshot()
        (generate,) = [
            s for s in snap["spans"] if s["name"] == "sim.generate"
        ]
        assert generate["children"][0]["name"] == "sim.shard"
        assert snap["counters"]["sim.learners.generated"] == 10

    def test_scorm_package_span_and_byte_counter(self, fresh_registry):
        from repro import classroom_exam, package_exam

        obs.enable()
        payload = package_exam(classroom_exam(3))
        snap = obs.snapshot()
        assert [s["name"] for s in snap["spans"]] == ["scorm.package"]
        assert snap["counters"]["scorm.packages.written"] == 1
        assert snap["counters"]["scorm.bytes.written"] == len(payload)
