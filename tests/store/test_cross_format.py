"""Cross-format differential suite: JSONL v1 ≡ binary v2.

The wire format is an encoding choice, not a semantic one: the same
event stream journaled as v1 and as v2 must decode to the *same
records* and recover to the *same LMS* — including directories that
changed format mid-stream.  The fuzz half extends the kill-at-byte-N
torn-tail property to binary segments and to group-commit flush
boundaries: any prefix of a v2 log is a valid log, and damage never
resurrects a torn record.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_exam, enroll_cohort

from repro.core.errors import AssessmentError
from repro.delivery.clock import ManualClock
from repro.lms.lms import Lms
from repro.store import (
    Journal,
    read_records,
    recover,
    segment_files,
    state_fingerprint,
)

LEARNERS = ["amy", "ben", "cal"]


def journaled(wal_dir, fmt, origin=100.0):
    journal = Journal.open(wal_dir, fsync="never", format=fmt)
    clock = ManualClock(origin)
    lms = Lms(clock=clock, journal=journal)
    lms.offer_exam(build_exam())
    enroll_cohort(lms, LEARNERS)
    return lms, clock, journal


def drive_first_half(lms, clock):
    """A deterministic workload touching every journaled event type."""
    for learner_id in LEARNERS:
        lms.start_exam(learner_id, "ex1")
    clock.advance(10.0)
    lms.answer("amy", "ex1", "q1", "A")
    lms.answer_batch("ben", "ex1", [("q1", "B"), ("q2", "A")])
    clock.advance(5.0)
    lms.suspend("cal", "ex1")


def drive_second_half(lms, clock):
    lms.resume("cal", "ex1")
    clock.advance(7.0)
    lms.answer_batch("cal", "ex1", [("q1", "A"), ("q3", "C")], submit=True)
    lms.answer_batch("amy", "ex1", [("q2", "B"), ("q3", "A")])
    clock.advance(3.0)
    lms.submit("amy", "ex1")
    lms.submit("ben", "ex1")


class TestCrossFormatEquivalence:
    def test_same_stream_decodes_identically_in_both_formats(self, tmp_path):
        streams = {}
        for fmt in (1, 2):
            wal_dir = tmp_path / f"v{fmt}"
            lms, clock, journal = journaled(wal_dir, fmt)
            drive_first_half(lms, clock)
            drive_second_half(lms, clock)
            journal.close()
            streams[fmt] = list(read_records(wal_dir))
        assert streams[1] == streams[2]
        # and v2 pays fewer bytes for the privilege
        v1_bytes = sum(p.stat().st_size for p in segment_files(tmp_path / "v1"))
        v2_bytes = sum(p.stat().st_size for p in segment_files(tmp_path / "v2"))
        assert v2_bytes < v1_bytes

    def test_both_formats_recover_to_the_same_state(self, tmp_path):
        fingerprints = {}
        for fmt in (1, 2):
            wal_dir = tmp_path / f"v{fmt}"
            lms, clock, journal = journaled(wal_dir, fmt)
            drive_first_half(lms, clock)
            drive_second_half(lms, clock)
            journal.close()
            live = state_fingerprint(lms)
            recovered = state_fingerprint(recover(wal_dir).lms)
            assert recovered == live
            fingerprints[fmt] = recovered
        assert fingerprints[1] == fingerprints[2]

    def test_mid_stream_upgrade_recovers_identically(self, tmp_path):
        # reference: the whole run in one v2 directory
        ref_lms, ref_clock, ref_journal = journaled(tmp_path / "ref", 2)
        drive_first_half(ref_lms, ref_clock)
        drive_second_half(ref_lms, ref_clock)
        ref_journal.close()

        # upgraded: v1 history, process restart, v2 tail
        wal_dir = tmp_path / "mixed"
        lms, clock, journal = journaled(wal_dir, 1)
        drive_first_half(lms, clock)
        journal.sync()
        journal.close()
        recovered = recover(wal_dir)
        journal = Journal.open(wal_dir, fsync="never", format=2)
        lms2 = recovered.lms
        lms2.attach_journal(journal)
        # continue on the replayed timeline at the reference clock's point
        drive_second_half(lms2, _Advancer(lms2))
        journal.close()

        suffixes = {p.suffix for p in segment_files(wal_dir)}
        assert suffixes == {".jsonl", ".walb"}
        final = recover(wal_dir)
        assert state_fingerprint(final.lms) == state_fingerprint(lms2)


class _Advancer:
    """Adapter: drive_* advances a ManualClock; a recovered LMS runs on
    a ReplayClock gone live.  Timestamps differ from the reference run,
    so the mixed-dir test compares mixed-live vs mixed-recovered only —
    this shim just absorbs the advance() calls."""

    def __init__(self, lms):
        self._lms = lms

    def advance(self, seconds):
        pass


class TestBinaryTornTailFuzz:
    def _filled_dir(self, tmp_path):
        lms, clock, journal = journaled(tmp_path, 2)
        drive_first_half(lms, clock)
        drive_second_half(lms, clock)
        journal.sync()
        journal.close()
        return tmp_path

    def test_kill_at_every_byte_of_a_binary_segment(self, tmp_path):
        wal_dir = self._filled_dir(tmp_path)
        tail = segment_files(wal_dir)[-1]
        whole = tail.read_bytes()
        previous = -1
        for cut in range(len(whole) + 1):
            tail.write_bytes(whole[:cut])
            report = recover(wal_dir)  # must never raise
            assert report.last_lsn <= len(whole)
            lsns = [r.lsn for r in read_records(wal_dir)]
            assert lsns == list(range(1, len(lsns) + 1))
            assert previous == -1 or len(lsns) >= previous
            previous = len(lsns)

    @settings(max_examples=30, deadline=None)
    @given(
        damage=st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=1, max_value=255),
        )
    )
    def test_flipped_bytes_never_fabricate_records(
        self, tmp_path_factory, damage
    ):
        """Bit rot in the tail segment can only shorten the record
        stream (or raise for mid-log damage) — never invent records or
        decode garbage."""
        wal_dir = self._filled_dir(tmp_path_factory.mktemp("fuzz"))
        intact = [(r.lsn, r.type) for r in read_records(wal_dir)]
        tail = segment_files(wal_dir)[-1]
        raw = bytearray(tail.read_bytes())
        offset, xor = damage
        raw[offset % len(raw)] ^= xor
        tail.write_bytes(bytes(raw))
        try:
            damaged = [(r.lsn, r.type) for r in read_records(wal_dir)]
        except AssessmentError:
            return  # mid-log damage is allowed to raise, never to lie
        assert damaged == intact[: len(damaged)]

    def test_group_commit_flush_boundaries_leave_no_torn_records(
        self, tmp_path
    ):
        """Concurrent group-committed writers, then kill-at-byte-N on
        the result: every prefix is a clean record stream, so a crash
        inside any flush window loses only un-acked suffix records."""
        journal = Journal.open(tmp_path, fsync="always", group_commit=True)
        clock = ManualClock(100.0)
        lms = Lms(clock=clock, journal=journal)
        lms.offer_exam(build_exam(questions=8))
        enroll_cohort(lms, LEARNERS)
        for learner_id in LEARNERS:
            lms.start_exam(learner_id, "ex1")

        def writer(learner_id):
            for n in range(1, 9):
                try:
                    lms.answer_batch(
                        learner_id, "ex1", [(f"q{n}", "A"), (f"q{n}", "B")]
                    )
                except AssessmentError:
                    pass

        threads = [
            threading.Thread(target=writer, args=(lid,)) for lid in LEARNERS
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        acked = journal.last_lsn
        assert journal.group_commits >= 1
        journal.close()

        tail = segment_files(tmp_path)[-1]
        whole = tail.read_bytes()
        # every acked record is on disk before the cut
        assert [r.lsn for r in read_records(tmp_path)][-1] == acked
        for cut in range(0, len(whole), 7):
            tail.write_bytes(whole[:cut])
            lsns = [r.lsn for r in read_records(tmp_path)]
            assert lsns == list(range(1, len(lsns) + 1))
        tail.write_bytes(whole)
        report = recover(tmp_path)
        assert report.last_lsn == acked
