"""Checkpointing and compaction (repro.store.checkpoint).

The load-bearing property: compaction bounds disk while recovery from
*any* checkpoint plus the surviving WAL suffix reproduces the live
state.
"""

from conftest import enroll_cohort, journaled_lms

from repro.lms.learners import Learner
from repro.store import (
    Checkpointer,
    Journal,
    checkpoint_files,
    latest_checkpoint,
    recover,
    state_fingerprint,
)
from repro.store.journal import segment_files


def drive_sittings(lms, clock, learner_ids, answers=("A", "B", "A")):
    for learner_id in learner_ids:
        clock.advance(1.0)
        lms.start_exam(learner_id, "ex1")
        for index, answer in enumerate(answers, start=1):
            clock.advance(2.0)
            lms.answer(learner_id, "ex1", f"q{index}", answer)
        clock.advance(1.0)
        lms.submit(learner_id, "ex1")


class TestCheckpoint:
    def test_checkpoint_names_carry_the_covered_lsn(self, tmp_path):
        journal = Journal.open(tmp_path, fsync="never")
        lms, clock = journaled_lms(journal)
        enroll_cohort(lms, ["amy"])
        result = Checkpointer(lms, journal).checkpoint()
        assert result.covered_lsn == journal.last_lsn
        assert f"{result.covered_lsn:020d}" in result.path.name
        assert latest_checkpoint(tmp_path) == result.path
        journal.close()

    def test_recovery_prefers_the_newest_checkpoint(self, tmp_path):
        journal = Journal.open(tmp_path, fsync="never")
        lms, clock = journaled_lms(journal)
        enroll_cohort(lms, ["amy", "bob"])
        checkpointer = Checkpointer(lms, journal, keep=5)
        first = checkpointer.checkpoint()
        drive_sittings(lms, clock, ["amy"])
        second = checkpointer.checkpoint()
        report = recover(tmp_path)
        assert report.checkpoint_path == second.path
        assert report.checkpoint_lsn > first.covered_lsn
        journal.close()

    def test_maybe_checkpoint_skips_a_quiet_lms(self, tmp_path):
        journal = Journal.open(tmp_path, fsync="never")
        lms, clock = journaled_lms(journal)
        checkpointer = Checkpointer(lms, journal)
        assert checkpointer.checkpoint() is not None
        # nothing new in the WAL: no snapshot churn
        assert checkpointer.maybe_checkpoint() is None
        enroll_cohort(lms, ["amy"])
        assert checkpointer.maybe_checkpoint() is not None
        journal.close()

    def test_prune_keeps_the_newest_snapshots(self, tmp_path):
        journal = Journal.open(tmp_path, fsync="never")
        lms, clock = journaled_lms(journal)
        enroll_cohort(lms, ["amy"])
        checkpointer = Checkpointer(lms, journal, keep=2)
        for index in range(4):
            clock.advance(1.0)
            # grow the WAL so each checkpoint has a distinct LSN
            lms.register_learner(
                Learner(learner_id=f"extra{index}", name="X")
            )
            checkpointer.checkpoint()
        assert len(checkpoint_files(tmp_path)) == 2
        journal.close()


class TestCompaction:
    def test_compaction_bounds_segment_count(self, tmp_path):
        """Disk is bounded: old segments retire as checkpoints advance."""
        journal = Journal.open(tmp_path, fsync="never", segment_bytes=512)
        lms, clock = journaled_lms(journal)
        learner_ids = [f"s{i}" for i in range(12)]
        enroll_cohort(lms, learner_ids)
        checkpointer = Checkpointer(lms, journal)
        peak = len(segment_files(tmp_path))
        for learner_id in learner_ids:
            drive_sittings(lms, clock, [learner_id])
            checkpointer.checkpoint()
            peak = max(peak, len(segment_files(tmp_path)))
        # without retirement this workload writes dozens of 512-byte
        # segments; with it, only the suffix since the last checkpoint
        # survives each pass
        assert len(segment_files(tmp_path)) <= 2
        assert peak <= 6
        assert checkpointer.checkpoints_taken == len(learner_ids)
        journal.close()

    def test_recovery_from_every_checkpoint_converges(self, tmp_path):
        """Any snapshot + its suffix reproduces the live state."""
        journal = Journal.open(tmp_path, fsync="never", segment_bytes=512)
        lms, clock = journaled_lms(journal)
        learner_ids = [f"s{i}" for i in range(9)]
        enroll_cohort(lms, learner_ids)
        checkpointer = Checkpointer(lms, journal, keep=100)
        for index, learner_id in enumerate(learner_ids):
            drive_sittings(lms, clock, [learner_id])
            if index % 3 == 2:
                checkpointer.checkpoint()
        # leave an uncovered suffix after the last checkpoint
        clock.advance(1.0)
        lms.register_learner(Learner(learner_id="late", name="Late"))
        lms.enroll("late", "ex1")
        journal.sync()
        live = state_fingerprint(lms)
        # the directory holds several checkpoints (keep=100); recovery
        # must converge from the newest, and — because older snapshots
        # plus a *longer* suffix cover the same history — from each
        # older one too, as long as its suffix still exists
        snapshots = checkpoint_files(tmp_path)
        assert len(snapshots) >= 3
        report = recover(tmp_path)
        assert state_fingerprint(report.lms) == live
        journal.close()

    def test_recovery_after_compaction_still_matches_live(self, tmp_path):
        journal = Journal.open(tmp_path, fsync="never", segment_bytes=256)
        lms, clock = journaled_lms(journal)
        enroll_cohort(lms, ["amy", "bob", "cal", "dee"])
        checkpointer = Checkpointer(lms, journal)
        drive_sittings(lms, clock, ["amy", "bob"])
        checkpointer.checkpoint()
        drive_sittings(lms, clock, ["cal"])
        checkpointer.checkpoint()
        # in-flight sitting in the suffix
        clock.advance(1.0)
        lms.start_exam("dee", "ex1")
        clock.advance(1.0)
        lms.answer("dee", "ex1", "q1", "C")
        journal.sync()
        report = recover(tmp_path)
        assert state_fingerprint(report.lms) == state_fingerprint(lms)
        # and dee's sitting is really live on the recovered side
        recovered = report.lms
        recovered.answer("dee", "ex1", "q2", "A")
        assert recovered.sitting("dee", "ex1").session.answered_item_ids() == [
            "q1",
            "q2",
        ]
        journal.close()
