"""Unit tests for the binary WAL codec (repro.store.format).

The codec is the byte-level contract of format-2 segments: every value
the JSONL format can carry must round-trip, every truncation must raise
``ValueError`` (the journal scanner's torn-tail signal), and the header
must reject anything that is not a v2 segment.
"""

import pytest

from repro.store.format import (
    SEGMENT_HEADER_LEN,
    SEGMENT_MAGIC,
    check_segment_header,
    decode_body,
    decode_varint,
    decode_value,
    encode_body,
    encode_varint,
    encode_value,
    segment_header,
)


class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 255, 300, 2**14, 2**31, 2**63, 2**64 - 1]
    )
    def test_round_trip(self, value):
        raw = encode_varint(value)
        decoded, offset = decode_varint(raw, 0)
        assert decoded == value
        assert offset == len(raw)

    def test_small_values_take_one_byte(self):
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_raises(self):
        raw = encode_varint(2**31)
        for cut in range(len(raw)):
            with pytest.raises(ValueError):
                decode_varint(raw[:cut], 0)

    def test_unterminated_run_raises(self):
        # continuation bit set on every byte: never terminates
        with pytest.raises(ValueError):
            decode_varint(b"\xff" * 11, 0)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            1,
            42,
            -(2**40),
            2**40,
            0.0,
            3.5,
            -2.25,
            1e300,
            "",
            "amy",
            "naïve résumé — 試験",
            [],
            [1, "a", None, True],
            {},
            {"learner_id": "amy", "score": 0.75},
            {"nested": {"list": [1, [2, {"deep": None}]]}},
        ],
    )
    def test_round_trip(self, value):
        raw = encode_value(value)
        decoded, offset = decode_value(raw)
        assert decoded == value
        assert type(decoded) is type(value)
        assert offset == len(raw)

    def test_bool_is_not_confused_with_int(self):
        # bool is an int subclass; the codec must keep them distinct
        assert decode_value(encode_value(True))[0] is True
        assert decode_value(encode_value(1))[0] == 1
        assert decode_value(encode_value(1))[0] is not True

    def test_every_truncation_raises(self):
        raw = encode_value(
            {"learner_id": "amy", "response": ["B", None, 3.5], "ok": True}
        )
        for cut in range(len(raw)):
            with pytest.raises(ValueError):
                decode_value(raw[:cut])

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError):
            decode_value(b"\x7f")

    def test_unencodable_type_raises(self):
        with pytest.raises(ValueError):
            encode_value({"bad": object()})

    def test_non_string_dict_key_raises(self):
        with pytest.raises(ValueError):
            encode_value({1: "a"})


class TestSegmentHeader:
    def test_header_layout(self):
        raw = segment_header()
        assert len(raw) == SEGMENT_HEADER_LEN
        assert raw.startswith(SEGMENT_MAGIC)
        check_segment_header(raw)  # does not raise

    def test_truncated_header_raises(self):
        for cut in range(SEGMENT_HEADER_LEN):
            with pytest.raises(ValueError):
                check_segment_header(segment_header()[:cut])

    def test_bad_magic_raises(self):
        raw = bytearray(segment_header())
        raw[0] ^= 0xFF
        with pytest.raises(ValueError):
            check_segment_header(bytes(raw))

    def test_unsupported_version_raises(self):
        with pytest.raises(ValueError):
            check_segment_header(segment_header(version=99))


class TestBody:
    def test_round_trip(self):
        body = encode_body(7, "answer", {"learner_id": "amy", "n": 3})
        assert decode_body(body) == (
            7,
            "answer",
            {"learner_id": "amy", "n": 3},
        )

    def test_trailing_bytes_rejected(self):
        body = encode_body(1, "answer", {})
        with pytest.raises(ValueError):
            decode_body(body + b"\x00")

    def test_nonpositive_lsn_rejected(self):
        with pytest.raises(ValueError):
            decode_body(encode_body(0, "answer", {}))

    def test_non_dict_data_rejected(self):
        bad = encode_varint(1) + encode_value("answer") + encode_value("x")
        with pytest.raises(ValueError):
            decode_body(bad)

    def test_non_string_type_rejected(self):
        bad = encode_varint(1) + encode_value(5) + encode_value({})
        with pytest.raises(ValueError):
            decode_body(bad)
