"""Property: an adaptive sitting replayed from the WAL is bit-identical.

Replay determinism is the load-bearing invariant of journaled CAT: the
journal records only ``(item_id, response)`` pairs, so recovery re-runs
the selection and estimation pipeline — any float drift or tie-break
divergence would silently fork the administered sequence. Hypothesis
drives random interleaved cohorts and asserts the recovered sessions
match the live ones exactly: item sequence, responses, and the full
``(theta, SE)`` trajectory, compared as raw floats, plus the global
``state_fingerprint``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_exam, enroll_cohort

from repro.adaptive.online import AdaptivePolicy
from repro.core.errors import AssessmentError
from repro.delivery.clock import ManualClock
from repro.lms.lms import Lms
from repro.store.journal import Journal
from repro.store.recovery import recover, state_fingerprint

LEARNERS = ("amy", "bob", "cal")


def adaptive_exam(questions=6, max_items=4):
    exam = build_exam(exam_id="ex1", questions=questions)
    exam.adaptive = AdaptivePolicy(
        max_items=max_items, min_items=min(2, max_items), se_target=0.45
    )
    exam.validate()
    return exam


# one cohort = interleaved per-learner actions; answers carry only a
# correctness bit — the policy decides which item it lands on
actions = st.lists(
    st.tuples(
        st.sampled_from(LEARNERS),
        st.sampled_from(["start", "answer", "submit"]),
        st.booleans(),
    ),
    max_size=40,
)


def apply_action(lms, learner_id, verb, correct):
    try:
        if verb == "start":
            lms.start_exam(learner_id, "ex1")
        elif verb == "answer":
            status = lms.next_item(learner_id, "ex1")
            if status["done"]:
                return
            lms.answer(
                learner_id, "ex1", status["item_id"],
                "A" if correct else "B",
            )
        else:
            lms.submit(learner_id, "ex1")
    except AssessmentError:
        pass  # illegal in current state — the property only replays acks


def adaptive_transcripts(lms):
    """(sequence, responses, trajectory) per open adaptive sitting."""
    transcripts = {}
    for learner_id in LEARNERS:
        try:
            sitting = lms.sitting(learner_id, "ex1")
        except AssessmentError:
            continue
        if getattr(sitting, "adaptive", None) is None:
            continue
        session = sitting.adaptive
        transcripts[learner_id] = (
            list(session.administered),
            list(session.responses),
            list(session.trajectory),
        )
    return transcripts


class TestAdaptiveReplayBitIdentity:
    @settings(max_examples=50, deadline=None)
    @given(operations=actions)
    def test_recovered_sittings_match_exactly(self, tmp_path_factory, operations):
        wal_dir = tmp_path_factory.mktemp("wal")
        clock = ManualClock(100.0)
        journal = Journal.open(wal_dir, fsync="never", segment_bytes=2048)
        lms = Lms(clock=clock, journal=journal)
        lms.offer_exam(adaptive_exam())
        enroll_cohort(lms, LEARNERS)
        for learner_id, verb, correct in operations:
            clock.advance(1.0)
            apply_action(lms, learner_id, verb, correct)
        journal.sync()

        recovered = recover(wal_dir).lms
        # the fingerprint hashes raw trajectory floats — equality here
        # IS bit-identity, not approximate agreement
        assert state_fingerprint(recovered) == state_fingerprint(lms)
        live = adaptive_transcripts(lms)
        replayed = adaptive_transcripts(recovered)
        assert replayed == live
        for sequence, responses, trajectory in live.values():
            assert len(sequence) == len(responses) == len(trajectory)
