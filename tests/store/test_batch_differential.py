"""Differential property suite: batched ingestion ≡ one-at-a-time.

The batch endpoint's contract is that a cohort driven through
``Lms.answer_batch`` is *observably identical* to the same answers
applied through ``Lms.answer`` one at a time — same ``live_analysis``,
same ``state_fingerprint``, and the same state again after journal
replay on both sides.  Hypothesis drives interleavings of batch sizes,
invalid answers, omissions, suspend/resume, and submits against two
mirrored LMS instances and asserts exactly that.

All-or-nothing semantics make the mirror well-defined: a batch that
raises applies *nothing* (asserted directly below), so the sequential
twin applies the group's answers only when the batch side accepted it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_exam, enroll_cohort

from repro.core.errors import AssessmentError
from repro.delivery.clock import ManualClock
from repro.lms.lms import Lms
from repro.store import Journal, recover, state_fingerprint

LEARNERS = ["l0", "l1", "l2"]
ITEMS = ["q1", "q2", "q3", "q9"]  # q9 does not exist in the exam
RESPONSES = ["A", "B", "C", "z"]  # "z" is not a valid option

learner_ids = st.sampled_from(LEARNERS)

answer_groups = st.lists(
    st.tuples(st.sampled_from(ITEMS), st.sampled_from(RESPONSES)),
    min_size=0,
    max_size=6,
)

operations = st.one_of(
    st.tuples(st.just("start"), learner_ids),
    st.tuples(st.just("batch"), learner_ids, answer_groups, st.booleans()),
    st.tuples(st.just("suspend"), learner_ids),
    st.tuples(st.just("resume"), learner_ids),
    st.tuples(st.just("advance"), st.integers(min_value=1, max_value=120)),
)


def make_pair(tmp_path, name):
    wal_dir = tmp_path / name
    journal = Journal.open(wal_dir, fsync="never", format=2)
    clock = ManualClock(100.0)
    lms = Lms(clock=clock, journal=journal)
    lms.offer_exam(build_exam())
    enroll_cohort(lms, LEARNERS)
    return lms, clock, journal, wal_dir


def mirrored(call_a, call_b):
    """Run the same mutation on both sides; outcomes must agree."""
    try:
        call_a()
        ok_a = True
    except AssessmentError:
        ok_a = False
    try:
        call_b()
        ok_b = True
    except AssessmentError:
        ok_b = False
    assert ok_a == ok_b
    return ok_a


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(operations, min_size=0, max_size=25))
def test_batched_cohort_is_bit_identical_to_sequential(
    tmp_path_factory, ops
):
    base = tmp_path_factory.mktemp("diff")
    batch_lms, batch_clock, batch_journal, batch_wal = make_pair(
        base, "batch"
    )
    seq_lms, seq_clock, seq_journal, seq_wal = make_pair(base, "seq")

    for op in ops:
        kind = op[0]
        if kind == "advance":
            batch_clock.advance(float(op[1]))
            seq_clock.advance(float(op[1]))
        elif kind == "batch":
            _, learner_id, pairs, submit = op
            try:
                batch_lms.answer_batch(
                    learner_id, "ex1", pairs, submit=submit
                )
            except AssessmentError:
                continue  # all-or-nothing: the twin applies nothing
            for item_id, response in pairs:
                seq_lms.answer(learner_id, "ex1", item_id, response)
            if submit:
                seq_lms.submit(learner_id, "ex1")
        else:
            method = {
                "start": "start_exam",
                "suspend": "suspend",
                "resume": "resume",
            }[kind]
            mirrored(
                lambda: getattr(batch_lms, method)(op[1], "ex1"),
                lambda: getattr(seq_lms, method)(op[1], "ex1"),
            )

    # live state: analysis, sittings, results, tracking — all equal
    assert state_fingerprint(batch_lms) == state_fingerprint(seq_lms)

    # journal replay converges on the same state on both sides
    batch_journal.sync()
    seq_journal.sync()
    live = state_fingerprint(batch_lms)
    recovered_batch = recover(batch_wal)
    recovered_seq = recover(seq_wal)
    assert state_fingerprint(recovered_batch.lms) == live
    assert state_fingerprint(recovered_seq.lms) == live
    batch_journal.close()
    seq_journal.close()


@settings(max_examples=40, deadline=None)
@given(
    good=st.lists(
        st.tuples(st.sampled_from(["q1", "q2", "q3"]), st.sampled_from("ABC")),
        min_size=0,
        max_size=5,
    ),
    bad_index=st.integers(min_value=0, max_value=5),
    bad=st.sampled_from([("q9", "A"), ("q1", "z"), ("q2", "")]),
)
def test_invalid_batch_applies_nothing(tmp_path_factory, good, bad_index, bad):
    """One bad answer anywhere in the batch → no state change at all."""
    base = tmp_path_factory.mktemp("atomic")
    lms, clock, journal, wal_dir = make_pair(base, "wal")
    lms.start_exam("l0", "ex1")
    before_lsn = journal.last_lsn
    before = state_fingerprint(lms)

    pairs = list(good)
    pairs.insert(min(bad_index, len(pairs)), bad)
    with pytest.raises(AssessmentError) as excinfo:
        lms.answer_batch("l0", "ex1", pairs)

    # the error names the offending index and item
    position = pairs.index(bad)
    assert f"answers[{position}]" in str(excinfo.value)
    # nothing was applied, nothing was journaled
    assert journal.last_lsn == before_lsn
    assert state_fingerprint(lms) == before
    assert lms.sitting("l0", "ex1").session.answered_item_ids() == []
    journal.close()


def test_recovery_reports_batched_answers(tmp_path_factory):
    base = tmp_path_factory.mktemp("report")
    lms, clock, journal, wal_dir = make_pair(base, "wal")
    lms.start_exam("l0", "ex1")
    lms.answer_batch("l0", "ex1", [("q1", "A"), ("q2", "B"), ("q3", "C")])
    journal.sync()
    report = recover(wal_dir)
    assert report.batched_answers == 3
    assert "3 answer(s) via batch events" in report.summary()
    journal.close()


def test_batch_timestamps_are_shared(tmp_path_factory):
    """All answers of one batch carry the same clock reading."""
    base = tmp_path_factory.mktemp("ts")
    lms, clock, journal, wal_dir = make_pair(base, "wal")
    lms.start_exam("l0", "ex1")
    clock.advance(30.0)
    lms.answer_batch("l0", "ex1", [("q1", "A"), ("q2", "B"), ("q3", "C")])
    clock.advance(5.0)
    graded = lms.submit("l0", "ex1")
    assert graded.answer_times == [30.0, 30.0, 30.0]
    journal.close()
