"""Shared fixtures for the durable-store suite."""

from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.lms.learners import Learner
from repro.lms.lms import Lms


def build_exam(exam_id="ex1", questions=3, resumable=True, time_limit=600):
    builder = ExamBuilder(exam_id, f"Exam {exam_id}").resumable(resumable)
    if time_limit is not None:
        builder.time_limit(time_limit)
    for index in range(1, questions + 1):
        builder.add_item(
            MultipleChoiceItem.build(
                f"q{index}", f"Q{index}?", ["a", "b", "c"], correct_index=0
            )
        )
    return builder.build()


def journaled_lms(journal, start=100.0):
    """A ManualClock LMS with ``journal`` attached, one exam offered."""
    clock = ManualClock(start)
    lms = Lms(clock=clock, journal=journal)
    lms.offer_exam(build_exam())
    return lms, clock


def enroll_cohort(lms, learner_ids, exam_id="ex1"):
    for learner_id in learner_ids:
        lms.register_learner(
            Learner(learner_id=learner_id, name=learner_id.title())
        )
        lms.enroll(learner_id, exam_id)
