"""Differential property test: ``recover()`` == the live Lms.

Hypothesis drives random operation sequences against a journaled LMS
(with checkpoints taken at arbitrary points mid-stream), then recovers
from the WAL directory and asserts ``state_fingerprint`` equality.

Invalid operations (answering before starting, double enrollment,
resuming an in-progress sitting, ...) are part of the point: they raise
domain errors *before* the journal append, so the log only ever holds
mutations that succeeded — a recovered LMS must match regardless of how
much garbage the caller threw at the live one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_exam

from repro.core.errors import AssessmentError
from repro.delivery.clock import ManualClock
from repro.lms.learners import Learner
from repro.lms.lms import Lms
from repro.store import (
    Checkpointer,
    Journal,
    recover,
    segment_files,
    state_fingerprint,
)

LEARNERS = ["l0", "l1", "l2"]
ITEMS = ["q1", "q2", "q3", "q9"]  # q9 does not exist in the exam
RESPONSES = ["a", "b", "c", ""]

learner_ids = st.sampled_from(LEARNERS)

operations = st.one_of(
    st.tuples(st.just("register"), learner_ids),
    st.tuples(st.just("enroll"), learner_ids),
    st.tuples(st.just("start"), learner_ids),
    st.tuples(
        st.just("answer"),
        learner_ids,
        st.sampled_from(ITEMS),
        st.sampled_from(RESPONSES),
    ),
    st.tuples(st.just("suspend"), learner_ids),
    st.tuples(st.just("resume"), learner_ids),
    st.tuples(st.just("submit"), learner_ids),
    st.tuples(st.just("capture"), learner_ids),
    st.tuples(st.just("advance"), st.integers(min_value=1, max_value=120)),
    st.tuples(st.just("checkpoint")),
)


def apply_operation(lms, clock, checkpointer, op):
    kind = op[0]
    try:
        if kind == "register":
            lms.register_learner(Learner(learner_id=op[1], name=op[1]))
        elif kind == "enroll":
            lms.enroll(op[1], "ex1")
        elif kind == "start":
            lms.start_exam(op[1], "ex1")
        elif kind == "answer":
            lms.answer(op[1], "ex1", op[2], op[3])
        elif kind == "suspend":
            lms.suspend(op[1], "ex1")
        elif kind == "resume":
            lms.resume(op[1], "ex1")
        elif kind == "submit":
            lms.submit(op[1], "ex1")
        elif kind == "capture":
            lms.capture_frame(op[1], "ex1")
        elif kind == "advance":
            clock.advance(float(op[1]))
        elif kind == "checkpoint":
            checkpointer.checkpoint()
    except AssessmentError:
        # rejected before the journal append — both sides unaffected
        pass


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(operations, min_size=0, max_size=40))
def test_recovered_state_equals_live_state(tmp_path_factory, ops):
    wal_dir = tmp_path_factory.mktemp("wal")
    journal = Journal.open(wal_dir, fsync="never", segment_bytes=2048)
    clock = ManualClock(100.0)
    lms = Lms(clock=clock, journal=journal)
    lms.offer_exam(build_exam())
    checkpointer = Checkpointer(lms, journal, keep=3)
    for op in ops:
        apply_operation(lms, clock, checkpointer, op)
    journal.sync()
    report = recover(wal_dir)
    assert state_fingerprint(report.lms) == state_fingerprint(lms)
    journal.close()


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(operations, min_size=5, max_size=30),
    cut=st.integers(min_value=0, max_value=200),
)
def test_recovery_tolerates_a_torn_tail(tmp_path_factory, ops, cut):
    """Chopping bytes off the final segment never breaks recovery: the
    recovered state is some valid prefix of the history."""
    wal_dir = tmp_path_factory.mktemp("wal")
    journal = Journal.open(wal_dir, fsync="never", segment_bytes=4096)
    clock = ManualClock(100.0)
    lms = Lms(clock=clock, journal=journal)
    lms.offer_exam(build_exam())
    checkpointer = Checkpointer(lms, journal, keep=3)
    for op in ops:
        apply_operation(lms, clock, checkpointer, op)
    journal.sync()
    journal.close()
    segments = segment_files(wal_dir)
    if segments:
        tail = segments[-1]
        raw = tail.read_bytes()
        tail.write_bytes(raw[: max(0, len(raw) - cut)])
    report = recover(wal_dir)  # must not raise
    assert report.last_lsn >= report.checkpoint_lsn
