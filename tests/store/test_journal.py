"""Unit tests for the WAL itself (repro.store.journal)."""

import json

import pytest

from repro.core.errors import JournalCorruptError, StoreError
from repro.store.journal import (
    FSYNC_POLICIES,
    Journal,
    JournalRecord,
    read_records,
    scan_segment,
    segment_files,
)


def append_n(journal, count, start=0):
    lsns = []
    for index in range(start, start + count):
        lsns.append(journal.append("answer", {"n": index}))
    return lsns


class TestAppendRead:
    def test_lsns_are_monotonic_from_one(self, tmp_path):
        with Journal.open(tmp_path, fsync="never") as journal:
            assert append_n(journal, 5) == [1, 2, 3, 4, 5]
            assert journal.last_lsn == 5

    def test_round_trip_preserves_type_and_data(self, tmp_path):
        payload = {"learner_id": "amy", "response": ["A", None, 3.5]}
        with Journal.open(tmp_path, fsync="never") as journal:
            journal.append("answer", payload)
        records = list(read_records(tmp_path))
        assert records == [
            JournalRecord(lsn=1, type="answer", data=payload)
        ]

    def test_read_filters_by_start_lsn(self, tmp_path):
        with Journal.open(tmp_path, fsync="never") as journal:
            append_n(journal, 6)
        assert [r.lsn for r in read_records(tmp_path, start_lsn=4)] == [5, 6]

    def test_reopen_continues_the_lsn_sequence(self, tmp_path):
        with Journal.open(tmp_path, fsync="never") as journal:
            append_n(journal, 3)
        with Journal.open(tmp_path, fsync="never") as journal:
            assert journal.last_lsn == 3
            assert journal.append("answer", {}) == 4

    def test_closed_journal_rejects_appends(self, tmp_path):
        journal = Journal.open(tmp_path, fsync="never")
        journal.close()
        with pytest.raises(StoreError):
            journal.append("answer", {})

    def test_every_fsync_policy_is_accepted(self, tmp_path):
        for policy in FSYNC_POLICIES:
            directory = tmp_path / policy
            with Journal.open(directory, fsync=policy) as journal:
                journal.append("answer", {"p": policy})
            assert [r.data["p"] for r in read_records(directory)] == [policy]

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            Journal.open(tmp_path, fsync="sometimes")

    def test_always_policy_fsyncs_per_append(self, tmp_path):
        with Journal.open(tmp_path, fsync="always") as journal:
            append_n(journal, 4)
            assert journal.fsyncs >= 4


class TestRotation:
    def test_rotates_when_segment_fills(self, tmp_path):
        with Journal.open(
            tmp_path, fsync="never", segment_bytes=200
        ) as journal:
            append_n(journal, 10)
            assert journal.rotations >= 2
        segments = segment_files(tmp_path)
        assert len(segments) >= 3
        # segment names are the LSN their first record carries
        firsts = [int(p.name[len("wal-"):-len(".jsonl")]) for p in segments]
        assert firsts[0] == 1
        assert firsts == sorted(firsts)

    def test_records_span_segments_in_order(self, tmp_path):
        with Journal.open(
            tmp_path, fsync="never", segment_bytes=150
        ) as journal:
            append_n(journal, 20)
        assert [r.lsn for r in read_records(tmp_path)] == list(range(1, 21))

    def test_manual_rotate_seals_the_active_segment(self, tmp_path):
        with Journal.open(tmp_path, fsync="never") as journal:
            append_n(journal, 2)
            sealed = journal.rotate()
            assert sealed is not None
            journal.append("answer", {"after": True})
        assert len(segment_files(tmp_path)) == 2


class TestTornTail:
    def fill(self, tmp_path, count=5):
        with Journal.open(tmp_path, fsync="never") as journal:
            append_n(journal, count)
        return segment_files(tmp_path)[-1]

    def test_unterminated_final_record_is_dropped(self, tmp_path):
        tail = self.fill(tmp_path)
        raw = tail.read_bytes()
        tail.write_bytes(raw[:-3])  # cut the last record short
        records = list(read_records(tmp_path))
        assert [r.lsn for r in records] == [1, 2, 3, 4]

    def test_crc_damage_in_tail_ends_the_log(self, tmp_path):
        tail = self.fill(tmp_path)
        lines = tail.read_bytes().splitlines(keepends=True)
        # flip a payload byte in the final record; its CRC now mismatches
        bad = lines[-1].replace(b'"n":4', b'"n":9')
        tail.write_bytes(b"".join(lines[:-1]) + bad)
        assert [r.lsn for r in read_records(tmp_path)] == [1, 2, 3, 4]

    def test_open_physically_truncates_the_torn_tail(self, tmp_path):
        tail = self.fill(tmp_path)
        whole = tail.read_bytes()
        tail.write_bytes(whole[:-3])
        with Journal.open(tmp_path, fsync="never") as journal:
            assert journal.repaired_bytes > 0
            assert journal.last_lsn == 4
            # appends continue after the repaired tail with the next LSN
            assert journal.append("answer", {"n": 99}) == 5
        assert [r.lsn for r in read_records(tmp_path)] == [1, 2, 3, 4, 5]

    def test_truncation_at_every_byte_is_tolerated(self, tmp_path):
        """Kill-at-byte-N: any prefix of the log is a valid log."""
        tail = self.fill(tmp_path, count=6)
        whole = tail.read_bytes()
        previous = -1
        for cut in range(len(whole) + 1):
            tail.write_bytes(whole[:cut])
            records = list(read_records(tmp_path))  # must never raise
            lsns = [r.lsn for r in records]
            assert lsns == list(range(1, len(lsns) + 1))
            # monotone: more bytes never means fewer records
            assert len(lsns) >= previous or previous == -1
            previous = len(lsns)
        assert previous == 6

    def test_damage_in_a_sealed_segment_raises(self, tmp_path):
        with Journal.open(
            tmp_path, fsync="never", segment_bytes=150
        ) as journal:
            append_n(journal, 20)
        first = segment_files(tmp_path)[0]
        raw = bytearray(first.read_bytes())
        raw[10] ^= 0xFF
        first.write_bytes(bytes(raw))
        with pytest.raises(JournalCorruptError):
            list(read_records(tmp_path))

    def test_scan_reports_valid_and_torn_bytes(self, tmp_path):
        tail = self.fill(tmp_path, count=3)
        whole = tail.read_bytes()
        tail.write_bytes(whole[:-5])
        scan = scan_segment(tail)
        assert scan.error is not None
        assert scan.valid_bytes + scan.torn_bytes == len(whole) - 5
        assert len(scan.records) == 2


class TestRetirement:
    def sealed_journal(self, tmp_path, records=20, segment_bytes=150):
        journal = Journal.open(
            tmp_path, fsync="never", segment_bytes=segment_bytes
        )
        append_n(journal, records)
        return journal

    def test_retires_only_fully_covered_segments(self, tmp_path):
        journal = self.sealed_journal(tmp_path)
        segments = journal.segments()
        assert len(segments) >= 3
        # cover everything up to the second segment's first record - 1:
        # only the first segment is fully covered
        second_first = int(
            segments[1].name[len("wal-"):-len(".jsonl")]
        )
        removed = journal.retire_covered(second_first - 1)
        assert removed == [segments[0]]
        journal.close()

    def test_never_deletes_the_final_segment(self, tmp_path):
        journal = self.sealed_journal(tmp_path)
        journal.retire_covered(journal.last_lsn)
        remaining = journal.segments()
        assert len(remaining) >= 1
        # the surviving log still replays the uncovered suffix
        last = list(read_records(tmp_path))[-1]
        assert last.lsn == journal.last_lsn
        journal.close()

    def test_retired_history_does_not_break_reads(self, tmp_path):
        journal = self.sealed_journal(tmp_path)
        journal.retire_covered(10)
        lsns = [r.lsn for r in read_records(tmp_path, start_lsn=10)]
        assert lsns == list(range(11, 21))
        journal.close()


class TestWireFormat:
    def test_records_are_json_lines_with_crc(self, tmp_path):
        with Journal.open(tmp_path, fsync="never") as journal:
            journal.append("enroll", {"learner_id": "amy"})
        line = segment_files(tmp_path)[0].read_text().strip()
        payload = json.loads(line)
        assert payload["lsn"] == 1
        assert payload["type"] == "enroll"
        assert payload["data"] == {"learner_id": "amy"}
        assert isinstance(payload["crc"], int)
