"""Unit tests for the WAL itself (repro.store.journal).

Format-agnostic behaviors (LSNs, rotation, torn tails, retirement) run
against BOTH wire formats via the ``fmt`` fixture; the wire-format
classes at the bottom pin each format's actual byte layout.
"""

import json
import struct
import zlib

import pytest

from repro.core.errors import JournalCorruptError, StoreError
from repro.store.format import SEGMENT_HEADER_LEN, segment_header
from repro.store.journal import (
    FSYNC_POLICIES,
    JOURNAL_FORMATS,
    Journal,
    JournalRecord,
    read_records,
    scan_segment,
    segment_files,
    segment_format,
)


@pytest.fixture(params=JOURNAL_FORMATS, ids=lambda f: f"format{f}")
def fmt(request):
    return request.param


def append_n(journal, count, start=0):
    lsns = []
    for index in range(start, start + count):
        lsns.append(journal.append("answer", {"n": index}))
    return lsns


def first_lsn_of(path):
    return int(path.name[len("wal-"): -len(path.suffix)])


class TestAppendRead:
    def test_lsns_are_monotonic_from_one(self, tmp_path, fmt):
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            assert append_n(journal, 5) == [1, 2, 3, 4, 5]
            assert journal.last_lsn == 5

    def test_round_trip_preserves_type_and_data(self, tmp_path, fmt):
        payload = {"learner_id": "amy", "response": ["A", None, 3.5]}
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            journal.append("answer", payload)
        records = list(read_records(tmp_path))
        assert records == [
            JournalRecord(lsn=1, type="answer", data=payload)
        ]

    def test_read_filters_by_start_lsn(self, tmp_path, fmt):
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            append_n(journal, 6)
        assert [r.lsn for r in read_records(tmp_path, start_lsn=4)] == [5, 6]

    def test_reopen_continues_the_lsn_sequence(self, tmp_path, fmt):
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            append_n(journal, 3)
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            assert journal.last_lsn == 3
            assert journal.append("answer", {}) == 4

    def test_closed_journal_rejects_appends(self, tmp_path):
        journal = Journal.open(tmp_path, fsync="never")
        journal.close()
        with pytest.raises(StoreError):
            journal.append("answer", {})
        with pytest.raises(StoreError):
            journal.append_batch([("answer", {})])

    def test_every_fsync_policy_is_accepted(self, tmp_path):
        for policy in FSYNC_POLICIES:
            directory = tmp_path / policy
            with Journal.open(directory, fsync=policy) as journal:
                journal.append("answer", {"p": policy})
            assert [r.data["p"] for r in read_records(directory)] == [policy]

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            Journal.open(tmp_path, fsync="sometimes")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            Journal.open(tmp_path, format=3)

    def test_always_policy_fsyncs_per_append(self, tmp_path):
        with Journal.open(tmp_path, fsync="always") as journal:
            append_n(journal, 4)
            assert journal.fsyncs >= 4


class TestBatchAppend:
    def test_batch_lsns_are_contiguous(self, tmp_path, fmt):
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            journal.append("answer", {"n": 0})
            lsns = journal.append_batch(
                [("answer", {"n": n}) for n in range(1, 5)]
            )
            assert lsns == [2, 3, 4, 5]
            assert journal.last_lsn == 5
        assert [r.data["n"] for r in read_records(tmp_path)] == [0, 1, 2, 3, 4]

    def test_empty_batch_is_a_noop(self, tmp_path):
        with Journal.open(tmp_path, fsync="never") as journal:
            assert journal.append_batch([]) == []
            assert journal.last_lsn == 0
        assert list(read_records(tmp_path)) == []

    def test_batch_pays_one_fsync_under_always(self, tmp_path):
        with Journal.open(tmp_path, fsync="always") as journal:
            before = journal.fsyncs
            journal.append_batch([("answer", {"n": n}) for n in range(10)])
            assert journal.fsyncs == before + 1
            assert journal.records_appended == 10

    def test_batch_interleaves_with_single_appends(self, tmp_path, fmt):
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            journal.append("a", {})
            journal.append_batch([("b", {}), ("c", {})])
            journal.append("d", {})
        assert [r.type for r in read_records(tmp_path)] == ["a", "b", "c", "d"]


class TestGroupCommit:
    def test_concurrent_writers_share_fsyncs(self, tmp_path):
        import threading

        with Journal.open(
            tmp_path, fsync="always", group_commit=True
        ) as journal:
            def writer(worker):
                for index in range(20):
                    journal.append("answer", {"w": worker, "i": index})

            threads = [
                threading.Thread(target=writer, args=(worker,))
                for worker in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert journal.records_appended == 120
            # the whole point: far fewer flushes than records
            assert journal.fsyncs < 120
            assert journal.group_commits >= 1
        assert len(list(read_records(tmp_path))) == 120

    def test_group_commit_still_fsyncs_every_acked_append(self, tmp_path):
        with Journal.open(
            tmp_path, fsync="always", group_commit=True
        ) as journal:
            journal.append("answer", {"n": 1})
            # single-threaded: the append's own group commit flushed it
            assert journal.fsyncs >= 1

    def test_group_commit_ignored_for_other_policies(self, tmp_path):
        with Journal.open(
            tmp_path, fsync="never", group_commit=True
        ) as journal:
            append_n(journal, 5)
            assert journal.group_commits == 0


class TestRotation:
    def test_rotates_when_segment_fills(self, tmp_path, fmt):
        with Journal.open(
            tmp_path, fsync="never", segment_bytes=120, format=fmt
        ) as journal:
            append_n(journal, 30)
            assert journal.rotations >= 2
        segments = segment_files(tmp_path)
        assert len(segments) >= 3
        # segment names are the LSN their first record carries
        firsts = [first_lsn_of(p) for p in segments]
        assert firsts[0] == 1
        assert firsts == sorted(firsts)

    def test_records_span_segments_in_order(self, tmp_path, fmt):
        with Journal.open(
            tmp_path, fsync="never", segment_bytes=150, format=fmt
        ) as journal:
            append_n(journal, 20)
        assert [r.lsn for r in read_records(tmp_path)] == list(range(1, 21))

    def test_manual_rotate_seals_the_active_segment(self, tmp_path, fmt):
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            append_n(journal, 2)
            sealed = journal.rotate()
            assert sealed is not None
            journal.append("answer", {"after": True})
        assert len(segment_files(tmp_path)) == 2


class TestMixedFormats:
    """A directory upgraded mid-stream: v1 history, v2 tail."""

    def test_v2_open_seals_a_v1_tail_and_continues(self, tmp_path):
        with Journal.open(tmp_path, fsync="never", format=1) as journal:
            append_n(journal, 3)
        with Journal.open(tmp_path, fsync="never", format=2) as journal:
            assert journal.last_lsn == 3
            assert journal.append("answer", {"n": 3}) == 4
            append_n(journal, 2, start=4)
        suffixes = [p.suffix for p in segment_files(tmp_path)]
        assert suffixes == [".jsonl", ".walb"]
        assert [r.lsn for r in read_records(tmp_path)] == [1, 2, 3, 4, 5, 6]

    def test_v1_open_seals_a_v2_tail_and_continues(self, tmp_path):
        with Journal.open(tmp_path, fsync="never", format=2) as journal:
            append_n(journal, 3)
        with Journal.open(tmp_path, fsync="never", format=1) as journal:
            assert journal.append("answer", {"n": 99}) == 4
        suffixes = [p.suffix for p in segment_files(tmp_path)]
        assert suffixes == [".walb", ".jsonl"]
        assert [r.lsn for r in read_records(tmp_path)] == [1, 2, 3, 4]

    def test_segment_format_is_suffix_driven(self, tmp_path):
        with Journal.open(tmp_path, fsync="never", format=1) as journal:
            append_n(journal, 1)
        with Journal.open(tmp_path, fsync="never", format=2) as journal:
            append_n(journal, 1, start=1)
        formats = [segment_format(p) for p in segment_files(tmp_path)]
        assert formats == [1, 2]


class TestTornTail:
    def fill(self, tmp_path, fmt, count=5):
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            append_n(journal, count)
        return segment_files(tmp_path)[-1]

    def test_unterminated_final_record_is_dropped(self, tmp_path, fmt):
        tail = self.fill(tmp_path, fmt)
        raw = tail.read_bytes()
        tail.write_bytes(raw[:-3])  # cut the last record short
        records = list(read_records(tmp_path))
        assert [r.lsn for r in records] == [1, 2, 3, 4]

    def test_flipped_tail_byte_ends_the_log(self, tmp_path, fmt):
        tail = self.fill(tmp_path, fmt)
        raw = bytearray(tail.read_bytes())
        # damage inside the final record: CRC (or framing) must reject
        # it, ending the log at the last intact record
        raw[-2] ^= 0xFF
        tail.write_bytes(bytes(raw))
        assert [r.lsn for r in read_records(tmp_path)] == [1, 2, 3, 4]

    def test_crc_damage_in_v1_tail_ends_the_log(self, tmp_path):
        tail = self.fill(tmp_path, 1)
        lines = tail.read_bytes().splitlines(keepends=True)
        # flip a payload byte in the final record; its CRC now mismatches
        bad = lines[-1].replace(b'"n":4', b'"n":9')
        tail.write_bytes(b"".join(lines[:-1]) + bad)
        assert [r.lsn for r in read_records(tmp_path)] == [1, 2, 3, 4]

    def test_crc_damage_in_v2_tail_ends_the_log(self, tmp_path):
        tail = self.fill(tmp_path, 2)
        raw = bytearray(tail.read_bytes())
        raw[-1] ^= 0x01  # last body byte: length intact, CRC mismatch
        tail.write_bytes(bytes(raw))
        scan = scan_segment(tail)
        assert scan.error is not None and "crc" in scan.error
        assert [r.lsn for r in read_records(tmp_path)] == [1, 2, 3, 4]

    def test_torn_v2_header_is_repaired_to_empty(self, tmp_path):
        tail = self.fill(tmp_path, 2, count=2)
        tail.write_bytes(tail.read_bytes()[:3])  # crash mid-header
        with Journal.open(tmp_path, fsync="never", format=2) as journal:
            assert journal.repaired_bytes == 3
            assert journal.last_lsn == 0
            assert journal.append("answer", {"n": 0}) == 1
        assert [r.lsn for r in read_records(tmp_path)] == [1]

    def test_open_physically_truncates_the_torn_tail(self, tmp_path, fmt):
        tail = self.fill(tmp_path, fmt)
        whole = tail.read_bytes()
        tail.write_bytes(whole[:-3])
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            assert journal.repaired_bytes > 0
            assert journal.last_lsn == 4
            # appends continue after the repaired tail with the next LSN
            assert journal.append("answer", {"n": 99}) == 5
        assert [r.lsn for r in read_records(tmp_path)] == [1, 2, 3, 4, 5]

    def test_truncation_at_every_byte_is_tolerated(self, tmp_path, fmt):
        """Kill-at-byte-N: any prefix of the log is a valid log."""
        tail = self.fill(tmp_path, fmt, count=6)
        whole = tail.read_bytes()
        previous = -1
        for cut in range(len(whole) + 1):
            tail.write_bytes(whole[:cut])
            records = list(read_records(tmp_path))  # must never raise
            lsns = [r.lsn for r in records]
            assert lsns == list(range(1, len(lsns) + 1))
            # monotone: more bytes never means fewer records
            assert len(lsns) >= previous or previous == -1
            previous = len(lsns)
        assert previous == 6

    def test_damage_in_a_sealed_segment_raises(self, tmp_path, fmt):
        with Journal.open(
            tmp_path, fsync="never", segment_bytes=150, format=fmt
        ) as journal:
            append_n(journal, 20)
        first = segment_files(tmp_path)[0]
        raw = bytearray(first.read_bytes())
        raw[10] ^= 0xFF
        first.write_bytes(bytes(raw))
        with pytest.raises(JournalCorruptError):
            list(read_records(tmp_path))

    def test_scan_reports_valid_and_torn_bytes(self, tmp_path, fmt):
        tail = self.fill(tmp_path, fmt, count=3)
        whole = tail.read_bytes()
        tail.write_bytes(whole[:-5])
        scan = scan_segment(tail)
        assert scan.error is not None
        assert scan.valid_bytes + scan.torn_bytes == len(whole) - 5
        assert len(scan.records) == 2


class TestRetirement:
    def sealed_journal(self, tmp_path, records=20, segment_bytes=150):
        journal = Journal.open(
            tmp_path, fsync="never", segment_bytes=segment_bytes
        )
        append_n(journal, records)
        return journal

    def test_retires_only_fully_covered_segments(self, tmp_path):
        journal = self.sealed_journal(tmp_path)
        segments = journal.segments()
        assert len(segments) >= 3
        # cover everything up to the second segment's first record - 1:
        # only the first segment is fully covered
        second_first = first_lsn_of(segments[1])
        removed = journal.retire_covered(second_first - 1)
        assert removed == [segments[0]]
        journal.close()

    def test_never_deletes_the_final_segment(self, tmp_path):
        journal = self.sealed_journal(tmp_path)
        journal.retire_covered(journal.last_lsn)
        remaining = journal.segments()
        assert len(remaining) >= 1
        # the surviving log still replays the uncovered suffix
        last = list(read_records(tmp_path))[-1]
        assert last.lsn == journal.last_lsn
        journal.close()

    def test_retired_history_does_not_break_reads(self, tmp_path):
        journal = self.sealed_journal(tmp_path)
        journal.retire_covered(10)
        lsns = [r.lsn for r in read_records(tmp_path, start_lsn=10)]
        assert lsns == list(range(11, 21))
        journal.close()

    def test_retirement_spans_a_format_boundary(self, tmp_path):
        with Journal.open(
            tmp_path, fsync="never", segment_bytes=150, format=1
        ) as journal:
            append_n(journal, 10)
        journal = Journal.open(
            tmp_path, fsync="never", segment_bytes=150, format=2
        )
        append_n(journal, 10, start=10)
        assert {p.suffix for p in journal.segments()} == {".jsonl", ".walb"}
        removed = journal.retire_covered(journal.last_lsn)
        assert removed  # v1 history is retired by a v2-writing journal
        assert [r.lsn for r in read_records(tmp_path)][-1] == 20
        journal.close()


class TestWireFormat:
    def test_v1_records_are_json_lines_with_crc(self, tmp_path):
        with Journal.open(tmp_path, fsync="never", format=1) as journal:
            journal.append("enroll", {"learner_id": "amy"})
        line = segment_files(tmp_path)[0].read_text().strip()
        payload = json.loads(line)
        assert payload["lsn"] == 1
        assert payload["type"] == "enroll"
        assert payload["data"] == {"learner_id": "amy"}
        assert isinstance(payload["crc"], int)

    def test_v2_segments_start_with_the_magic_header(self, tmp_path):
        with Journal.open(tmp_path, fsync="never", format=2) as journal:
            journal.append("enroll", {"learner_id": "amy"})
        raw = segment_files(tmp_path)[0].read_bytes()
        assert raw[:4] == b"MAWL"
        assert raw[:SEGMENT_HEADER_LEN] == segment_header()

    def test_v2_record_crc_covers_the_body(self, tmp_path):
        from repro.store.format import decode_varint

        with Journal.open(tmp_path, fsync="never", format=2) as journal:
            journal.append("enroll", {"learner_id": "amy"})
        raw = segment_files(tmp_path)[0].read_bytes()
        body_len, offset = decode_varint(raw, SEGMENT_HEADER_LEN)
        (crc,) = struct.unpack_from("<I", raw, offset)
        body = raw[offset + 4: offset + 4 + body_len]
        assert len(body) == body_len
        assert zlib.crc32(body) & 0xFFFFFFFF == crc
        assert offset + 4 + body_len == len(raw)  # nothing after the record

    def test_v2_is_more_compact_than_v1(self, tmp_path):
        payload = {
            "learner_id": "amy",
            "exam_id": "ex1",
            "item_id": "q07",
            "response": "B",
            "ts": 1234.5,
        }
        for fmt in JOURNAL_FORMATS:
            with Journal.open(
                tmp_path / str(fmt), fsync="never", format=fmt
            ) as journal:
                for _ in range(50):
                    journal.append("answer", payload)
        v1 = sum(p.stat().st_size for p in segment_files(tmp_path / "1"))
        v2 = sum(p.stat().st_size for p in segment_files(tmp_path / "2"))
        assert v2 < v1
