"""The tail-following WAL reader (repro.store.tail).

The tailer feeds the analytics read models, so its contract is strict:
every record exactly once, in LSN order, from any starting LSN, across
segment rotations, format upgrades, torn tips, and group-committed
batches.  Format-agnostic behaviors run against both wire formats.
"""

import pytest

from repro.store.journal import (
    JOURNAL_FORMATS,
    Journal,
    read_records,
    segment_files,
    segment_first_lsn,
)
from repro.store.tail import JournalTailer, TailTruncatedError


@pytest.fixture(params=JOURNAL_FORMATS, ids=lambda f: f"format{f}")
def fmt(request):
    return request.param


def append_n(journal, count, start=0):
    for index in range(start, start + count):
        journal.append("answer", {"n": index})


def drain(tailer):
    return [record.lsn for record in tailer.poll()]


class TestPositioning:
    def test_tail_from_zero_sees_everything(self, tmp_path, fmt):
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            append_n(journal, 7)
        tailer = JournalTailer(tmp_path)
        assert drain(tailer) == [1, 2, 3, 4, 5, 6, 7]
        assert tailer.position == 7
        assert drain(tailer) == []  # idempotent at the tip

    def test_opens_mid_segment_at_any_lsn(self, tmp_path, fmt):
        """The binary-search entry point: starting inside any segment
        yields exactly the records above the mark, none below."""
        with Journal.open(
            tmp_path, fsync="never", format=fmt, segment_bytes=256
        ) as journal:
            append_n(journal, 40)
        assert len(segment_files(tmp_path)) > 2  # rotation happened
        for start in (0, 1, 13, 22, 39, 40):
            tailer = JournalTailer(tmp_path, start_lsn=start)
            assert drain(tailer) == list(range(start + 1, 41)), start

    def test_rotation_boundary_has_no_off_by_one(self, tmp_path, fmt):
        """Regression: starting exactly at a segment's first LSN (and
        one either side of it) must neither skip nor repeat the record
        that sits on the rotation boundary."""
        with Journal.open(
            tmp_path, fsync="never", format=fmt, segment_bytes=256
        ) as journal:
            append_n(journal, 40)
        boundaries = [
            segment_first_lsn(path) for path in segment_files(tmp_path)[1:]
        ]
        assert boundaries, "need at least two segments"
        for boundary in boundaries:
            for start in (boundary - 1, boundary, boundary + 1):
                tailer = JournalTailer(tmp_path, start_lsn=start)
                assert drain(tailer) == list(range(start + 1, 41)), (
                    f"boundary {boundary}, start {start}"
                )

    def test_empty_directory_is_quiet_not_an_error(self, tmp_path):
        tailer = JournalTailer(tmp_path / "nothing-yet")
        assert drain(tailer) == []
        assert tailer.position == 0


class TestFollowingTheTip:
    def test_group_committed_batch_exactly_once_at_tip(self, tmp_path):
        """A group-committed batch lands at the tip between polls: the
        next poll yields the whole batch once; the one after, nothing."""
        with Journal.open(
            tmp_path, fsync="always", group_commit=True
        ) as journal:
            append_n(journal, 3)
            tailer = JournalTailer(tmp_path)
            assert drain(tailer) == [1, 2, 3]
            journal.append_batch(
                [("answer", {"n": n}) for n in range(10)]
            )
            assert drain(tailer) == list(range(4, 14))
            assert drain(tailer) == []

    def test_mid_read_rotation_drains_in_order(self, tmp_path, fmt):
        """Appends that rotate the active segment while the tailer is
        parked at the old tip are all picked up by one poll, in order."""
        with Journal.open(
            tmp_path, fsync="never", format=fmt, segment_bytes=256
        ) as journal:
            append_n(journal, 5)
            tailer = JournalTailer(tmp_path)
            assert drain(tailer) == [1, 2, 3, 4, 5]
            segments_before = len(segment_files(tmp_path))
            append_n(journal, 30, start=5)
            assert len(segment_files(tmp_path)) > segments_before
            assert drain(tailer) == list(range(6, 36))

    def test_v1_to_v2_seal_and_continue_is_transparent(self, tmp_path):
        """A format=2 reopen seals the v1 tail and starts a binary
        successor; the tailer follows across the upgrade."""
        with Journal.open(tmp_path, fsync="never", format=1) as journal:
            append_n(journal, 4)
        tailer = JournalTailer(tmp_path)
        assert drain(tailer) == [1, 2, 3, 4]
        with Journal.open(tmp_path, fsync="never", format=2) as journal:
            append_n(journal, 4, start=4)
        assert drain(tailer) == [5, 6, 7, 8]
        assert [r.lsn for r in read_records(tmp_path)] == list(range(1, 9))

    def test_torn_tip_is_held_not_duplicated(self, tmp_path, fmt):
        """Bytes of a half-written record at the tip are not yielded;
        once the record completes it arrives exactly once."""
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            append_n(journal, 3)
        segment = segment_files(tmp_path)[-1]
        whole = segment.read_bytes()
        with Journal.open(tmp_path, fsync="never", format=fmt) as journal:
            append_n(journal, 1, start=3)
        complete = segment.read_bytes()
        assert len(complete) > len(whole)
        # rewind the file to mid-record: the writer crashed mid-append
        segment.write_bytes(complete[: len(whole) + 2])
        tailer = JournalTailer(tmp_path)
        assert drain(tailer) == [1, 2, 3]
        segment.write_bytes(complete)  # the append completes
        assert drain(tailer) == [4]
        assert drain(tailer) == []


class TestRetirement:
    def test_retirement_behind_the_tailer_is_harmless(self, tmp_path, fmt):
        with Journal.open(
            tmp_path, fsync="never", format=fmt, segment_bytes=256
        ) as journal:
            append_n(journal, 30)
            tailer = JournalTailer(tmp_path)
            assert drain(tailer) == list(range(1, 31))
            journal.retire_covered(tailer.position)
            append_n(journal, 5, start=30)
            assert drain(tailer) == list(range(31, 36))

    def test_retirement_ahead_of_the_tailer_raises(self, tmp_path, fmt):
        with Journal.open(
            tmp_path, fsync="never", format=fmt, segment_bytes=256
        ) as journal:
            append_n(journal, 30)
        segments = segment_files(tmp_path)
        assert len(segments) > 2
        # a tailer parked before records that compaction then retires
        tailer = JournalTailer(tmp_path, start_lsn=1)
        segments[0].unlink()
        with pytest.raises(TailTruncatedError):
            tailer.poll()
