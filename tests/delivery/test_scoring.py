"""Tests for sitting grading (repro.delivery.scoring)."""

import pytest

from repro.core.errors import ResponseError, SessionStateError
from repro.delivery.clock import ManualClock
from repro.delivery.scoring import (
    grade_session,
    sittings_to_responses,
)
from repro.delivery.session import ExamSession
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.items.completion import CompletionItem
from repro.items.essay import EssayItem
from repro.items.truefalse import TrueFalseItem


def rich_exam():
    return (
        ExamBuilder("ex", "Exam")
        .add_item(
            MultipleChoiceItem.build("mc", "Pick A.", ["a", "b"], correct_index=0)
        )
        .add_item(TrueFalseItem(item_id="tf", question="True?", correct_value=True))
        .add_item(
            CompletionItem(
                item_id="fill",
                question="2 + 2 = ___",
                accepted_answers=[["4", "four"]],
            )
        )
        .add_item(EssayItem(item_id="essay", question="Discuss.", max_points=4))
        .build()
    )


def finished_session(answers):
    clock = ManualClock()
    session = ExamSession(rich_exam(), "alice", clock=clock)
    session.start()
    for item_id, response in answers.items():
        clock.advance(10)
        session.answer(item_id, response)
    session.submit()
    return session


class TestGradeSession:
    def test_all_correct(self):
        session = finished_session(
            {"mc": "A", "tf": True, "fill": "4", "essay": "long answer text"}
        )
        graded = grade_session(session)
        assert graded.scores["mc"].correct is True
        assert graded.scores["tf"].correct is True
        assert graded.scores["fill"].points == 1.0
        assert graded.scores["essay"].needs_manual_grading
        # objective points: 3 of 3; essay pending counts 0 of 4
        assert graded.total_points == 3.0
        assert graded.max_points == 7.0

    def test_unanswered_items_scored_wrong(self):
        session = finished_session({"mc": "A"})
        graded = grade_session(session)
        assert graded.scores["tf"].correct is False
        assert graded.scores["fill"].points == 0.0

    def test_percent(self):
        session = finished_session({"mc": "A", "tf": True})
        graded = grade_session(session)
        assert graded.percent == pytest.approx(2 / 7 * 100)

    def test_duration_and_times_recorded(self):
        session = finished_session({"mc": "A", "tf": False})
        graded = grade_session(session)
        assert graded.duration_seconds == 20.0
        assert graded.answer_times == [10.0, 20.0]

    def test_grading_requires_submission(self):
        session = ExamSession(rich_exam(), "alice", clock=ManualClock())
        session.start()
        with pytest.raises(SessionStateError):
            grade_session(session)


class TestManualGrading:
    def test_pending_then_graded(self):
        session = finished_session({"essay": "a thoughtful answer"})
        graded = grade_session(session)
        assert graded.pending_items() == ["essay"]
        assert not graded.is_fully_graded()
        graded.apply_manual_grade(rich_exam(), "essay", 3.0)
        assert graded.is_fully_graded()
        assert graded.scores["essay"].points == 3.0
        assert graded.total_points == 3.0

    def test_cannot_grade_non_pending(self):
        session = finished_session({"mc": "A"})
        graded = grade_session(session)
        with pytest.raises(ResponseError):
            graded.apply_manual_grade(rich_exam(), "mc", 1.0)

    def test_cannot_grade_unknown_item(self):
        session = finished_session({"mc": "A"})
        graded = grade_session(session)
        with pytest.raises(ResponseError):
            graded.apply_manual_grade(rich_exam(), "ghost", 1.0)


class TestSittingsToResponses:
    def test_choice_selections_extracted(self):
        exam = rich_exam()
        sittings = [
            grade_session(finished_session({"mc": "A", "tf": True})),
            grade_session(finished_session({"mc": "B"})),
        ]
        responses = sittings_to_responses(exam, sittings)
        assert len(responses) == 2
        # analyzable items: mc, tf
        assert responses[0].selections == ("A", "true")
        assert responses[1].selections == ("B", None)

    def test_durations_forwarded(self):
        exam = rich_exam()
        sittings = [grade_session(finished_session({"mc": "A", "tf": True}))]
        responses = sittings_to_responses(exam, sittings)
        assert responses[0].duration_seconds == 20.0
