"""Tests for the exam session state machine (repro.delivery.session)."""

import pytest

from repro.core.errors import (
    NotFoundError,
    SessionStateError,
    TimeLimitExceeded,
)
from repro.core.metadata import DisplayType
from repro.delivery.clock import ManualClock
from repro.delivery.session import ExamSession, SessionState
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.items.truefalse import TrueFalseItem


def build_exam(resumable=True, time_limit=None, display=DisplayType.FIXED_ORDER):
    builder = (
        ExamBuilder("ex1", "Exam One")
        .display(display)
        .resumable(resumable)
    )
    if time_limit is not None:
        builder.time_limit(time_limit)
    builder.add_item(
        MultipleChoiceItem.build(
            "q1", "Pick A.", ["a", "b", "c"], correct_index=0
        )
    )
    builder.add_item(TrueFalseItem(item_id="q2", question="True?", correct_value=True))
    return builder.build()


def make_session(**kwargs):
    clock = ManualClock()
    session = ExamSession(build_exam(**kwargs), "alice", clock=clock)
    return session, clock


class TestLifecycle:
    def test_initial_state(self):
        session, _ = make_session()
        assert session.state is SessionState.CREATED
        assert session.elapsed_seconds() == 0.0

    def test_start_returns_presentation_order(self):
        session, _ = make_session()
        order = session.start()
        assert order == ["q1", "q2"]
        assert session.state is SessionState.IN_PROGRESS

    def test_double_start_rejected(self):
        session, _ = make_session()
        session.start()
        with pytest.raises(SessionStateError):
            session.start()

    def test_answer_before_start_rejected(self):
        session, _ = make_session()
        with pytest.raises(SessionStateError):
            session.answer("q1", "A")

    def test_submit_freezes(self):
        session, _ = make_session()
        session.start()
        session.answer("q1", "A")
        session.submit()
        assert session.state is SessionState.SUBMITTED
        with pytest.raises(SessionStateError):
            session.answer("q2", True)

    def test_double_submit_rejected(self):
        session, _ = make_session()
        session.start()
        session.submit()
        with pytest.raises(SessionStateError):
            session.submit()

    def test_submit_from_suspended_allowed(self):
        session, _ = make_session()
        session.start()
        session.suspend()
        session.submit()
        assert session.state is SessionState.SUBMITTED

    def test_empty_learner_rejected(self):
        with pytest.raises(SessionStateError):
            ExamSession(build_exam(), "")


class TestAnswering:
    def test_answer_recorded_with_time(self):
        session, clock = make_session()
        session.start()
        clock.advance(42.0)
        event = session.answer("q1", "A")
        assert event.elapsed_seconds == 42.0
        assert session.response_to("q1") == "A"

    def test_answer_overwrite(self):
        session, clock = make_session()
        session.start()
        session.answer("q1", "A")
        clock.advance(10)
        session.answer("q1", "B")
        assert session.response_to("q1") == "B"
        assert len(session.answered_item_ids()) == 1
        assert len(session.answer_events()) == 2  # both commits logged
        assert session.answer_times() == [10.0]  # final answer time only

    def test_unknown_item_rejected(self):
        session, _ = make_session()
        session.start()
        with pytest.raises(NotFoundError):
            session.answer("ghost", "A")

    def test_invalid_response_rejected(self):
        from repro.core.errors import ResponseError

        session, _ = make_session()
        session.start()
        with pytest.raises(ResponseError):
            session.answer("q1", "Z")

    def test_response_to_unknown_item(self):
        session, _ = make_session()
        with pytest.raises(NotFoundError):
            session.response_to("ghost")


class TestTiming:
    def test_elapsed_tracks_clock(self):
        session, clock = make_session()
        session.start()
        clock.advance(30)
        assert session.elapsed_seconds() == 30.0

    def test_suspend_pauses_the_clock(self):
        session, clock = make_session()
        session.start()
        clock.advance(30)
        session.suspend()
        clock.advance(1000)  # time passes while paused
        assert session.elapsed_seconds() == 30.0
        session.resume()
        clock.advance(15)
        assert session.elapsed_seconds() == 45.0

    def test_remaining_seconds(self):
        session, clock = make_session(time_limit=100)
        session.start()
        clock.advance(40)
        assert session.remaining_seconds() == 60.0

    def test_no_limit_means_unlimited(self):
        session, _ = make_session()
        session.start()
        assert session.remaining_seconds() is None
        assert not session.time_expired()

    def test_answer_after_expiry_rejected(self):
        session, clock = make_session(time_limit=100)
        session.start()
        clock.advance(101)
        assert session.time_expired()
        with pytest.raises(TimeLimitExceeded):
            session.answer("q1", "A")

    def test_answer_at_boundary_allowed(self):
        session, clock = make_session(time_limit=100)
        session.start()
        clock.advance(99.5)
        session.answer("q1", "A")  # still inside the limit

    def test_submit_after_expiry_allowed(self):
        session, clock = make_session(time_limit=100)
        session.start()
        session.answer("q1", "A")
        clock.advance(200)
        session.submit()
        assert session.duration_seconds() == 200.0

    def test_duration_requires_submit(self):
        session, _ = make_session()
        session.start()
        with pytest.raises(SessionStateError):
            session.duration_seconds()


class TestSuspendResume:
    def test_resume_resumable_exam(self):
        session, _ = make_session(resumable=True)
        session.start()
        session.suspend()
        session.resume()
        assert session.state is SessionState.IN_PROGRESS

    def test_non_resumable_exam_cannot_resume(self):
        """§3.2 VI.B: false means paused at a later time — for good."""
        session, _ = make_session(resumable=False)
        session.start()
        session.suspend()
        with pytest.raises(SessionStateError):
            session.resume()

    def test_suspend_requires_in_progress(self):
        session, _ = make_session()
        with pytest.raises(SessionStateError):
            session.suspend()

    def test_resume_requires_suspended(self):
        session, _ = make_session()
        session.start()
        with pytest.raises(SessionStateError):
            session.resume()

    def test_answers_survive_suspend_resume(self):
        session, _ = make_session()
        session.start()
        session.answer("q1", "A")
        session.suspend()
        session.resume()
        assert session.response_to("q1") == "A"


class TestRandomOrderSession:
    def test_start_respects_random_order(self):
        exam = build_exam(display=DisplayType.RANDOM_ORDER)
        orders = set()
        for learner in ("a", "b", "c", "d", "e", "f"):
            session = ExamSession(exam, learner, clock=ManualClock())
            orders.add(tuple(session.start()))
        # with 2 items both orders should eventually appear
        assert len(orders) == 2
