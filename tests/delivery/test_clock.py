"""Tests for the clock abstraction (repro.delivery.clock)."""

import pytest

from repro.core.errors import DeliveryError
from repro.delivery.clock import ManualClock, WallClock


class TestManualClock:
    def test_starts_at_origin(self):
        assert ManualClock().now() == 0.0
        assert ManualClock(start=100.0).now() == 100.0

    def test_advance(self):
        clock = ManualClock()
        clock.advance(5.5)
        clock.advance(4.5)
        assert clock.now() == 10.0

    def test_zero_advance_allowed(self):
        clock = ManualClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(DeliveryError):
            ManualClock().advance(-1.0)

    def test_set_forward(self):
        clock = ManualClock()
        clock.set(50.0)
        assert clock.now() == 50.0

    def test_set_backwards_rejected(self):
        clock = ManualClock(start=10.0)
        with pytest.raises(DeliveryError):
            clock.set(5.0)


class TestWallClock:
    def test_monotone_nondecreasing(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first
