"""Stateful property testing of the exam-session state machine.

Hypothesis drives random sequences of session operations (start, answer,
suspend, resume, submit, clock advances) and checks the machine's
invariants after every step: elapsed time never decreases, never grows
while suspended, answers are only recordable in progress, and the final
answer set is consistent with what was recorded.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.errors import SessionStateError, TimeLimitExceeded
from repro.delivery.clock import ManualClock
from repro.delivery.session import ExamSession, SessionState
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem

ITEM_IDS = [f"q{i}" for i in range(4)]


def build_exam():
    builder = ExamBuilder("sm", "State machine exam").time_limit(1000)
    for item_id in ITEM_IDS:
        builder.add_item(
            MultipleChoiceItem.build(
                item_id, f"Question {item_id}?", ["a", "b", "c"], correct_index=0
            )
        )
    return builder.build()


class SessionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.clock = ManualClock()
        self.session = ExamSession(build_exam(), "prop", clock=self.clock)
        self.model_answers = {}
        self.last_elapsed = 0.0

    # -- operations ---------------------------------------------------------

    @rule(seconds=st.floats(min_value=0.0, max_value=300.0))
    def advance_clock(self, seconds):
        self.clock.advance(seconds)

    @rule()
    def start(self):
        if self.session.state is SessionState.CREATED:
            order = self.session.start()
            assert sorted(order) == sorted(ITEM_IDS)
        else:
            try:
                self.session.start()
                raise AssertionError("start succeeded twice")
            except SessionStateError:
                pass

    @rule(
        item=st.sampled_from(ITEM_IDS),
        option=st.sampled_from(["a", "b", "c"]),
    )
    def answer(self, item, option):
        label = {"a": "A", "b": "B", "c": "C"}[option]
        state = self.session.state
        expired = self.session.time_expired()
        try:
            self.session.answer(item, label)
        except SessionStateError:
            assert state is not SessionState.IN_PROGRESS
        except TimeLimitExceeded:
            assert expired
        else:
            assert state is SessionState.IN_PROGRESS and not expired
            self.model_answers[item] = label

    @rule()
    def suspend(self):
        state = self.session.state
        try:
            self.session.suspend()
        except SessionStateError:
            assert state is not SessionState.IN_PROGRESS
        else:
            assert state is SessionState.IN_PROGRESS

    @rule()
    def resume(self):
        state = self.session.state
        try:
            self.session.resume()
        except SessionStateError:
            assert state is not SessionState.SUSPENDED or not (
                self.session.exam.resumable
            )
        else:
            assert state is SessionState.SUSPENDED

    @rule()
    def submit(self):
        state = self.session.state
        try:
            self.session.submit()
        except SessionStateError:
            assert state in (SessionState.CREATED, SessionState.SUBMITTED)
        else:
            assert state in (
                SessionState.IN_PROGRESS,
                SessionState.SUSPENDED,
            )

    # -- invariants ----------------------------------------------------------

    @invariant()
    def elapsed_never_decreases(self):
        elapsed = self.session.elapsed_seconds()
        assert elapsed >= self.last_elapsed - 1e-9
        self.last_elapsed = elapsed

    @invariant()
    def answers_match_model(self):
        for item, label in self.model_answers.items():
            assert self.session.response_to(item) == label

    @invariant()
    def remaining_nonnegative(self):
        remaining = self.session.remaining_seconds()
        assert remaining is None or remaining >= 0.0

    @invariant()
    def suspended_clock_frozen(self):
        if self.session.state is SessionState.SUSPENDED:
            before = self.session.elapsed_seconds()
            self.clock.advance(50.0)
            assert self.session.elapsed_seconds() == before


TestSessionStateMachine = SessionMachine.TestCase
TestSessionStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
