"""Tests for coverage-gap analysis (repro.exams.gap)."""

import pytest

from repro.core.cognition import COGNITIVE_LEVELS, CognitionLevel
from repro.core.errors import BlueprintError
from repro.core.spec_table import SpecificationTable, TaggedQuestion
from repro.bank.itembank import ItemBank
from repro.exams.authoring import ExamBuilder
from repro.exams.gap import coverage_gaps, repair_exam
from repro.items.choice import MultipleChoiceItem


def tag(number, concept, level):
    return TaggedQuestion(number=number, concept=concept, level=level)


def mc(item_id, subject, level):
    return MultipleChoiceItem.build(
        item_id, f"Q {item_id}?", ["a", "b", "c"], correct_index=0,
        subject=subject, cognition_level=level,
    )


class TestCoverageGaps:
    def test_covered_table_has_no_gaps(self):
        table = SpecificationTable.from_questions(
            [
                tag(1, "c1", CognitionLevel.KNOWLEDGE),
                tag(2, "c1", CognitionLevel.COMPREHENSION),
            ],
            concepts=["c1"],
        )
        gaps = coverage_gaps(table)
        assert gaps.is_covered
        assert "covers every concept" in gaps.describe()

    def test_lost_concept_requires_one_question(self):
        table = SpecificationTable.from_questions(
            [tag(1, "c1", CognitionLevel.KNOWLEDGE)], concepts=["c1", "c2"]
        )
        gaps = coverage_gaps(table)
        assert gaps.lost_concepts == ["c2"]
        assert gaps.blueprint.targets[("c2", CognitionLevel.KNOWLEDGE)] == 1
        assert "c2" in gaps.describe()

    def test_pyramid_shortfall_computed_bottom_up(self):
        # counts A..F = [0, 0, 0, 0, 0, 2] -> every level below F needs 2
        table = SpecificationTable.from_questions(
            [
                tag(1, "c1", CognitionLevel.EVALUATION),
                tag(2, "c1", CognitionLevel.EVALUATION),
            ]
        )
        gaps = coverage_gaps(table)
        assert gaps.pyramid_shortfall == [2, 2, 2, 2, 2, 0]
        assert not gaps.is_covered

    def test_partial_pyramid_shortfall(self):
        # A=3, B=1, C=2 -> B must reach 2
        questions = (
            [tag(i, "c1", CognitionLevel.KNOWLEDGE) for i in range(3)]
            + [tag(3, "c1", CognitionLevel.COMPREHENSION)]
            + [tag(i + 4, "c1", CognitionLevel.APPLICATION) for i in range(2)]
        )
        gaps = coverage_gaps(SpecificationTable.from_questions(questions))
        assert gaps.pyramid_shortfall == [0, 1, 0, 0, 0, 0]
        assert gaps.blueprint.targets[("c1", CognitionLevel.COMPREHENSION)] == 1

    def test_repairing_blueprint_actually_repairs(self):
        """Applying the shortfall makes the pyramid hold."""
        table = SpecificationTable.from_questions(
            [
                tag(1, "c1", CognitionLevel.EVALUATION),
                tag(2, "c1", CognitionLevel.KNOWLEDGE),
            ]
        )
        gaps = coverage_gaps(table)
        repaired = [
            have + add
            for have, add in zip(table.level_sums(), gaps.pyramid_shortfall)
        ]
        assert all(
            repaired[i] >= repaired[i + 1] for i in range(len(repaired) - 1)
        )

    def test_pyramid_concept_override(self):
        table = SpecificationTable.from_questions(
            [tag(1, "c9", CognitionLevel.EVALUATION)]
        )
        gaps = coverage_gaps(table, pyramid_concept="remedial")
        assert any(
            concept == "remedial" for concept, _ in gaps.blueprint.targets
        )


class TestRepairExam:
    def stocked_bank(self):
        bank = ItemBank()
        for index, level in enumerate(COGNITIVE_LEVELS):
            for copy in range(3):
                bank.add(mc(f"s-{index}-{copy}", "sorting", level))
                bank.add(mc(f"h-{index}-{copy}", "hashing", level))
        return bank

    def test_repair_adds_missing_concept(self):
        exam = (
            ExamBuilder("e", "E")
            .add_item(mc("own-1", "sorting", CognitionLevel.KNOWLEDGE))
            .build()
        )
        repaired = repair_exam(
            exam, self.stocked_bank(), concepts=["sorting", "hashing"]
        )
        table = repaired.specification_table(concepts=["sorting", "hashing"])
        assert table.lost_concepts() == []
        assert repaired.exam_id == "e-v2"
        assert {item.item_id for item in exam.items} <= {
            item.item_id for item in repaired.items
        }

    def test_repair_restores_pyramid(self):
        exam = (
            ExamBuilder("e", "E")
            .add_item(mc("own-1", "sorting", CognitionLevel.EVALUATION))
            .build()
        )
        repaired = repair_exam(exam, self.stocked_bank(), concepts=["sorting"])
        table = repaired.specification_table(concepts=["sorting"])
        assert table.pyramid_violations() == []

    def test_covered_exam_returned_unchanged(self):
        exam = (
            ExamBuilder("e", "E")
            .add_item(mc("own-1", "sorting", CognitionLevel.KNOWLEDGE))
            .build()
        )
        assert repair_exam(exam, self.stocked_bank(), concepts=["sorting"]) is exam

    def test_insufficient_bank_raises(self):
        exam = (
            ExamBuilder("e", "E")
            .add_item(mc("own-1", "graphs", CognitionLevel.KNOWLEDGE))
            .build()
        )
        with pytest.raises(BlueprintError):
            repair_exam(
                exam, ItemBank(), concepts=["graphs", "never-written"]
            )

    def test_exam_attributes_preserved(self):
        exam = (
            ExamBuilder("e", "E")
            .add_item(mc("own-1", "sorting", CognitionLevel.EVALUATION))
            .time_limit(900)
            .resumable(False)
            .build()
        )
        repaired = repair_exam(exam, self.stocked_bank(), concepts=["sorting"])
        assert repaired.time_limit_seconds == 900
        assert repaired.resumable is False
