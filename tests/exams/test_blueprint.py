"""Tests for blueprint-driven assembly (repro.exams.blueprint)."""

import pytest

from repro.core.cognition import CognitionLevel
from repro.core.errors import BlueprintError
from repro.bank.itembank import ItemBank
from repro.exams.blueprint import Blueprint, assemble
from repro.items.choice import MultipleChoiceItem


def mc(item_id, subject, level, difficulty=None):
    item = MultipleChoiceItem.build(
        item_id,
        f"Question {item_id}?",
        ["right", "wrong1", "wrong2"],
        correct_index=0,
        subject=subject,
        cognition_level=level,
    )
    if difficulty is not None:
        item.metadata.assessment.individual_test.item_difficulty_index = difficulty
    return item


def stocked_bank():
    bank = ItemBank()
    bank.add(mc("s-k-1", "sorting", CognitionLevel.KNOWLEDGE, 0.8))
    bank.add(mc("s-k-2", "sorting", CognitionLevel.KNOWLEDGE, 0.3))
    bank.add(mc("s-c-1", "sorting", CognitionLevel.COMPREHENSION))
    bank.add(mc("h-k-1", "hashing", CognitionLevel.KNOWLEDGE, 0.6))
    bank.add(mc("h-a-1", "hashing", CognitionLevel.APPLICATION, 0.5))
    return bank


class TestBlueprint:
    def test_require_accumulates(self):
        blueprint = (
            Blueprint()
            .require("sorting", CognitionLevel.KNOWLEDGE)
            .require("sorting", CognitionLevel.KNOWLEDGE)
        )
        assert blueprint.targets[("sorting", CognitionLevel.KNOWLEDGE)] == 2
        assert blueprint.total() == 2

    def test_concepts_in_order(self):
        blueprint = (
            Blueprint()
            .require("b", CognitionLevel.KNOWLEDGE)
            .require("a", CognitionLevel.KNOWLEDGE)
        )
        assert blueprint.concepts() == ["b", "a"]

    def test_bad_count_rejected(self):
        with pytest.raises(BlueprintError):
            Blueprint().require("x", CognitionLevel.KNOWLEDGE, count=0)

    def test_empty_concept_rejected(self):
        with pytest.raises(BlueprintError):
            Blueprint().require("", CognitionLevel.KNOWLEDGE)


class TestAssemble:
    def test_satisfiable_blueprint(self):
        blueprint = (
            Blueprint()
            .require("sorting", CognitionLevel.KNOWLEDGE, 2)
            .require("hashing", CognitionLevel.APPLICATION, 1)
        )
        exam = assemble("e", "Exam", stocked_bank(), blueprint)
        ids = {item.item_id for item in exam.items}
        assert ids == {"s-k-1", "s-k-2", "h-a-1"}

    def test_spec_table_of_result_matches_blueprint(self):
        blueprint = (
            Blueprint()
            .require("sorting", CognitionLevel.KNOWLEDGE, 2)
            .require("sorting", CognitionLevel.COMPREHENSION, 1)
        )
        exam = assemble("e", "Exam", stocked_bank(), blueprint)
        table = exam.specification_table()
        assert table.count("sorting", CognitionLevel.KNOWLEDGE) == 2
        assert table.count("sorting", CognitionLevel.COMPREHENSION) == 1

    def test_shortfall_reported_per_cell(self):
        blueprint = (
            Blueprint()
            .require("sorting", CognitionLevel.EVALUATION, 1)
            .require("graphs", CognitionLevel.KNOWLEDGE, 2)
        )
        with pytest.raises(BlueprintError) as excinfo:
            assemble("e", "Exam", stocked_bank(), blueprint)
        message = str(excinfo.value)
        assert "(sorting, Evaluation): need 1, bank has 0" in message
        assert "(graphs, Knowledge): need 2, bank has 0" in message

    def test_difficulty_band_filters(self):
        blueprint = Blueprint().require("sorting", CognitionLevel.KNOWLEDGE, 1)
        exam = assemble(
            "e", "Exam", stocked_bank(), blueprint, difficulty_band=(0.2, 0.4)
        )
        assert exam.items[0].item_id == "s-k-2"

    def test_unrated_items_pass_difficulty_filter(self):
        blueprint = Blueprint().require("sorting", CognitionLevel.COMPREHENSION, 1)
        exam = assemble(
            "e", "Exam", stocked_bank(), blueprint, difficulty_band=(0.0, 0.1)
        )
        assert exam.items[0].item_id == "s-c-1"

    def test_empty_blueprint_rejected(self):
        with pytest.raises(BlueprintError):
            assemble("e", "Exam", stocked_bank(), Blueprint())

    def test_time_limit_forwarded(self):
        blueprint = Blueprint().require("sorting", CognitionLevel.KNOWLEDGE, 1)
        exam = assemble(
            "e", "Exam", stocked_bank(), blueprint, time_limit_seconds=600
        )
        assert exam.time_limit_seconds == 600

    def test_item_not_selected_twice(self):
        bank = ItemBank()
        bank.add(mc("only", "sorting", CognitionLevel.KNOWLEDGE))
        blueprint = Blueprint().require("sorting", CognitionLevel.KNOWLEDGE, 2)
        with pytest.raises(BlueprintError):
            assemble("e", "Exam", bank, blueprint)
