"""Tests for printable exam papers (repro.exams.render)."""

import pytest

from repro.core.metadata import DisplayType
from repro.exams.authoring import ExamBuilder
from repro.exams.render import render_answer_key, render_exam_paper
from repro.items.choice import MultipleChoiceItem
from repro.items.essay import EssayItem
from repro.items.truefalse import TrueFalseItem


def build_exam(display=DisplayType.FIXED_ORDER):
    return (
        ExamBuilder("paper-1", "Midterm Paper")
        .display(display)
        .time_limit(1800)
        .resumable(False)
        .add_item(
            MultipleChoiceItem.build(
                "q1", "Which is a tree?", ["AVL", "queue"], correct_index=0
            )
        )
        .add_item(TrueFalseItem(item_id="q2", question="Heaps are trees.",
                                correct_value=True))
        .add_item(EssayItem(item_id="q3", question="Discuss B-trees."))
        .group("objective", ["q1", "q2"])
        .build()
    )


class TestExamPaper:
    def test_header_content(self):
        paper = render_exam_paper(build_exam())
        assert "Midterm Paper" in paper
        assert "3 questions" in paper
        assert "time limit 30 minutes" in paper
        assert "cannot be resumed" in paper

    def test_resumable_wording(self):
        exam = build_exam()
        exam.resumable = True
        assert "may be paused and resumed" in render_exam_paper(exam)

    def test_items_numbered_in_order(self):
        paper = render_exam_paper(build_exam())
        assert "1. Which is a tree?" in paper
        assert "2. Heaps are trees." in paper
        assert "3. Discuss B-trees." in paper

    def test_group_header_present(self):
        paper = render_exam_paper(build_exam())
        assert "--- objective ---" in paper

    def test_random_order_respects_learner_seed(self):
        exam = build_exam(display=DisplayType.RANDOM_ORDER)
        paper_alice = render_exam_paper(exam, "alice")
        paper_alice_again = render_exam_paper(exam, "alice")
        assert paper_alice == paper_alice_again

    def test_options_rendered(self):
        paper = render_exam_paper(build_exam())
        assert "(A) AVL" in paper
        assert "( ) True    ( ) False" in paper


class TestAnswerKey:
    def test_objective_answers_listed(self):
        key = render_answer_key(build_exam())
        assert "[q1] A" in key
        assert "[q2] true" in key

    def test_subjective_marked_manual(self):
        key = render_answer_key(build_exam())
        assert "[q3] (manually graded)" in key

    def test_numbered_in_authored_order(self):
        key = render_answer_key(build_exam())
        lines = key.splitlines()
        assert lines[1].strip().startswith("1.")
        assert lines[3].strip().startswith("3.")
