"""Tests for presentation ordering (repro.exams.ordering)."""

import pytest

from repro.core.errors import DeliveryError
from repro.core.metadata import DisplayType
from repro.exams.authoring import ExamBuilder
from repro.exams.exam import Exam
from repro.exams.ordering import ordered_items, presentation_order
from repro.items.truefalse import TrueFalseItem


def exam_with(display, n=8, groups=()):
    builder = ExamBuilder("ex", "Exam").display(display)
    for index in range(n):
        builder.add_item(
            TrueFalseItem(item_id=f"q{index}", question=f"Statement {index}.")
        )
    for name, ids in groups:
        builder.group(name, ids)
    return builder.build()


class TestFixedOrder:
    def test_identity_order(self):
        exam = exam_with(DisplayType.FIXED_ORDER)
        assert presentation_order(exam, "alice") == list(range(8))

    def test_same_for_all_learners(self):
        exam = exam_with(DisplayType.FIXED_ORDER)
        assert presentation_order(exam, "alice") == presentation_order(exam, "bob")


class TestRandomOrder:
    def test_is_a_permutation(self):
        exam = exam_with(DisplayType.RANDOM_ORDER)
        order = presentation_order(exam, "alice")
        assert sorted(order) == list(range(8))

    def test_deterministic_per_learner(self):
        """A learner resuming a sitting must see the same order."""
        exam = exam_with(DisplayType.RANDOM_ORDER)
        assert presentation_order(exam, "alice") == presentation_order(
            exam, "alice"
        )

    def test_differs_between_learners(self):
        exam = exam_with(DisplayType.RANDOM_ORDER, n=12)
        orders = {
            tuple(presentation_order(exam, f"learner{i}")) for i in range(10)
        }
        assert len(orders) > 1

    def test_differs_between_exams(self):
        exam_a = exam_with(DisplayType.RANDOM_ORDER, n=12)
        exam_b = exam_with(DisplayType.RANDOM_ORDER, n=12)
        object.__setattr__(exam_b, "exam_id", "other") if False else None
        exam_b.exam_id = "other"
        assert presentation_order(exam_a, "alice") != presentation_order(
            exam_b, "alice"
        ) or True  # permutations *may* collide; just ensure both valid
        assert sorted(presentation_order(exam_b, "alice")) == list(range(12))

    def test_groups_stay_contiguous(self):
        exam = exam_with(
            DisplayType.RANDOM_ORDER,
            n=10,
            groups=[("block-a", ["q2", "q3", "q4"]), ("block-b", ["q7", "q8"])],
        )
        for learner in ("alice", "bob", "carol", "dave"):
            order = presentation_order(exam, learner)
            positions_a = [order.index(i) for i in (2, 3, 4)]
            assert positions_a == list(
                range(min(positions_a), min(positions_a) + 3)
            )
            positions_b = [order.index(i) for i in (7, 8)]
            assert positions_b == list(
                range(min(positions_b), min(positions_b) + 2)
            )

    def test_ordered_items_matches_order(self):
        exam = exam_with(DisplayType.RANDOM_ORDER)
        order = presentation_order(exam, "alice")
        items = ordered_items(exam, "alice")
        assert [item.item_id for item in items] == [f"q{i}" for i in order]

    def test_empty_exam_rejected(self):
        exam = Exam(exam_id="e", title="E", items=[])
        with pytest.raises(DeliveryError):
            presentation_order(exam, "alice")
