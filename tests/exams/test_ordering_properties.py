"""Property-based tests for presentation ordering (repro.exams.ordering)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metadata import DisplayType
from repro.exams.authoring import ExamBuilder
from repro.exams.ordering import presentation_order
from repro.items.truefalse import TrueFalseItem


def build_exam(n, group_spec, display=DisplayType.RANDOM_ORDER):
    builder = ExamBuilder("prop", "Property exam").display(display)
    for index in range(n):
        builder.add_item(
            TrueFalseItem(item_id=f"q{index}", question=f"Statement {index}.")
        )
    for name, ids in group_spec:
        builder.group(name, ids)
    return builder.build()


@st.composite
def exam_shapes(draw):
    """An exam size plus a valid, non-overlapping grouping of its items."""
    n = draw(st.integers(min_value=2, max_value=14))
    indices = list(range(n))
    groups = []
    position = 0
    group_number = 0
    while position < n:
        take = draw(st.integers(min_value=1, max_value=4))
        block = indices[position : position + take]
        position += take
        if len(block) >= 2 and draw(st.booleans()):
            groups.append(
                (f"g{group_number}", [f"q{i}" for i in block])
            )
            group_number += 1
    return n, groups


class TestOrderingProperties:
    @settings(max_examples=60, deadline=None)
    @given(shape=exam_shapes(), learner=st.text(min_size=1, max_size=12))
    def test_always_a_permutation(self, shape, learner):
        n, groups = shape
        exam = build_exam(n, groups)
        order = presentation_order(exam, learner)
        assert sorted(order) == list(range(n))

    @settings(max_examples=60, deadline=None)
    @given(shape=exam_shapes(), learner=st.text(min_size=1, max_size=12))
    def test_deterministic_per_learner(self, shape, learner):
        n, groups = shape
        exam = build_exam(n, groups)
        assert presentation_order(exam, learner) == presentation_order(
            exam, learner
        )

    @settings(max_examples=60, deadline=None)
    @given(shape=exam_shapes(), learner=st.text(min_size=1, max_size=12))
    def test_groups_always_contiguous(self, shape, learner):
        n, groups = shape
        exam = build_exam(n, groups)
        order = presentation_order(exam, learner)
        for _, ids in groups:
            positions = sorted(order.index(int(item_id[1:])) for item_id in ids)
            assert positions == list(
                range(positions[0], positions[0] + len(positions))
            )

    @settings(max_examples=30, deadline=None)
    @given(shape=exam_shapes())
    def test_fixed_order_ignores_learner(self, shape):
        n, groups = shape
        exam = build_exam(n, groups, display=DisplayType.FIXED_ORDER)
        assert presentation_order(exam, "a") == list(range(n))
        assert presentation_order(exam, "b") == list(range(n))

    @settings(max_examples=30, deadline=None)
    @given(
        shape=exam_shapes(),
        learners=st.lists(
            st.text(min_size=1, max_size=8), min_size=2, max_size=6,
            unique=True,
        ),
    )
    def test_group_internal_order_preserved(self, shape, learners):
        """Within a group, items keep their authored relative order."""
        n, groups = shape
        exam = build_exam(n, groups)
        for learner in learners:
            order = presentation_order(exam, learner)
            for _, ids in groups:
                numeric = [int(item_id[1:]) for item_id in ids]
                positions = [order.index(i) for i in numeric]
                assert positions == sorted(positions)
