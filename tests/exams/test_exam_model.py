"""Tests for the exam model and builder (repro.exams)."""

import pytest

from repro.core.cognition import CognitionLevel
from repro.core.errors import (
    AuthoringError,
    DuplicateIdError,
    NotFoundError,
)
from repro.core.metadata import DisplayType
from repro.bank.itembank import ItemBank
from repro.exams.authoring import ExamBuilder
from repro.exams.exam import Exam, ExamGroup
from repro.items.choice import MultipleChoiceItem
from repro.items.essay import EssayItem
from repro.items.truefalse import TrueFalseItem


def mc(item_id, subject="sorting", level=CognitionLevel.KNOWLEDGE):
    return MultipleChoiceItem.build(
        item_id,
        f"Question {item_id}?",
        ["right", "wrong1", "wrong2"],
        correct_index=0,
        subject=subject,
        cognition_level=level,
    )


class TestExamBuilder:
    def test_fluent_construction(self):
        exam = (
            ExamBuilder("mid", "Midterm")
            .add_item(mc("q1"))
            .add_item(mc("q2"))
            .group("part-a", ["q1", "q2"])
            .time_limit(1800)
            .display(DisplayType.RANDOM_ORDER)
            .resumable(False)
            .build()
        )
        assert exam.exam_id == "mid"
        assert len(exam.items) == 2
        assert exam.groups[0].name == "part-a"
        assert exam.time_limit_seconds == 1800
        assert exam.display_type is DisplayType.RANDOM_ORDER
        assert exam.resumable is False

    def test_add_from_bank(self):
        bank = ItemBank()
        bank.add(mc("q1"))
        bank.add(mc("q2"))
        exam = ExamBuilder("e", "E").add_from_bank(bank, "q1", "q2").build()
        assert [item.item_id for item in exam.items] == ["q1", "q2"]

    def test_combine_bank_and_own_items(self):
        """§5: 'instructors can combine their own problems with the
        problems from database'."""
        bank = ItemBank()
        bank.add(mc("from-bank"))
        exam = (
            ExamBuilder("e", "E")
            .add_from_bank(bank, "from-bank")
            .add_item(mc("own-item"))
            .build()
        )
        assert len(exam.items) == 2

    def test_duplicate_item_rejected(self):
        builder = ExamBuilder("e", "E").add_item(mc("q1"))
        with pytest.raises(DuplicateIdError):
            builder.add_item(mc("q1"))

    def test_group_unknown_item_rejected(self):
        builder = ExamBuilder("e", "E").add_item(mc("q1"))
        with pytest.raises(AuthoringError):
            builder.group("g", ["ghost"])

    def test_duplicate_group_rejected(self):
        builder = ExamBuilder("e", "E").add_item(mc("q1")).group("g", ["q1"])
        with pytest.raises(DuplicateIdError):
            builder.group("g", ["q1"])

    def test_empty_exam_rejected_at_build(self):
        with pytest.raises(AuthoringError):
            ExamBuilder("e", "E").build()

    def test_bad_time_limit_rejected(self):
        with pytest.raises(AuthoringError):
            ExamBuilder("e", "E").time_limit(0)

    def test_empty_ids_rejected(self):
        with pytest.raises(AuthoringError):
            ExamBuilder("", "E")
        with pytest.raises(AuthoringError):
            ExamBuilder("e", "")


class TestExamValidation:
    def test_item_in_two_groups_rejected(self):
        exam = Exam(
            exam_id="e",
            title="E",
            items=[mc("q1")],
            groups=[
                ExamGroup(name="g1", item_ids=["q1"]),
                ExamGroup(name="g2", item_ids=["q1"]),
            ],
        )
        with pytest.raises(AuthoringError):
            exam.validate()

    def test_group_with_duplicate_items_rejected(self):
        with pytest.raises(AuthoringError):
            ExamGroup(name="g", item_ids=["q1", "q1"])

    def test_group_referencing_missing_item_rejected(self):
        exam = Exam(
            exam_id="e",
            title="E",
            items=[mc("q1")],
            groups=[ExamGroup(name="g", item_ids=["ghost"])],
        )
        with pytest.raises(NotFoundError):
            exam.validate()

    def test_metadata_synced(self):
        exam = Exam(
            exam_id="e",
            title="Final",
            items=[mc("q1")],
            time_limit_seconds=900,
        )
        assert exam.metadata.general.identifier == "e"
        assert exam.metadata.general.title == "Final"
        assert exam.metadata.assessment.exam.test_time_seconds == 900


class TestExamViews:
    def build(self):
        return (
            ExamBuilder("e", "E")
            .add_item(mc("q1"))
            .add_item(TrueFalseItem(item_id="q2", question="X?", subject="s"))
            .add_item(EssayItem(item_id="q3", question="Discuss.", max_points=5))
            .group("g", ["q1", "q2"])
            .build()
        )

    def test_item_lookup(self):
        exam = self.build()
        assert exam.item("q2").item_id == "q2"
        with pytest.raises(NotFoundError):
            exam.item("ghost")

    def test_item_index(self):
        exam = self.build()
        assert exam.item_index("q3") == 2

    def test_objective_items(self):
        exam = self.build()
        # essay without model answer is subjective
        assert [i.item_id for i in exam.objective_items()] == ["q1", "q2"]

    def test_max_score_counts_points(self):
        exam = self.build()
        # q1: 1, q2: 1, q3 (essay): 5
        assert exam.max_score() == 7.0

    def test_group_of(self):
        exam = self.build()
        assert exam.group_of("q1").name == "g"
        assert exam.group_of("q3") is None

    def test_question_specs_cover_choice_styles_only(self):
        exam = self.build()
        specs = exam.question_specs()
        assert len(specs) == 2
        assert specs[0].options == ("A", "B", "C")  # option labels
        assert specs[0].correct == "A"
        assert specs[1].options == ("true", "false")
        assert [i.item_id for i in exam.analyzable_items()] == ["q1", "q2"]

    def test_specification_table_from_tags(self):
        exam = (
            ExamBuilder("e", "E")
            .add_item(mc("q1", subject="sorting", level=CognitionLevel.KNOWLEDGE))
            .add_item(mc("q2", subject="hashing", level=CognitionLevel.ANALYSIS))
            .build()
        )
        table = exam.specification_table(concepts=["sorting", "hashing", "trees"])
        assert table.count("sorting", CognitionLevel.KNOWLEDGE) == 1
        assert table.lost_concepts() == ["trees"]

    def test_untagged_items_excluded_from_spec_table(self):
        exam = (
            ExamBuilder("e", "E")
            .add_item(TrueFalseItem(item_id="q1", question="X?"))
            .build()
        )
        assert exam.specification_table().total() == 0
