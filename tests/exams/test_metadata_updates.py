"""Tests for statistics write-back (repro.exams.metadata_updates)."""

import pytest

from repro.core.errors import AnalysisError
from repro.core.question_analysis import (
    ExamineeResponses,
    analyze_cohort,
)
from repro.bank.search import Query, search
from repro.bank.itembank import ItemBank
from repro.exams.authoring import ExamBuilder
from repro.exams.metadata_updates import write_back_statistics
from repro.items.choice import MultipleChoiceItem
from repro.items.essay import EssayItem


def exam_and_cohort():
    exam = (
        ExamBuilder("wb", "Write-back exam")
        .add_item(
            MultipleChoiceItem.build("q1", "Easy?", ["a", "b"], correct_index=0)
        )
        .add_item(
            MultipleChoiceItem.build("q2", "Hard?", ["a", "b"], correct_index=0)
        )
        .add_item(EssayItem(item_id="q3", question="Discuss."))
        .build()
    )
    responses = []
    for index in range(16):
        q1 = "A" if index < 14 else "B"  # easy
        q2 = "A" if index < 6 else "B"  # harder
        responses.append(ExamineeResponses.of(f"s{index:02d}", [q1, q2]))
    cohort = analyze_cohort(responses, exam.question_specs())
    return exam, cohort


class TestWriteBack:
    def test_items_updated(self):
        exam, cohort = exam_and_cohort()
        updated = write_back_statistics(exam, cohort)
        assert updated == 2  # the two analyzable items
        q1 = exam.item("q1").metadata.assessment.individual_test
        q2 = exam.item("q2").metadata.assessment.individual_test
        assert q1.item_difficulty_index > q2.item_difficulty_index
        assert q1.item_discrimination_index is not None
        assert q1.distraction  # distraction summary recorded

    def test_essay_untouched(self):
        exam, cohort = exam_and_cohort()
        write_back_statistics(exam, cohort)
        q3 = exam.item("q3").metadata.assessment.individual_test
        assert q3.item_difficulty_index is None

    def test_average_time_written(self):
        exam, cohort = exam_and_cohort()
        write_back_statistics(exam, cohort, durations_seconds=[100, 200, 300])
        assert exam.metadata.assessment.exam.average_time_seconds == 200.0

    def test_isi_mean_written(self):
        exam, cohort = exam_and_cohort()
        write_back_statistics(
            exam,
            cohort,
            instructional_sensitivity={"q1": 0.4, "q2": 0.2, "ghost": 9.9},
        )
        assert exam.metadata.assessment.exam.instructional_sensitivity_index == (
            pytest.approx(0.3)
        )

    def test_mismatched_cohort_rejected(self):
        exam, _ = exam_and_cohort()
        other = (
            ExamBuilder("other", "Other")
            .add_item(
                MultipleChoiceItem.build("x", "X?", ["a", "b"], correct_index=0)
            )
            .build()
        )
        responses = [
            ExamineeResponses.of(f"s{i}", ["A" if i < 4 else "B"])
            for i in range(8)
        ]
        small_cohort = analyze_cohort(responses, other.question_specs())
        with pytest.raises(AnalysisError):
            write_back_statistics(exam, small_cohort)

    def test_write_back_enables_difficulty_search(self):
        """The full loop: administer -> write back -> search the bank by
        measured difficulty."""
        exam, cohort = exam_and_cohort()
        write_back_statistics(exam, cohort)
        bank = ItemBank()
        for item in exam.items:
            bank.add(item)
        easy = search(bank, Query().with_difficulty(0.6, 1.0))
        assert [item.item_id for item in easy] == ["q1"]
