"""Property/fuzz tests for the CMI data model and API adapter.

Random element names and values must never crash the data model — every
call resolves to a SCORM error code.  Random API call sequences must
keep the adapter's state machine consistent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scorm.api import ApiAdapter, ApiState
from repro.scorm.datamodel import CmiDataModel
from repro.scorm.errors import ScormError

ELEMENTS = st.one_of(
    st.text(max_size=40),
    st.sampled_from(
        [
            "cmi.core.lesson_status",
            "cmi.core.score.raw",
            "cmi.core.student_id",
            "cmi.core.exit",
            "cmi.core._children",
            "cmi.interactions._count",
            "cmi.interactions.0.id",
            "cmi.interactions.0.type",
            "cmi.interactions.99.id",
            "cmi.objectives.0.id",
            "cmi.objectives.0.score.raw",
            "cmi.suspend_data",
        ]
    ),
)
VALUES = st.one_of(
    st.text(max_size=40),
    st.sampled_from(["passed", "failed", "85", "suspend", "choice", "true"]),
)


class TestDataModelFuzz:
    @settings(max_examples=150, deadline=None)
    @given(element=ELEMENTS)
    def test_get_always_returns_code(self, element):
        value, error = CmiDataModel().get(element)
        assert isinstance(value, str)
        assert error in set(ScormError)

    @settings(max_examples=150, deadline=None)
    @given(element=ELEMENTS, value=VALUES)
    def test_set_always_returns_code(self, element, value):
        assert CmiDataModel().set(element, value) in set(ScormError)

    @settings(max_examples=60, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(st.booleans(), ELEMENTS, VALUES), max_size=30
        )
    )
    def test_random_sequences_keep_invariants(self, operations):
        model = CmiDataModel(student_id="s")
        for is_set, element, value in operations:
            if is_set:
                model.set(element, value)
            else:
                model.get(element)
        # invariants: counts match collection lengths; snapshot builds
        count, error = model.get("cmi.interactions._count")
        assert error is ScormError.NO_ERROR
        assert int(count) == len(model.interactions())
        snapshot = model.snapshot()
        assert "core" in snapshot
        # lesson_status stays within the vocabulary
        status, _ = model.get("cmi.core.lesson_status")
        assert status in (
            "passed", "completed", "failed", "incomplete", "browsed",
            "not attempted",
        )


class TestApiFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        calls=st.lists(
            st.sampled_from(
                ["init", "finish", "commit", "get", "set", "error"]
            ),
            max_size=25,
        )
    )
    def test_random_call_sequences(self, calls):
        api = ApiAdapter()
        for call in calls:
            if call == "init":
                api.LMSInitialize("")
            elif call == "finish":
                api.LMSFinish("")
            elif call == "commit":
                api.LMSCommit("")
            elif call == "get":
                api.LMSGetValue("cmi.core.lesson_status")
            elif call == "set":
                api.LMSSetValue("cmi.core.lesson_status", "passed")
            else:
                code = api.LMSGetLastError()
                assert code.isdigit()
                api.LMSGetErrorString(code)
        # the state machine only ever occupies its three states
        assert api.state in set(ApiState)
        # a finished adapter refuses further data transfer
        if api.state is ApiState.FINISHED:
            assert api.LMSSetValue("cmi.core.lesson_status", "failed") == "false"
