"""Tests for the SCORM API adapter (repro.scorm.api) and RTE launch."""

import pytest

from repro.core.errors import DeliveryError
from repro.scorm.api import ApiAdapter, ApiState
from repro.scorm.datamodel import CmiDataModel
from repro.scorm.errors import ScormError
from repro.scorm.rte import RunTimeEnvironment


class TestApiStateMachine:
    def test_initial_state(self):
        assert ApiAdapter().state is ApiState.NOT_INITIALIZED

    def test_initialize(self):
        api = ApiAdapter()
        assert api.LMSInitialize("") == "true"
        assert api.state is ApiState.RUNNING
        assert api.LMSGetLastError() == "0"

    def test_double_initialize_fails(self):
        api = ApiAdapter()
        api.LMSInitialize("")
        assert api.LMSInitialize("") == "false"
        assert api.LMSGetLastError() == str(int(ScormError.GENERAL_EXCEPTION))

    def test_initialize_with_parameter_fails(self):
        api = ApiAdapter()
        assert api.LMSInitialize("junk") == "false"
        assert api.LMSGetLastError() == str(int(ScormError.INVALID_ARGUMENT))

    def test_get_before_initialize(self):
        api = ApiAdapter()
        assert api.LMSGetValue("cmi.core.lesson_status") == ""
        assert api.LMSGetLastError() == str(int(ScormError.NOT_INITIALIZED))

    def test_set_before_initialize(self):
        api = ApiAdapter()
        assert api.LMSSetValue("cmi.core.lesson_status", "passed") == "false"
        assert api.LMSGetLastError() == str(int(ScormError.NOT_INITIALIZED))

    def test_commit_before_initialize(self):
        api = ApiAdapter()
        assert api.LMSCommit("") == "false"

    def test_finish(self):
        api = ApiAdapter()
        api.LMSInitialize("")
        assert api.LMSFinish("") == "true"
        assert api.state is ApiState.FINISHED

    def test_finish_before_initialize(self):
        assert ApiAdapter().LMSFinish("") == "false"

    def test_no_calls_after_finish(self):
        api = ApiAdapter()
        api.LMSInitialize("")
        api.LMSFinish("")
        assert api.LMSSetValue("cmi.core.lesson_status", "passed") == "false"
        assert api.LMSGetValue("cmi.core.lesson_status") == ""


class TestDataTransfer:
    def make_running(self):
        api = ApiAdapter(CmiDataModel(student_id="s1", student_name="Ada"))
        api.LMSInitialize("")
        return api

    def test_get_set_round_trip(self):
        api = self.make_running()
        assert api.LMSSetValue("cmi.core.lesson_status", "completed") == "true"
        assert api.LMSGetValue("cmi.core.lesson_status") == "completed"

    def test_get_student_identity(self):
        api = self.make_running()
        assert api.LMSGetValue("cmi.core.student_id") == "s1"
        assert api.LMSGetValue("cmi.core.student_name") == "Ada"

    def test_set_error_propagates(self):
        api = self.make_running()
        assert api.LMSSetValue("cmi.core.student_id", "x") == "false"
        assert api.LMSGetLastError() == str(int(ScormError.ELEMENT_IS_READ_ONLY))

    def test_get_error_returns_empty(self):
        api = self.make_running()
        assert api.LMSGetValue("cmi.unknown") == ""
        assert api.LMSGetLastError() == str(int(ScormError.INVALID_ARGUMENT))

    def test_error_string(self):
        api = self.make_running()
        assert api.LMSGetErrorString("403") == "Element is read only"
        assert api.LMSGetErrorString("0") == "No error"
        assert api.LMSGetErrorString("999") == ""
        assert api.LMSGetErrorString("junk") == ""

    def test_diagnostic(self):
        api = ApiAdapter()
        api.LMSInitialize("")
        api.LMSInitialize("")  # error with diagnostic
        assert "twice" in api.LMSGetDiagnostic("101")
        assert api.LMSGetDiagnostic("junk") == ""


class TestCommit:
    def test_commit_invokes_callback(self):
        snapshots = []
        api = ApiAdapter(on_commit=snapshots.append)
        api.LMSInitialize("")
        api.LMSSetValue("cmi.core.lesson_status", "passed")
        assert api.LMSCommit("") == "true"
        assert len(snapshots) == 1
        assert snapshots[0]["core"]["lesson_status"] == "passed"

    def test_finish_also_commits(self):
        snapshots = []
        api = ApiAdapter(on_commit=snapshots.append)
        api.LMSInitialize("")
        api.LMSFinish("")
        assert len(snapshots) == 1

    def test_commit_with_parameter_fails(self):
        api = ApiAdapter()
        api.LMSInitialize("")
        assert api.LMSCommit("junk") == "false"


class TestRunTimeEnvironment:
    def test_launch_fresh_attempt(self):
        rte = RunTimeEnvironment()
        api = rte.launch("s1", "exam-1", learner_name="Ada")
        assert api.LMSInitialize("") == "true"
        assert api.LMSGetValue("cmi.core.entry") == "ab-initio"
        assert rte.record("s1", "exam-1").attempts == 1

    def test_commit_persists_snapshot(self):
        rte = RunTimeEnvironment()
        api = rte.launch("s1", "exam-1")
        api.LMSInitialize("")
        api.LMSSetValue("cmi.core.score.raw", "80")
        api.LMSSetValue("cmi.core.lesson_status", "passed")
        api.LMSFinish("")
        record = rte.record("s1", "exam-1")
        assert record.lesson_status == "passed"
        assert record.score_raw == 80.0
        assert record.commits == 1

    def test_suspend_and_resume(self):
        rte = RunTimeEnvironment()
        first = rte.launch("s1", "exam-1")
        first.LMSInitialize("")
        first.LMSSetValue("cmi.suspend_data", "q=3")
        first.LMSSetValue("cmi.core.exit", "suspend")
        first.LMSFinish("")
        second = rte.launch("s1", "exam-1")
        second.LMSInitialize("")
        assert second.LMSGetValue("cmi.core.entry") == "resume"
        assert second.LMSGetValue("cmi.suspend_data") == "q=3"
        assert rte.record("s1", "exam-1").attempts == 2

    def test_normal_exit_does_not_resume(self):
        rte = RunTimeEnvironment()
        first = rte.launch("s1", "exam-1")
        first.LMSInitialize("")
        first.LMSSetValue("cmi.suspend_data", "q=3")
        first.LMSFinish("")
        second = rte.launch("s1", "exam-1")
        second.LMSInitialize("")
        assert second.LMSGetValue("cmi.core.entry") == "ab-initio"
        assert second.LMSGetValue("cmi.suspend_data") == ""

    def test_concurrent_launch_rejected(self):
        rte = RunTimeEnvironment()
        api = rte.launch("s1", "exam-1")
        api.LMSInitialize("")
        with pytest.raises(DeliveryError):
            rte.launch("s1", "exam-1")

    def test_relaunch_after_finish_allowed(self):
        rte = RunTimeEnvironment()
        api = rte.launch("s1", "exam-1")
        api.LMSInitialize("")
        api.LMSFinish("")
        rte.launch("s1", "exam-1")  # no error

    def test_different_learners_independent(self):
        rte = RunTimeEnvironment()
        api1 = rte.launch("s1", "exam-1")
        api2 = rte.launch("s2", "exam-1")
        api1.LMSInitialize("")
        api2.LMSInitialize("")
        assert len(rte.active_attempts()) == 2

    def test_records_listing(self):
        rte = RunTimeEnvironment()
        rte.launch("s1", "exam-1")
        rte.launch("s2", "exam-1")
        assert len(rte.all_records()) == 2
