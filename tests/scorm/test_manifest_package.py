"""Tests for imsmanifest.xml and content packaging (repro.scorm)."""

import zipfile
import io

import pytest

from repro.core.cognition import CognitionLevel
from repro.core.errors import ManifestError, NotFoundError, PackagingError
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.items.essay import EssayItem
from repro.scorm.manifest import (
    Manifest,
    ManifestItem,
    Organization,
    Resource,
    manifest_from_xml,
    manifest_to_xml,
)
from repro.scorm.package import (
    API_WRAPPER_JS,
    ContentPackage,
    extract_exam,
    package_exam,
)
from repro.scorm.repository import PackageRepository


def sample_manifest():
    return Manifest(
        identifier="pkg-1",
        organizations=[
            Organization(
                identifier="org-1",
                title="Course",
                items=[
                    ManifestItem(
                        identifier="item-1",
                        title="Lesson 1",
                        identifierref="res-1",
                    ),
                    ManifestItem(
                        identifier="chapter-1",
                        title="Chapter",
                        children=[
                            ManifestItem(
                                identifier="item-2",
                                title="Lesson 2",
                                identifierref="res-2",
                            )
                        ],
                    ),
                ],
            )
        ],
        resources=[
            Resource(
                identifier="res-1",
                href="lesson1.html",
                scorm_type="sco",
                metadata_href="lesson1.metadata.xml",
            ),
            Resource(
                identifier="res-2",
                href="lesson2.html",
                scorm_type="asset",
                dependencies=["res-1"],
            ),
        ],
        default_organization="org-1",
    )


class TestManifestModel:
    def test_validates(self):
        sample_manifest().validate()

    def test_walk(self):
        manifest = sample_manifest()
        identifiers = [item.identifier for item in manifest.organizations[0].walk()]
        assert identifiers == ["item-1", "chapter-1", "item-2"]

    def test_dangling_identifierref_rejected(self):
        manifest = sample_manifest()
        manifest.organizations[0].items[0].identifierref = "ghost"
        with pytest.raises(ManifestError):
            manifest.validate()

    def test_duplicate_resources_rejected(self):
        manifest = sample_manifest()
        manifest.resources.append(manifest.resources[0])
        with pytest.raises(ManifestError):
            manifest.validate()

    def test_missing_default_org_rejected(self):
        manifest = sample_manifest()
        manifest.default_organization = "ghost"
        with pytest.raises(ManifestError):
            manifest.validate()

    def test_dangling_dependency_rejected(self):
        manifest = sample_manifest()
        manifest.resources[1].dependencies = ["ghost"]
        with pytest.raises(ManifestError):
            manifest.validate()

    def test_leaf_with_children_rejected(self):
        with pytest.raises(ManifestError):
            ManifestItem(
                identifier="x",
                title="t",
                identifierref="res",
                children=[ManifestItem(identifier="y", title="u")],
            )

    def test_bad_scormtype_rejected(self):
        with pytest.raises(ManifestError):
            Resource(identifier="r", href="f.html", scorm_type="thing")

    def test_href_always_in_files(self):
        resource = Resource(identifier="r", href="main.html", files=["extra.css"])
        assert resource.files[0] == "main.html"

    def test_all_files(self):
        manifest = sample_manifest()
        files = manifest.all_files()
        assert "lesson1.html" in files
        assert "lesson1.metadata.xml" in files

    def test_resource_lookup(self):
        manifest = sample_manifest()
        assert manifest.resource("res-1").href == "lesson1.html"
        with pytest.raises(ManifestError):
            manifest.resource("ghost")


class TestManifestXml:
    def test_round_trip(self):
        original = sample_manifest()
        restored = manifest_from_xml(manifest_to_xml(original))
        restored.validate()
        assert restored.identifier == "pkg-1"
        assert restored.default_organization == "org-1"
        assert len(restored.organizations) == 1
        assert restored.organizations[0].items[1].children[0].identifier == "item-2"
        assert restored.resource("res-1").scorm_type == "sco"
        assert restored.resource("res-1").metadata_href == "lesson1.metadata.xml"
        assert restored.resource("res-2").dependencies == ["res-1"]

    def test_xml_has_scorm_markers(self):
        xml = manifest_to_xml(sample_manifest())
        assert "ADL SCORM" in xml
        assert "adlcp:scormtype" in xml
        assert "imsmanifest" not in xml  # file name, not content

    def test_malformed_rejected(self):
        with pytest.raises(ManifestError):
            manifest_from_xml("<manifest")

    def test_wrong_root_rejected(self):
        with pytest.raises(ManifestError):
            manifest_from_xml("<other/>")


def sample_exam():
    return (
        ExamBuilder("final-04", "Final Exam 2004")
        .add_item(
            MultipleChoiceItem.build(
                "q1",
                "Which layer routes packets?",
                ["network", "transport", "session"],
                correct_index=0,
                subject="networking",
                cognition_level=CognitionLevel.KNOWLEDGE,
            )
        )
        .add_item(
            MultipleChoiceItem.build(
                "q2",
                "Which protocol is connectionless?",
                ["UDP", "TCP"],
                correct_index=0,
                subject="networking",
                cognition_level=CognitionLevel.COMPREHENSION,
            )
        )
        .add_item(EssayItem(item_id="q3", question="Explain congestion control."))
        .group("choices", ["q1", "q2"])
        .time_limit(1800)
        .build()
    )


class TestPackageExam:
    def test_package_is_valid_zip_with_manifest(self):
        data = package_exam(sample_exam())
        archive = zipfile.ZipFile(io.BytesIO(data))
        names = archive.namelist()
        assert "imsmanifest.xml" in names
        assert "exam.json" in names
        assert "APIWrapper.js" in names

    def test_every_item_has_qti_and_metadata_files(self):
        """§5.5: each file has a descriptive xml file at the same level."""
        data = package_exam(sample_exam())
        names = set(zipfile.ZipFile(io.BytesIO(data)).namelist())
        for item_id in ("q1", "q2", "q3"):
            assert f"items/{item_id}.xml" in names
            assert f"items/{item_id}.metadata.xml" in names

    def test_api_wrapper_contains_scorm_calls(self):
        for call in ("LMSInitialize", "LMSFinish", "LMSGetValue",
                     "LMSSetValue", "LMSCommit", "LMSGetLastError"):
            assert call in API_WRAPPER_JS

    def test_content_package_validates(self):
        package = ContentPackage(package_exam(sample_exam()))
        assert package.manifest.identifier == "pkg-final-04"
        assert package.manifest.default_organization == "org-1"

    def test_groups_appear_in_course_structure(self):
        package = ContentPackage(package_exam(sample_exam()))
        identifiers = [
            item.identifier
            for item in package.manifest.organizations[0].walk()
        ]
        assert "group-choices" in identifiers
        assert "item-q3" in identifiers  # loose item

    def test_extract_exam_round_trip(self):
        exam = sample_exam()
        restored = extract_exam(ContentPackage(package_exam(exam)))
        assert restored.exam_id == exam.exam_id
        assert [item.item_id for item in restored.items] == ["q1", "q2", "q3"]
        assert restored.time_limit_seconds == 1800
        assert restored.groups[0].name == "choices"

    def test_package_written_to_file(self, tmp_path):
        path = tmp_path / "exam.zip"
        package_exam(sample_exam(), path)
        assert path.exists()
        ContentPackage.from_file(path)

    def test_bad_zip_rejected(self):
        with pytest.raises(PackagingError):
            ContentPackage(b"not a zip")

    def test_zip_without_manifest_rejected(self):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("readme.txt", "hello")
        with pytest.raises(PackagingError):
            ContentPackage(buffer.getvalue())

    def test_missing_referenced_file_rejected(self):
        data = package_exam(sample_exam())
        source = zipfile.ZipFile(io.BytesIO(data))
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as target:
            for name in source.namelist():
                if name != "items/q1.xml":
                    target.writestr(name, source.read(name))
        with pytest.raises(PackagingError):
            ContentPackage(buffer.getvalue())

    def test_read_missing_file(self):
        package = ContentPackage(package_exam(sample_exam()))
        with pytest.raises(PackagingError):
            package.read("ghost.txt")


class TestRepository:
    def test_publish_and_fetch(self, tmp_path):
        repository = PackageRepository(tmp_path / "repo")
        entry = repository.publish(sample_exam())
        assert entry.identifier == "final-04"
        assert entry.item_count == 3
        assert "final-04" in repository
        fetched = repository.fetch_exam("final-04")
        assert fetched.title == "Final Exam 2004"

    def test_catalog_listing(self, tmp_path):
        repository = PackageRepository(tmp_path / "repo")
        repository.publish(sample_exam())
        entries = repository.list_entries()
        assert len(entries) == 1
        assert entries[0].title == "Final Exam 2004"

    def test_duplicate_publish_rejected(self, tmp_path):
        from repro.core.errors import DuplicateIdError

        repository = PackageRepository(tmp_path / "repo")
        repository.publish(sample_exam())
        with pytest.raises(DuplicateIdError):
            repository.publish(sample_exam())

    def test_fetch_missing_rejected(self, tmp_path):
        repository = PackageRepository(tmp_path / "repo")
        with pytest.raises(NotFoundError):
            repository.fetch("ghost")

    def test_remove(self, tmp_path):
        repository = PackageRepository(tmp_path / "repo")
        repository.publish(sample_exam())
        repository.remove("final-04")
        assert len(repository) == 0
        with pytest.raises(NotFoundError):
            repository.remove("final-04")

    def test_publish_external_package(self, tmp_path):
        repository = PackageRepository(tmp_path / "repo")
        data = package_exam(sample_exam())
        repository.publish_package("imported-1", data, title="Imported")
        assert "imported-1" in repository
        package = repository.fetch("imported-1")
        assert package.manifest.identifier == "pkg-final-04"

    def test_publish_invalid_external_rejected(self, tmp_path):
        repository = PackageRepository(tmp_path / "repo")
        with pytest.raises(PackagingError):
            repository.publish_package("bad", b"junk")

    def test_catalog_persists_across_instances(self, tmp_path):
        root = tmp_path / "repo"
        PackageRepository(root).publish(sample_exam())
        reopened = PackageRepository(root)
        assert "final-04" in reopened
