"""Tests for the course hierarchy (repro.scorm.course)."""

import pytest

from repro.core.errors import AuthoringError, NotFoundError
from repro.scorm.course import (
    Block,
    Course,
    Sco,
    course_to_organization,
    organization_to_course,
)
from repro.scorm.manifest import (
    Manifest,
    Resource,
    manifest_from_xml,
    manifest_to_xml,
)


def sample_course():
    course = Course(course_id="cs101", title="Intro to CS")
    chapter1 = Block(block_id="ch1", title="Chapter 1")
    chapter1.add(Sco(sco_id="lesson-1-1", title="Variables", resource_id="res-a"))
    chapter1.add(Sco(sco_id="lesson-1-2", title="Loops", resource_id="res-b",
                     mastery_score=70.0))
    chapter2 = Block(block_id="ch2", title="Chapter 2")
    chapter2.add(Sco(sco_id="lesson-2-1", title="Functions", resource_id="res-c"))
    course.root.add(chapter1)
    course.root.add(chapter2)
    course.root.add(Sco(sco_id="final-exam", title="Final", resource_id="res-d"))
    return course


class TestCourseModel:
    def test_scos_in_document_order(self):
        course = sample_course()
        assert [sco.sco_id for sco in course.scos()] == [
            "lesson-1-1",
            "lesson-1-2",
            "lesson-2-1",
            "final-exam",
        ]

    def test_blocks(self):
        assert [b.block_id for b in sample_course().blocks()] == ["ch1", "ch2"]

    def test_find_sco(self):
        course = sample_course()
        assert course.find_sco("lesson-2-1").title == "Functions"
        with pytest.raises(NotFoundError):
            course.find_sco("ghost")

    def test_validate_ok(self):
        sample_course().validate()

    def test_duplicate_ids_rejected(self):
        course = sample_course()
        course.root.add(Sco(sco_id="lesson-1-1", title="dup", resource_id="x"))
        with pytest.raises(AuthoringError):
            course.validate()

    def test_empty_course_rejected(self):
        with pytest.raises(AuthoringError):
            Course(course_id="empty", title="Empty").validate()

    def test_bad_mastery_score_rejected(self):
        with pytest.raises(AuthoringError):
            Sco(sco_id="s", title="t", mastery_score=150)

    def test_empty_ids_rejected(self):
        with pytest.raises(AuthoringError):
            Sco(sco_id="", title="t")
        with pytest.raises(AuthoringError):
            Block(block_id="", title="t")
        with pytest.raises(AuthoringError):
            Course(course_id="", title="t")


class TestOrganizationMapping:
    def test_course_to_organization_structure(self):
        organization = course_to_organization(sample_course())
        assert organization.identifier == "org-cs101"
        assert len(organization.items) == 3  # ch1, ch2, final-exam
        chapter1 = organization.items[0]
        assert chapter1.identifier == "item-ch1"
        assert len(chapter1.children) == 2
        assert chapter1.children[0].identifierref == "res-a"

    def test_round_trip(self):
        original = sample_course()
        organization = course_to_organization(original)
        restored = organization_to_course(organization)
        assert restored.course_id == "cs101"
        assert [sco.sco_id for sco in restored.scos()] == [
            sco.sco_id for sco in original.scos()
        ]
        assert [block.block_id for block in restored.blocks()] == ["ch1", "ch2"]

    def test_round_trip_through_manifest_xml(self):
        course = sample_course()
        manifest = Manifest(
            identifier="pkg-cs101",
            organizations=[course_to_organization(course)],
            resources=[
                Resource(identifier=f"res-{letter}", href=f"{letter}.html")
                for letter in "abcd"
            ],
            default_organization="org-cs101",
        )
        manifest.validate()
        restored_manifest = manifest_from_xml(manifest_to_xml(manifest))
        restored_course = organization_to_course(
            restored_manifest.organizations[0]
        )
        assert [s.sco_id for s in restored_course.scos()] == [
            s.sco_id for s in course.scos()
        ]
