"""Tests for the CMI data model (repro.scorm.datamodel)."""

import pytest

from repro.scorm.datamodel import CMI_VOCABULARIES, CmiDataModel
from repro.scorm.errors import ScormError


@pytest.fixture
def model():
    return CmiDataModel(student_id="s001", student_name="Ada Lovelace")


class TestReadOnlyWriteOnly:
    def test_student_id_readable(self, model):
        value, error = model.get("cmi.core.student_id")
        assert (value, error) == ("s001", ScormError.NO_ERROR)

    def test_student_id_not_writable(self, model):
        assert model.set("cmi.core.student_id", "hacked") is (
            ScormError.ELEMENT_IS_READ_ONLY
        )

    def test_session_time_write_only(self, model):
        assert model.set("cmi.core.session_time", "00:30:00") is (
            ScormError.NO_ERROR
        )
        value, error = model.get("cmi.core.session_time")
        assert error is ScormError.ELEMENT_IS_WRITE_ONLY
        assert value == ""

    def test_exit_write_only(self, model):
        assert model.set("cmi.core.exit", "suspend") is ScormError.NO_ERROR
        _, error = model.get("cmi.core.exit")
        assert error is ScormError.ELEMENT_IS_WRITE_ONLY

    def test_lesson_location_read_write(self, model):
        assert model.set("cmi.core.lesson_location", "q5") is ScormError.NO_ERROR
        value, error = model.get("cmi.core.lesson_location")
        assert (value, error) == ("q5", ScormError.NO_ERROR)

    def test_launch_data_read_only(self, model):
        assert model.set("cmi.launch_data", "x") is ScormError.ELEMENT_IS_READ_ONLY

    def test_total_time_read_only(self, model):
        assert model.set("cmi.core.total_time", "0001:00:00") is (
            ScormError.ELEMENT_IS_READ_ONLY
        )


class TestVocabularies:
    @pytest.mark.parametrize("status", CMI_VOCABULARIES["cmi.core.lesson_status"])
    def test_valid_lesson_statuses(self, model, status):
        assert model.set("cmi.core.lesson_status", status) is ScormError.NO_ERROR

    def test_invalid_lesson_status(self, model):
        assert model.set("cmi.core.lesson_status", "aced") is (
            ScormError.INCORRECT_DATA_TYPE
        )

    def test_invalid_exit(self, model):
        assert model.set("cmi.core.exit", "rage-quit") is (
            ScormError.INCORRECT_DATA_TYPE
        )


class TestScore:
    def test_valid_score(self, model):
        assert model.set("cmi.core.score.raw", "85.5") is ScormError.NO_ERROR
        value, _ = model.get("cmi.core.score.raw")
        assert value == "85.5"

    @pytest.mark.parametrize("bad", ["abc", "101", "-5", "1e3"])
    def test_invalid_scores(self, model, bad):
        assert model.set("cmi.core.score.raw", bad) is (
            ScormError.INCORRECT_DATA_TYPE
        )


class TestChildrenAndCount:
    def test_core_children(self, model):
        value, error = model.get("cmi.core._children")
        assert error is ScormError.NO_ERROR
        assert "lesson_status" in value
        assert "score" in value

    def test_score_children(self, model):
        value, _ = model.get("cmi.core.score._children")
        assert value == "raw,min,max"

    def test_interactions_count_starts_zero(self, model):
        value, error = model.get("cmi.interactions._count")
        assert (value, error) == ("0", ScormError.NO_ERROR)

    def test_children_not_settable(self, model):
        assert model.set("cmi.core._children", "x") is (
            ScormError.INVALID_SET_VALUE
        )

    def test_count_not_settable(self, model):
        assert model.set("cmi.interactions._count", "5") is (
            ScormError.INVALID_SET_VALUE
        )

    def test_count_on_non_array(self, model):
        _, error = model.get("cmi.core.score._count")
        assert error is ScormError.ELEMENT_NOT_AN_ARRAY


class TestInteractions:
    def test_record_interaction(self, model):
        assert model.set("cmi.interactions.0.id", "q1") is ScormError.NO_ERROR
        assert model.set("cmi.interactions.0.type", "choice") is (
            ScormError.NO_ERROR
        )
        assert model.set("cmi.interactions.0.student_response", "A") is (
            ScormError.NO_ERROR
        )
        assert model.set("cmi.interactions.0.result", "correct") is (
            ScormError.NO_ERROR
        )
        value, _ = model.get("cmi.interactions._count")
        assert value == "1"

    def test_interactions_write_only(self, model):
        model.set("cmi.interactions.0.id", "q1")
        _, error = model.get("cmi.interactions.0.id")
        assert error is ScormError.ELEMENT_IS_WRITE_ONLY

    def test_must_grow_contiguously(self, model):
        assert model.set("cmi.interactions.5.id", "q5") is (
            ScormError.INVALID_ARGUMENT
        )

    def test_correct_responses_pattern(self, model):
        model.set("cmi.interactions.0.id", "q1")
        assert model.set(
            "cmi.interactions.0.correct_responses.0.pattern", "A"
        ) is ScormError.NO_ERROR
        recorded = model.interactions()[0]
        assert recorded["correct_responses"] == ["A"]

    def test_invalid_interaction_type(self, model):
        model.set("cmi.interactions.0.id", "q1")
        assert model.set("cmi.interactions.0.type", "puzzle") is (
            ScormError.INCORRECT_DATA_TYPE
        )

    def test_invalid_result(self, model):
        model.set("cmi.interactions.0.id", "q1")
        assert model.set("cmi.interactions.0.result", "sorta") is (
            ScormError.INCORRECT_DATA_TYPE
        )

    def test_latency_format(self, model):
        model.set("cmi.interactions.0.id", "q1")
        assert model.set("cmi.interactions.0.latency", "00:01:30.5") is (
            ScormError.NO_ERROR
        )
        assert model.set("cmi.interactions.0.latency", "90 seconds") is (
            ScormError.INCORRECT_DATA_TYPE
        )

    def test_multiple_interactions(self, model):
        for index in range(3):
            model.set(f"cmi.interactions.{index}.id", f"q{index}")
        assert model.get("cmi.interactions._count")[0] == "3"
        assert len(model.interactions()) == 3


class TestObjectives:
    def test_record_objective(self, model):
        assert model.set("cmi.objectives.0.id", "concept-sorting") is (
            ScormError.NO_ERROR
        )
        assert model.set("cmi.objectives.0.score.raw", "75") is (
            ScormError.NO_ERROR
        )
        assert model.set("cmi.objectives.0.status", "passed") is (
            ScormError.NO_ERROR
        )
        value, error = model.get("cmi.objectives.0.id")
        assert (value, error) == ("concept-sorting", ScormError.NO_ERROR)

    def test_objective_count(self, model):
        model.set("cmi.objectives.0.id", "x")
        assert model.get("cmi.objectives._count")[0] == "1"

    def test_unknown_objective_read(self, model):
        _, error = model.get("cmi.objectives.3.id")
        assert error is ScormError.INVALID_ARGUMENT


class TestUnknownElements:
    def test_unknown_get(self, model):
        _, error = model.get("cmi.core.shoe_size")
        assert error is ScormError.INVALID_ARGUMENT

    def test_unknown_set(self, model):
        assert model.set("cmi.core.shoe_size", "42") is (
            ScormError.INVALID_ARGUMENT
        )

    def test_empty_element(self, model):
        _, error = model.get("")
        assert error is ScormError.INVALID_ARGUMENT


class TestResume:
    def test_resume_seeding(self):
        model = CmiDataModel(entry="resume", suspend_data="answered=3")
        assert model.get("cmi.core.entry")[0] == "resume"
        assert model.get("cmi.suspend_data")[0] == "answered=3"


class TestSnapshot:
    def test_snapshot_contains_everything(self, model):
        model.set("cmi.core.lesson_status", "passed")
        model.set("cmi.core.score.raw", "90")
        model.set("cmi.suspend_data", "state")
        model.set("cmi.interactions.0.id", "q1")
        snapshot = model.snapshot()
        assert snapshot["core"]["lesson_status"] == "passed"
        assert snapshot["core"]["score.raw"] == "90"
        assert snapshot["suspend_data"] == "state"
        assert len(snapshot["interactions"]) == 1
