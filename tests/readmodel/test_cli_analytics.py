"""The ``mine-assess analytics`` subcommand and ``serve --readmodel``."""

import json

import pytest

from conftest import journaled_lms, enroll_cohort

from repro.cli import main
from repro.readmodel import rebuild, save_readmodel
from repro.server.serialize import analysis_to_dict
from repro.store import Journal


@pytest.fixture
def wal(tmp_path):
    """A journaled history: 4 learners sit and submit, one re-sits."""
    journal = Journal.open(tmp_path, fsync="never")
    lms, clock = journaled_lms(journal)
    cohort = ["amy", "bob", "cat", "dan"]
    enroll_cohort(lms, cohort)
    for index, learner_id in enumerate(cohort):
        lms.start_exam(learner_id, "ex1")
        lms.answer(learner_id, "ex1", "q1", "ABC"[index % 3])
        lms.answer(learner_id, "ex1", "q2", "B")
        clock.advance(20.0)
        lms.submit(learner_id, "ex1")
    lms.start_exam("amy", "ex1")
    lms.answer("amy", "ex1", "q1", "A")
    lms.submit("amy", "ex1")
    journal.sync()
    expected = json.dumps(
        analysis_to_dict(lms.live_analysis("ex1")), sort_keys=True
    )
    journal.close()
    return {"dir": tmp_path, "expected": expected}


class TestRebuild:
    def test_rebuild_prints_the_live_analysis(self, wal, capsys):
        code = main(
            ["analytics", "rebuild", str(wal["dir"]), "--exam", "ex1"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["journals"] == 1
        assert payload["exams"] == ["ex1"]
        assert payload["summary"]["submits"] == 5  # amy sat twice
        assert payload["summary"]["distribution"]["count"] == 4
        assert json.dumps(
            payload["analysis"], sort_keys=True
        ) == wal["expected"]

    def test_out_writes_the_same_document(self, wal, tmp_path_factory, capsys):
        out = tmp_path_factory.mktemp("out") / "analytics.json"
        code = main(
            [
                "analytics", "rebuild", str(wal["dir"]),
                "--exam", "ex1", "--out", str(out),
            ]
        )
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(out.read_text(encoding="utf-8"))
        assert printed == written

    def test_unknown_exam_fails_cleanly(self, wal, capsys):
        code = main(
            ["analytics", "rebuild", str(wal["dir"]), "--exam", "ghost"]
        )
        assert code == 2
        assert "ghost" in capsys.readouterr().err


class TestAsOf:
    def test_asof_lsn_bounds_the_fold(self, wal, capsys):
        code = main(
            ["analytics", "asof", str(wal["dir"]), "--lsn", "13"]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        # lsn 13 = offer + 4x(register+enroll) + start + 2 answers +
        # submit: exactly amy's first sitting has landed
        assert payload["applied_events"] == 13
        assert "as of lsn 13" in captured.err

    def test_asof_uses_checkpoints(self, wal, capsys):
        save_readmodel(rebuild(wal["dir"]), wal["dir"])
        code = main(
            ["analytics", "asof", str(wal["dir"]), "--ts", "1e18",
             "--exam", "ex1"]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert "0 suffix record(s) replayed" in captured.err
        assert json.dumps(
            payload["analysis"], sort_keys=True
        ) == wal["expected"]

    def test_asof_needs_exactly_one_target(self, wal, capsys):
        assert main(["analytics", "asof", str(wal["dir"])]) == 2
        assert main(
            ["analytics", "asof", str(wal["dir"]), "--lsn", "1", "--ts", "2"]
        ) == 2

    def test_rebuild_rejects_targets(self, wal, capsys):
        assert main(
            ["analytics", "rebuild", str(wal["dir"]), "--lsn", "1"]
        ) == 2


class TestServeFlag:
    def test_readmodel_requires_wal_dir(self, capsys):
        code = main(["serve", "--port", "0", "--readmodel"])
        assert code == 2
        assert "--wal-dir" in capsys.readouterr().err
