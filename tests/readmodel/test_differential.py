"""Differential property test: the read-model fold == the live LMS.

Hypothesis drives random operation sequences (including invalid ones,
re-sits, skips, overwrites, batch answers, and mid-stream read-model
checkpoints) against a journaled LMS, then folds the same WAL through
:func:`repro.readmodel.rebuild` and asserts the cohort analysis is
**bit-identical** to the serving tier's ``live_analysis`` — the
property the CQRS split rests on.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import journaled_lms, enroll_cohort

from repro.core.errors import AnalysisError, AssessmentError, NotFoundError
from repro.lms.learners import Learner
from repro.readmodel import ReadModel, as_of, rebuild, save_readmodel
from repro.server.serialize import analysis_to_dict
from repro.store import Journal

LEARNERS = ["l0", "l1", "l2", "l3"]
ITEMS = ["q1", "q2", "q3", "q4", "tf1", "essay1", "q9"]  # q9: unknown
RESPONSES = ["a", "b", "c", "A", "B", "C", "true", "false", "words", ""]

learner_ids = st.sampled_from(LEARNERS)
answer_pairs = st.tuples(
    st.sampled_from(ITEMS), st.sampled_from(RESPONSES)
)

operations = st.one_of(
    st.tuples(st.just("register"), learner_ids),
    st.tuples(st.just("enroll"), learner_ids),
    st.tuples(st.just("start"), learner_ids),
    st.tuples(
        st.just("answer"),
        learner_ids,
        st.sampled_from(ITEMS),
        st.sampled_from(RESPONSES),
    ),
    st.tuples(
        st.just("batch"),
        learner_ids,
        st.lists(answer_pairs, min_size=1, max_size=4),
        st.booleans(),
    ),
    st.tuples(st.just("suspend"), learner_ids),
    st.tuples(st.just("resume"), learner_ids),
    st.tuples(st.just("submit"), learner_ids),
    st.tuples(st.just("capture"), learner_ids),
    st.tuples(st.just("advance"), st.integers(min_value=1, max_value=90)),
    st.tuples(st.just("rm-checkpoint")),
)


def apply_operation(lms, clock, wal_dir, op):
    kind = op[0]
    try:
        if kind == "register":
            lms.register_learner(Learner(learner_id=op[1], name=op[1]))
        elif kind == "enroll":
            lms.enroll(op[1], "ex1")
        elif kind == "start":
            lms.start_exam(op[1], "ex1")
        elif kind == "answer":
            lms.answer(op[1], "ex1", op[2], op[3])
        elif kind == "batch":
            lms.answer_batch(op[1], "ex1", op[2], submit=op[3])
        elif kind == "suspend":
            lms.suspend(op[1], "ex1")
        elif kind == "resume":
            lms.resume(op[1], "ex1")
        elif kind == "submit":
            lms.submit(op[1], "ex1")
        elif kind == "capture":
            lms.capture_frame(op[1], "ex1")
        elif kind == "advance":
            clock.advance(float(op[1]))
        elif kind == "rm-checkpoint":
            # fold what the journal holds so far, persist it: later
            # as_of() queries must restore through these mid-stream
            # checkpoints without changing any answer
            save_readmodel(rebuild(wal_dir), wal_dir, keep=3)
    except AssessmentError:
        # rejected before the journal append — both sides unaffected
        pass


def live_analysis_dump(lms):
    try:
        return json.dumps(
            analysis_to_dict(lms.live_analysis("ex1")), sort_keys=True
        )
    except AnalysisError:
        return "<no-analysis>"


def model_analysis_dump(model):
    try:
        return json.dumps(
            analysis_to_dict(model.exam("ex1").analysis()), sort_keys=True
        )
    except (AnalysisError, NotFoundError):
        return "<no-analysis>"


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(operations, min_size=0, max_size=40))
def test_rebuild_is_bit_identical_to_live_analysis(tmp_path_factory, ops):
    wal_dir = tmp_path_factory.mktemp("wal")
    journal = Journal.open(wal_dir, fsync="never", segment_bytes=2048)
    lms, clock = journaled_lms(journal)
    enroll_cohort(lms, LEARNERS[:2])  # two learners pre-enrolled
    for op in ops:
        apply_operation(lms, clock, wal_dir, op)
    journal.sync()

    model = rebuild(wal_dir)
    assert model_analysis_dump(model) == live_analysis_dump(lms)

    # the scalar aggregates agree with the LMS's own view of the cohort
    exam_model = model.exam("ex1")
    assert len(exam_model.enrolled) == len(lms.enrolled("ex1"))
    assert len(exam_model.percents) == len(lms.results_for("ex1"))
    assert sum(exam_model.buckets) == len(exam_model.percents)

    # snapshot -> restore -> identical analysis (row order preserved)
    restored = ReadModel.from_snapshot(
        json.loads(json.dumps(model.snapshot()))
    )
    assert model_analysis_dump(restored) == model_analysis_dump(model)
    assert restored.applied_lsn == model.applied_lsn

    # time-travel to the tip == the full rebuild, regardless of which
    # mid-stream checkpoints exist to restore through
    at_tip, _ = as_of(wal_dir, lsn=journal.last_lsn)
    assert model_analysis_dump(at_tip) == model_analysis_dump(model)
    journal.close()


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(operations, min_size=5, max_size=30),
    probe=st.integers(min_value=0, max_value=100),
)
def test_as_of_any_lsn_equals_a_bounded_rebuild(tmp_path_factory, ops, probe):
    """Folding records 1..K directly == as_of(lsn=K) for any K, even
    when as_of restores through a mid-stream checkpoint."""
    from repro.store import read_records

    wal_dir = tmp_path_factory.mktemp("wal")
    journal = Journal.open(wal_dir, fsync="never", segment_bytes=2048)
    lms, clock = journaled_lms(journal)
    enroll_cohort(lms, LEARNERS[:2])
    for op in ops:
        apply_operation(lms, clock, wal_dir, op)
    journal.sync()
    target = min(probe, journal.last_lsn)
    journal.close()

    expected = ReadModel()
    for record in read_records(wal_dir):
        if record.lsn > target:
            break
        expected.apply(record)
    actual, replayed = as_of(wal_dir, lsn=target)
    assert actual.applied_lsn == expected.applied_lsn
    assert model_analysis_dump(actual) == model_analysis_dump(expected)
    assert json.dumps(actual.overview(), sort_keys=True) == json.dumps(
        expected.overview(), sort_keys=True
    )
    assert replayed <= expected.applied_events
