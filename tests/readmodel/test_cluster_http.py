"""The admin analytics surface across a real 3-worker cluster.

Each shard follows its own journal; the front worker scatter-gathers
canonical partials.  The contract under test: the merged admin answer
is bit-identical to the serving tier's scatter-gathered ``/analysis``
over the same shard journals, LSN columns appear in the topology, and
time-travel only accepts the fleet-wide coordinate (a timestamp).
"""

import http.client
import json
import time

import pytest

from repro.cluster.supervisor import ExamCluster
from repro.server.loadgen import run_loadgen

LEARNERS = 18
QUESTIONS = 5
WORKERS = 3
EXAM_ID = "classroom-mid"


def request_json(url, path):
    host, port = url.rsplit(":", 1)
    host = host.split("//")[1]
    connection = http.client.HTTPConnection(host, int(port), timeout=15)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else None
    finally:
        connection.close()


def retry_json(url, path, tries=40, expect=200):
    for _ in range(tries):
        status, payload = request_json(url, path)
        if status == expect:
            return payload
        time.sleep(0.25)
    raise AssertionError(f"{path} never reached {expect}, last {status}")


@pytest.fixture(scope="module")
def tier(tmp_path_factory):
    wal_root = tmp_path_factory.mktemp("cluster-wal")
    with ExamCluster(
        workers=WORKERS, wal_root=wal_root, readmodel=True
    ) as cluster:
        report = run_loadgen(
            cluster.url,
            learners=LEARNERS,
            questions=QUESTIONS,
            seed=23,
            workers=4,
            batch=4,
            cluster=True,
        )
        assert report.errors == 0
        yield {"cluster": cluster, "wal_root": wal_root}


class TestScatterGather:
    def test_admin_analysis_matches_serving_tier_bit_for_bit(self, tier):
        url = tier["cluster"].url
        serving = retry_json(url, f"/exams/{EXAM_ID}/analysis")
        admin = retry_json(url, f"/admin/analytics/exams/{EXAM_ID}/analysis")
        assert json.dumps(admin, sort_keys=True) == json.dumps(
            serving, sort_keys=True
        )

    def test_summary_merges_every_shard(self, tier):
        payload = retry_json(
            tier["cluster"].url, f"/admin/analytics/exams/{EXAM_ID}"
        )
        assert payload["submits"] == LEARNERS
        assert payload["enrolled"] == LEARNERS
        assert sum(payload["distribution"]["buckets"]) == LEARNERS
        assert payload["blueprint"]["cohort"] == LEARNERS

    def test_overview_reports_per_shard_positions(self, tier):
        payload = retry_json(tier["cluster"].url, "/admin/analytics")
        assert payload["learners"] == LEARNERS
        assert [s["shard"] for s in payload["shards"]] == sorted(
            tier["cluster"].shards
        )
        assert all(s["applied_lsn"] > 0 for s in payload["shards"])
        assert payload["exams"] == [
            {
                "exam_id": EXAM_ID,
                "submits": LEARNERS,
                "enrolled": LEARNERS,
            }
        ]

    def test_topology_carries_lsn_columns_per_shard(self, tier):
        payload = retry_json(tier["cluster"].url, "/cluster/topology")
        assert len(payload["shards"]) == WORKERS
        for entry in payload["shards"]:
            assert entry["last_lsn"] >= entry["durable_lsn"] >= 0
            assert entry["readmodel_lsn"] >= 0


class TestTimeTravel:
    def test_as_of_lsn_is_rejected_as_per_shard(self, tier):
        status, payload = request_json(
            tier["cluster"].url,
            f"/admin/analytics/exams/{EXAM_ID}/analysis?as_of_lsn=5",
        )
        assert status == 400
        assert "as_of_ts" in payload["error"]["message"]

    def test_as_of_ts_spans_the_fleet(self, tier):
        url = tier["cluster"].url
        live = retry_json(url, f"/admin/analytics/exams/{EXAM_ID}/analysis")
        payload = retry_json(
            url,
            f"/admin/analytics/exams/{EXAM_ID}/analysis?as_of_ts=1e18",
        )
        # far-future target == full history on every shard
        assert json.dumps(payload["analysis"], sort_keys=True) == json.dumps(
            live, sort_keys=True
        )


class TestOfflineOracle:
    def test_cli_rebuild_merges_shards_bit_identically(self, tier):
        """`mine-assess analytics rebuild <cluster-root> --exam ...`
        over the live shard journals reproduces the cluster's
        scatter-gathered answer exactly."""
        from repro.cli import main

        admin = retry_json(
            tier["cluster"].url,
            f"/admin/analytics/exams/{EXAM_ID}/analysis",
        )
        out = tier["wal_root"] / "oracle.json"
        code = main(
            [
                "analytics",
                "rebuild",
                str(tier["wal_root"]),
                "--exam",
                EXAM_ID,
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["journals"] == WORKERS
        assert payload["learners"] == LEARNERS
        assert json.dumps(payload["analysis"], sort_keys=True) == json.dumps(
            admin, sort_keys=True
        )
