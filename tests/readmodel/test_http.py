"""The admin analytics surface end-to-end, single process.

A real :class:`ExamServer` with ``readmodel=True`` tails its own WAL;
a cohort is driven over HTTP and the ``/admin/analytics`` answers are
checked against the serving tier's — including the bit-identity of the
cohort analysis, which is the CQRS contract.
"""

import http.client
import json

import pytest

from repro.bank.exambank import exam_to_record
from repro.server.app import ExamServer
from repro.sim.workloads import classroom_exam

EXAM_ID = "classroom-mid"
QUESTIONS = 4
COHORT = 9


class Client:
    def __init__(self, server):
        self._conn = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )

    def request(self, method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        self._conn.request(method, path, body=data, headers=headers)
        response = self._conn.getresponse()
        payload = response.read()
        return response.status, json.loads(payload) if payload else None

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body=None):
        return self.request("POST", path, body=body)

    def close(self):
        self._conn.close()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    wal_dir = tmp_path_factory.mktemp("wal")
    with ExamServer(port=0, wal_dir=wal_dir, readmodel=True) as srv:
        client = Client(srv)
        exam = classroom_exam(QUESTIONS)
        client.post("/exams", body=exam_to_record(exam))
        for n in range(COHORT):
            learner_id = f"l{n}"
            client.post(
                "/learners", body={"learner_id": learner_id, "name": learner_id}
            )
            client.post(
                f"/exams/{EXAM_ID}/enrollments",
                body={"learner_id": learner_id},
            )
            client.post(f"/exams/{EXAM_ID}/sittings/{learner_id}/start")
            for index, item in enumerate(exam.items):
                if (n + index) % 7 == 0:
                    continue  # leave some questions skipped
                label = item.labels[(n + index) % len(item.labels)]
                client.post(
                    f"/exams/{EXAM_ID}/sittings/{learner_id}/answer",
                    body={"item_id": item.item_id, "response": label},
                )
            client.post(f"/exams/{EXAM_ID}/sittings/{learner_id}/submit")
        client.close()
        yield srv


@pytest.fixture
def client(server):
    c = Client(server)
    yield c
    c.close()


class TestAnalytics:
    def test_analysis_is_bit_identical_to_serving_tier(self, client):
        status, serving = client.get(f"/exams/{EXAM_ID}/analysis")
        assert status == 200
        status, admin = client.get(
            f"/admin/analytics/exams/{EXAM_ID}/analysis"
        )
        assert status == 200
        assert json.dumps(admin, sort_keys=True) == json.dumps(
            serving, sort_keys=True
        )

    def test_summary_counts_the_cohort(self, client):
        status, summary = client.get(f"/admin/analytics/exams/{EXAM_ID}")
        assert status == 200
        assert summary["submits"] == COHORT
        assert summary["enrolled"] == COHORT
        assert summary["distribution"]["count"] == COHORT
        assert sum(summary["distribution"]["buckets"]) == COHORT

    def test_blueprint_and_spec_table_views(self, client):
        status, blueprint = client.get(
            f"/admin/analytics/exams/{EXAM_ID}/blueprint"
        )
        assert status == 200
        assert blueprint["blueprint"]["cohort"] == COHORT
        assert len(blueprint["blueprint"]["levels"]) == 6
        status, table = client.get(
            f"/admin/analytics/exams/{EXAM_ID}/spec-table"
        )
        assert status == 200
        assert table["total"] == QUESTIONS
        assert table["exam_id"] == EXAM_ID

    def test_overview_lists_the_exam(self, client):
        status, overview = client.get("/admin/analytics")
        assert status == 200
        assert overview["exams"] == [
            {"exam_id": EXAM_ID, "submits": COHORT, "enrolled": COHORT}
        ]
        assert overview["learners"] == COHORT
        assert overview["follower"]["lag"] == 0

    def test_unknown_exam_404s(self, client):
        status, payload = client.get("/admin/analytics/exams/ghost")
        assert status == 404
        assert payload["error"]["code"] == "not_found"


class TestTimeTravel:
    def test_as_of_lsn_replays_a_prefix(self, server, client):
        _, metrics = client.get("/metrics")
        tip = metrics["store"]["last_lsn"]
        status, payload = client.get(
            f"/admin/analytics/exams/{EXAM_ID}/analysis?as_of_lsn={tip}"
        )
        assert status == 200
        assert payload["as_of"]["applied_lsn"] == tip
        # at the tip the time-travel answer IS the live answer
        _, live = client.get(f"/admin/analytics/exams/{EXAM_ID}/analysis")
        assert json.dumps(payload["analysis"], sort_keys=True) == json.dumps(
            live, sort_keys=True
        )

    def test_as_of_before_the_exam_404s(self, client):
        status, payload = client.get(
            f"/admin/analytics/exams/{EXAM_ID}/analysis?as_of_lsn=0"
        )
        assert status == 404

    def test_both_targets_rejected(self, client):
        status, payload = client.get(
            f"/admin/analytics/exams/{EXAM_ID}/analysis"
            "?as_of_lsn=1&as_of_ts=5"
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_non_numeric_target_rejected(self, client):
        status, payload = client.get(
            f"/admin/analytics/exams/{EXAM_ID}/analysis?as_of_lsn=abc"
        )
        assert status == 400


class TestObservability:
    def test_metrics_carry_store_and_readmodel_sections(self, client):
        status, metrics = client.get("/metrics")
        assert status == 200
        assert metrics["store"]["durable_lsn"] <= metrics["store"]["last_lsn"]
        assert metrics["readmodel"]["applied_lsn"] > 0
        assert metrics["readmodel"]["lag"] == 0

    def test_topology_still_requires_a_cluster(self, client):
        # the per-shard LSN columns ride /cluster/topology, which stays
        # a cluster-only surface (see tests/readmodel/test_cluster_http)
        status, payload = client.get("/cluster/topology")
        assert status == 409
        assert payload["error"]["code"] == "invalid_state"

    def test_checkpoint_persists_the_readmodel(self, server, client):
        from repro.readmodel import readmodel_files

        status, payload = client.post("/admin/checkpoint")
        assert status == 200
        files = readmodel_files(server.wal_dir)
        assert files, "checkpoint_now must also checkpoint the read model"
        # and the server still answers identically afterwards
        status, admin = client.get(
            f"/admin/analytics/exams/{EXAM_ID}/analysis"
        )
        assert status == 200


class TestDisabled:
    def test_analytics_409_without_readmodel(self, tmp_path):
        with ExamServer(port=0, wal_dir=tmp_path / "wal") as srv:
            client = Client(srv)
            status, payload = client.get("/admin/analytics")
            client.close()
        assert status == 409
        assert payload["error"]["code"] == "invalid_state"
        assert "serve --readmodel" in payload["error"]["message"]

    def test_readmodel_without_wal_rejected(self):
        with pytest.raises(ValueError, match="wal_dir"):
            ExamServer(port=0, readmodel=True)
