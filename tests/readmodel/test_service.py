"""The in-process WAL follower (repro.readmodel.service)."""

import json

from conftest import journaled_lms, enroll_cohort

from repro.readmodel import readmodel_files, rebuild, save_readmodel
from repro.readmodel.service import ReadModelService
from repro.server.serialize import analysis_to_dict
from repro.store import Journal


def sit(lms, clock, learner_id, answers=(("q1", "A"), ("q2", "B"))):
    lms.start_exam(learner_id, "ex1")
    for item_id, response in answers:
        lms.answer(learner_id, "ex1", item_id, response)
    clock.advance(10.0)
    return lms.submit(learner_id, "ex1")


class TestSync:
    def test_sync_gives_read_your_writes(self, tmp_path):
        journal = Journal.open(tmp_path, fsync="never")
        lms, clock = journaled_lms(journal)
        cohort = ["amy", "bob", "cat", "dan"]
        enroll_cohort(lms, cohort)
        service = ReadModelService(tmp_path, journal=journal)
        service.sync()
        assert service.model.exam("ex1").enrolled == set(cohort)
        sit(lms, clock, "amy")
        journal.sync()
        assert service.lag() == 4  # start + 2 answers + submit
        service.sync()
        assert service.lag() == 0
        assert service.model.exam("ex1").submits == 1
        for learner_id in cohort[1:]:
            sit(lms, clock, learner_id)
        journal.sync()
        service.sync()
        # the fold agrees with the serving engine, live
        assert json.dumps(
            analysis_to_dict(service.model.exam("ex1").analysis()),
            sort_keys=True,
        ) == json.dumps(
            analysis_to_dict(lms.live_analysis("ex1")), sort_keys=True
        )
        journal.close()

    def test_follower_thread_catches_up(self, tmp_path):
        import time

        journal = Journal.open(tmp_path, fsync="never")
        lms, clock = journaled_lms(journal)
        enroll_cohort(lms, ["amy"])
        service = ReadModelService(
            tmp_path, journal=journal, poll_interval=0.01
        )
        service.start()
        try:
            sit(lms, clock, "amy")
            journal.sync()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with service.lock:
                    if service.model.applied_lsn == journal.last_lsn:
                        break
                time.sleep(0.01)
            with service.lock:
                assert service.model.applied_lsn == journal.last_lsn
        finally:
            service.close()
            journal.close()

    def test_info_reports_position_and_lag(self, tmp_path):
        journal = Journal.open(tmp_path, fsync="never")
        lms, clock = journaled_lms(journal)
        journal.sync()
        service = ReadModelService(tmp_path, journal=journal)
        service.sync()
        info = service.info()
        assert info["applied_lsn"] == journal.last_lsn
        assert info["lag"] == 0
        assert info["exams"] == 1
        journal.close()


class TestResume:
    def test_resumes_from_newest_checkpoint(self, tmp_path):
        journal = Journal.open(tmp_path, fsync="never")
        lms, clock = journaled_lms(journal)
        enroll_cohort(lms, ["amy", "bob"])
        sit(lms, clock, "amy")
        journal.sync()

        first = ReadModelService(tmp_path, journal=journal)
        path = first.checkpoint()
        assert path in readmodel_files(tmp_path)
        checkpoint_lsn = first.model.applied_lsn

        sit(lms, clock, "bob")
        journal.sync()
        second = ReadModelService(tmp_path, journal=journal)
        # restored at the checkpoint, not at zero
        assert second.model.applied_lsn == checkpoint_lsn
        second.sync()
        assert second.model.applied_lsn == journal.last_lsn
        assert second.model.exam("ex1").submits == 2
        journal.close()

    def test_corrupt_checkpoint_falls_back_to_full_fold(self, tmp_path):
        journal = Journal.open(tmp_path, fsync="never")
        lms, clock = journaled_lms(journal)
        enroll_cohort(lms, ["amy"])
        sit(lms, clock, "amy")
        journal.sync()
        path = save_readmodel(rebuild(tmp_path), tmp_path)
        path.write_text("{ torn", encoding="utf-8")
        service = ReadModelService(tmp_path, journal=journal)
        service.sync()
        assert service.model.applied_lsn == journal.last_lsn
        assert service.model.exam("ex1").submits == 1
        journal.close()

    def test_truncation_ahead_restarts_from_checkpoint(self, tmp_path):
        """An external compactor retiring records past a stale
        follower's position forces a restart from the newest read-model
        checkpoint (which covers the gap) rather than a silent skip."""
        from repro.store import Checkpointer, segment_files, segment_first_lsn

        journal = Journal.open(tmp_path, fsync="never", segment_bytes=256)
        lms, clock = journaled_lms(journal)
        enroll_cohort(lms, [f"l{n}" for n in range(6)])
        journal.sync()
        # this follower parks early, then a lot of history accumulates
        stale = ReadModelService(tmp_path, journal=journal)
        stale.sync()
        parked = stale.model.applied_lsn
        for n in range(6):
            sit(lms, clock, f"l{n}")
        journal.sync()
        # another follower checkpoints at the tip, then compaction runs
        ReadModelService(tmp_path, journal=journal).checkpoint()
        checkpointer = Checkpointer(lms, journal, keep=1)
        checkpointer.checkpoint()
        journal.retire_covered(checkpointer.last_covered_lsn)
        oldest = segment_first_lsn(segment_files(tmp_path)[0])
        assert oldest > parked + 1, "compaction must outrun the follower"
        stale.sync()
        assert stale.restarts == 1
        assert stale.model.applied_lsn == journal.last_lsn
        assert stale.model.exam("ex1").submits == 6
        journal.close()
