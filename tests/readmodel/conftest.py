"""Shared builders for the read-model suite.

The differential tests need an exam that exercises every scoring path
the fold replicates: analyzable multiple-choice items (they feed the
cohort matrix), a true/false item, and a non-analyzable essay (it
contributes points but no matrix column).
"""

from repro.core.metadata import CognitionLevel
from repro.delivery.clock import ManualClock
from repro.exams.authoring import ExamBuilder
from repro.items.choice import MultipleChoiceItem
from repro.items.essay import EssayItem
from repro.items.truefalse import TrueFalseItem
from repro.lms.learners import Learner
from repro.lms.lms import Lms

LEVELS = list(CognitionLevel)


def build_exam(exam_id="ex1", questions=4):
    """A mixed-item exam with subjects and cognition levels tagged."""
    builder = ExamBuilder(exam_id, f"Exam {exam_id}")
    builder.resumable(True).time_limit(600)
    for index in range(1, questions + 1):
        builder.add_item(
            MultipleChoiceItem.build(
                f"q{index}",
                f"Q{index}?",
                ["a", "b", "c"],
                correct_index=(index - 1) % 3,
                subject=f"concept-{index % 2}",
                cognition_level=LEVELS[index % len(LEVELS)],
            )
        )
    builder.add_item(
        TrueFalseItem(
            item_id="tf1",
            question="True?",
            correct_value=True,
            subject="concept-0",
            cognition_level=LEVELS[0],
        )
    )
    builder.add_item(
        EssayItem(item_id="essay1", question="Discuss.", max_points=5.0)
    )
    return builder.build()


def journaled_lms(journal, start=100.0, questions=4):
    """A ManualClock LMS with ``journal`` attached, one exam offered."""
    clock = ManualClock(start)
    lms = Lms(clock=clock, journal=journal)
    lms.offer_exam(build_exam(questions=questions))
    return lms, clock


def enroll_cohort(lms, learner_ids, exam_id="ex1"):
    for learner_id in learner_ids:
        lms.register_learner(
            Learner(learner_id=learner_id, name=learner_id.title())
        )
        lms.enroll(learner_id, exam_id)
