"""Read-model checkpoint files, rebuild refusal, and as_of semantics."""

import json

import pytest

from conftest import journaled_lms, enroll_cohort

from repro.core.errors import StoreError
from repro.readmodel import (
    ReadModel,
    as_of,
    latest_readmodel_checkpoint,
    load_readmodel,
    readmodel_files,
    rebuild,
    save_readmodel,
)
from repro.store import Checkpointer, Journal


def drive(wal_dir, learners=3, start=100.0, **journal_kwargs):
    """A small journaled history: enroll, sit, submit per learner."""
    journal = Journal.open(wal_dir, fsync="never", **journal_kwargs)
    lms, clock = journaled_lms(journal, start=start)
    enroll_cohort(lms, [f"l{n}" for n in range(learners)])
    for n in range(learners):
        lms.start_exam(f"l{n}", "ex1")
        lms.answer(f"l{n}", "ex1", "q1", "A")
        lms.answer(f"l{n}", "ex1", "q2", "B" if n % 2 else "A")
        clock.advance(30.0)
        lms.submit(f"l{n}", "ex1")
    journal.sync()
    return journal, lms, clock


class TestCheckpointFiles:
    def test_save_load_round_trip(self, tmp_path):
        journal, lms, _ = drive(tmp_path)
        model = rebuild(tmp_path)
        path = save_readmodel(model, tmp_path)
        assert path.name == f"readmodel-{model.applied_lsn:020d}.json"
        restored = load_readmodel(path)
        assert restored.applied_lsn == model.applied_lsn
        assert json.dumps(restored.snapshot(), sort_keys=True) == json.dumps(
            model.snapshot(), sort_keys=True
        )
        journal.close()

    def test_retention_prunes_to_keep(self, tmp_path):
        journal, lms, clock = drive(tmp_path)
        for n in range(4):
            lms.start_exam("l0", "ex1")
            lms.submit("l0", "ex1")
            journal.sync()
            save_readmodel(rebuild(tmp_path), tmp_path, keep=2)
        files = readmodel_files(tmp_path)
        assert len(files) == 2
        assert latest_readmodel_checkpoint(tmp_path) == files[-1]
        journal.close()

    def test_keep_zero_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            save_readmodel(ReadModel(), tmp_path, keep=0)

    def test_lsn_mismatch_detected(self, tmp_path):
        journal, _, _ = drive(tmp_path)
        model = rebuild(tmp_path)
        path = save_readmodel(model, tmp_path)
        lying = path.with_name(f"readmodel-{model.applied_lsn + 7:020d}.json")
        path.rename(lying)
        with pytest.raises(StoreError):
            load_readmodel(lying)
        journal.close()

    def test_checkpoints_invisible_to_wal_and_lms_readers(self, tmp_path):
        """readmodel-* files must not confuse the segment scanner or
        the LMS checkpoint loader sharing the directory."""
        from repro.store import recover, segment_files

        journal, lms, _ = drive(tmp_path)
        save_readmodel(rebuild(tmp_path), tmp_path)
        assert all(
            path.name.startswith("wal-") for path in segment_files(tmp_path)
        )
        report = recover(tmp_path)  # must not trip on readmodel-*.json
        assert len(report.lms.results_for("ex1")) == 3
        journal.close()


class TestRebuild:
    def test_rebuild_refuses_a_retired_head(self, tmp_path):
        journal, lms, clock = drive(
            tmp_path, learners=8, segment_bytes=256
        )
        checkpointer = Checkpointer(lms, journal, keep=1)
        checkpointer.checkpoint()
        journal.retire_covered(checkpointer.last_covered_lsn)
        from repro.store import segment_files, segment_first_lsn

        assert segment_first_lsn(segment_files(tmp_path)[0]) > 1
        with pytest.raises(StoreError, match="retired"):
            rebuild(tmp_path)
        journal.close()

    def test_rebuild_of_missing_directory_is_empty(self, tmp_path):
        model = rebuild(tmp_path / "never-written")
        assert model.applied_lsn == 0
        assert model.exams == {}


class TestAsOf:
    def test_needs_exactly_one_target(self, tmp_path):
        with pytest.raises(StoreError):
            as_of(tmp_path)
        with pytest.raises(StoreError):
            as_of(tmp_path, lsn=3, ts=100.0)

    def test_lsn_target_uses_nearest_checkpoint(self, tmp_path):
        journal, lms, _ = drive(tmp_path)
        mid = journal.last_lsn
        save_readmodel(rebuild(tmp_path), tmp_path)
        lms.start_exam("l0", "ex1")
        lms.answer("l0", "ex1", "q1", "C")
        lms.submit("l0", "ex1")
        journal.sync()
        model, replayed = as_of(tmp_path, lsn=journal.last_lsn)
        # restored from the checkpoint at `mid`: only the suffix replays
        assert replayed == journal.last_lsn - mid
        assert model.applied_lsn == journal.last_lsn
        assert model.exam("ex1").submits == 4
        journal.close()

    def test_ts_target_stops_at_the_clock(self, tmp_path):
        journal, lms, clock = drive(tmp_path, start=100.0)
        # submits land at ts 130, 160, 190 (the clock advances 30
        # between each learner's answers and their submit)
        model, _ = as_of(tmp_path, ts=165.0)
        assert model.exam("ex1").submits == 2
        early, _ = as_of(tmp_path, ts=99.0)
        # catalog events carry no clock: the exam exists, nothing sat
        assert early.exam("ex1").submits == 0
        journal.close()

    def test_ts_target_picks_checkpoint_by_event_time(self, tmp_path):
        journal, lms, clock = drive(tmp_path, start=100.0)
        save_readmodel(rebuild(tmp_path), tmp_path, keep=4)
        before = journal.last_lsn
        clock.advance(1000.0)
        lms.start_exam("l1", "ex1")
        lms.submit("l1", "ex1")
        journal.sync()
        save_readmodel(rebuild(tmp_path), tmp_path, keep=4)
        # a target between the two checkpoints must restore the FIRST
        # one (the second's last event is past the target)
        model, replayed = as_of(tmp_path, ts=500.0)
        assert model.applied_lsn == before
        assert replayed == 0
        journal.close()

    def test_uncovered_retired_gap_raises(self, tmp_path):
        journal, lms, _ = drive(tmp_path, segment_bytes=512)
        checkpointer = Checkpointer(lms, journal, keep=1)
        checkpointer.checkpoint()
        journal.retire_covered(checkpointer.last_covered_lsn)
        # no read-model checkpoint exists to bridge the retired head
        with pytest.raises(StoreError, match="retired"):
            as_of(tmp_path, lsn=journal.last_lsn)
        journal.close()

    def test_checkpoint_bridges_a_retired_head(self, tmp_path):
        journal, lms, _ = drive(tmp_path, segment_bytes=512)
        save_readmodel(rebuild(tmp_path), tmp_path)
        checkpointer = Checkpointer(lms, journal, keep=1)
        checkpointer.checkpoint()
        journal.retire_covered(checkpointer.last_covered_lsn)
        model, replayed = as_of(tmp_path, lsn=journal.last_lsn)
        assert model.exam("ex1").submits == 3
        journal.close()
