"""Question ordering for delivery (§3.2 VI.C).

``Fixed Order — for tests with a fixed number and order of questions.
Random Order — for tests with a random order.``

Random orderings are deterministic per (exam, learner) pair: the shuffle
is seeded from both identifiers, so a learner who resumes a sitting sees
the same order, while different learners see different orders.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, TypeVar

from repro.core.errors import DeliveryError
from repro.core.metadata import DisplayType
from repro.exams.exam import Exam
from repro.items.base import Item

__all__ = ["presentation_order", "ordered_items"]

T = TypeVar("T")


def _seed_for(exam_id: str, learner_id: str) -> int:
    digest = hashlib.sha256(f"{exam_id}\x00{learner_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def presentation_order(exam: Exam, learner_id: str) -> List[int]:
    """The item indices in the order this learner sees them.

    Fixed-order exams present items as authored.  Random-order exams
    shuffle per learner — but items inside the same presentation group
    stay contiguous (the group is the §5.4 presentation unit): groups are
    shuffled as blocks and loose items are interleaved as singleton
    blocks.
    """
    if not exam.items:
        raise DeliveryError(f"exam {exam.exam_id!r} has no items to order")
    if exam.display_type is DisplayType.FIXED_ORDER:
        return list(range(len(exam.items)))

    rng = random.Random(_seed_for(exam.exam_id, learner_id))
    blocks: List[List[int]] = []
    seen: set = set()
    for index, item in enumerate(exam.items):
        if index in seen:
            continue
        group = exam.group_of(item.item_id)
        if group is None:
            blocks.append([index])
            seen.add(index)
        else:
            block = [exam.item_index(item_id) for item_id in group.item_ids]
            blocks.append(block)
            seen.update(block)
    rng.shuffle(blocks)
    order: List[int] = []
    for block in blocks:
        order.extend(block)
    return order


def ordered_items(exam: Exam, learner_id: str) -> List[Item]:
    """The exam's items in this learner's presentation order."""
    return [exam.items[index] for index in presentation_order(exam, learner_id)]
