"""The exam model (paper §5.4).

An :class:`Exam` is an ordered collection of items, organized into
presentation *groups* (§5.4: "instructors can use group service to make
all possible presentation style"), with exam-level metadata: the test
time limit and display type (fixed or random order, §3.2 VI.C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.errors import AuthoringError, NotFoundError
from repro.core.metadata import DisplayType, MineMetadata
from repro.core.question_analysis import QuestionSpec
from repro.core.spec_table import SpecificationTable, TaggedQuestion
from repro.items.base import Item
from repro.items.choice import MultipleChoiceItem
from repro.items.truefalse import TrueFalseItem

if TYPE_CHECKING:  # pragma: no cover - the exam layer stays below adaptive
    from repro.adaptive.online import AdaptivePolicy

__all__ = ["ExamGroup", "Exam"]


@dataclass
class ExamGroup:
    """A named presentation group of items within an exam.

    ``template_name`` optionally binds the group to a presentation
    template (§5.3); items in a group are presented together.
    """

    name: str
    item_ids: List[str] = field(default_factory=list)
    template_name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise AuthoringError("exam group name must be non-empty")
        if len(set(self.item_ids)) != len(self.item_ids):
            raise AuthoringError(
                f"group {self.name!r} lists duplicate items"
            )


@dataclass
class Exam:
    """A complete, deliverable exam."""

    exam_id: str
    title: str
    items: List[Item] = field(default_factory=list)
    groups: List[ExamGroup] = field(default_factory=list)
    display_type: DisplayType = DisplayType.FIXED_ORDER
    time_limit_seconds: Optional[float] = None
    resumable: bool = True
    metadata: MineMetadata = field(default_factory=MineMetadata)
    #: optional online-CAT configuration (:class:`repro.adaptive.online.
    #: AdaptivePolicy`); when set, the LMS serves this exam adaptively —
    #: items are chosen per response, not presented in authored order
    adaptive: "Optional[AdaptivePolicy]" = None

    def __post_init__(self) -> None:
        if not self.exam_id:
            raise AuthoringError("exam_id must be non-empty")
        if not self.title:
            raise AuthoringError(f"exam {self.exam_id!r}: title must be non-empty")
        self._sync_metadata()

    def _sync_metadata(self) -> None:
        self.metadata.general.identifier = self.exam_id
        self.metadata.general.title = self.title
        self.metadata.educational.learning_resource_type = "exam"
        self.metadata.assessment.exam.test_time_seconds = self.time_limit_seconds
        self.metadata.assessment.questionnaire.resumable = self.resumable
        self.metadata.assessment.questionnaire.display_type = self.display_type

    # -- integrity -------------------------------------------------------------

    def validate(self) -> None:
        """Check structural integrity: items present, ids unique, every
        item valid, groups referencing real items, no item in two groups."""
        if not self.items:
            raise AuthoringError(f"exam {self.exam_id!r} has no items")
        ids = [item.item_id for item in self.items]
        if len(set(ids)) != len(ids):
            duplicates = sorted({i for i in ids if ids.count(i) > 1})
            raise AuthoringError(
                f"exam {self.exam_id!r} has duplicate items: {duplicates}"
            )
        for item in self.items:
            item.validate()
        id_set = set(ids)
        grouped: Dict[str, str] = {}
        for group in self.groups:
            for item_id in group.item_ids:
                if item_id not in id_set:
                    raise NotFoundError(
                        f"group {group.name!r} references unknown item "
                        f"{item_id!r}"
                    )
                if item_id in grouped:
                    raise AuthoringError(
                        f"item {item_id!r} appears in groups "
                        f"{grouped[item_id]!r} and {group.name!r}"
                    )
                grouped[item_id] = group.name
        if self.time_limit_seconds is not None and self.time_limit_seconds <= 0:
            raise AuthoringError(
                f"exam {self.exam_id!r}: time limit must be positive"
            )
        if self.adaptive is not None:
            self.adaptive.validate(self)

    # -- views -----------------------------------------------------------------

    def item(self, item_id: str) -> Item:
        """The item with this id; NotFoundError otherwise."""
        for candidate in self.items:
            if candidate.item_id == item_id:
                return candidate
        raise NotFoundError(f"exam {self.exam_id!r} has no item {item_id!r}")

    def item_index(self, item_id: str) -> int:
        """The 0-based position of an item in authored order."""
        for index, candidate in enumerate(self.items):
            if candidate.item_id == item_id:
                return index
        raise NotFoundError(f"exam {self.exam_id!r} has no item {item_id!r}")

    def objective_items(self) -> List[Item]:
        """Items that can be machine-scored."""
        return [item for item in self.items if item.is_objective()]

    def max_score(self) -> float:
        """Total available points (one per objective single-answer item,
        per-component for match/completion)."""
        total = 0.0
        for item in self.items:
            scored = item.score(None)
            total += scored.max_points
        return total

    def group_of(self, item_id: str) -> Optional[ExamGroup]:
        """The presentation group containing an item, or None."""
        for group in self.groups:
            if item_id in group.item_ids:
                return group
        return None

    # -- bridges to the analysis model -----------------------------------------

    def question_specs(self) -> List[QuestionSpec]:
        """Per-question specs for :func:`repro.core.analyze_cohort`.

        Only selection-style items (multiple choice / true-false) are
        representable as option matrices; other styles are skipped, which
        matches the paper — the four rules are defined over choice tables.
        """
        specs: List[QuestionSpec] = []
        for item in self.items:
            if isinstance(item, MultipleChoiceItem):
                specs.append(
                    QuestionSpec(
                        options=item.labels,
                        correct=item.correct_label,
                        subject=item.subject,
                        cognition_level=item.cognition_level,
                    )
                )
            elif isinstance(item, TrueFalseItem):
                specs.append(
                    QuestionSpec(
                        options=("true", "false"),
                        correct=item.answer_text(),
                        subject=item.subject,
                        cognition_level=item.cognition_level,
                    )
                )
        return specs

    def analyzable_items(self) -> List[Item]:
        """The items (in order) that :meth:`question_specs` covers."""
        return [
            item
            for item in self.items
            if isinstance(item, (MultipleChoiceItem, TrueFalseItem))
        ]

    def specification_table(
        self, concepts: Optional[Sequence[str]] = None
    ) -> SpecificationTable:
        """Build the Table 4 two-way specification table for this exam.

        Items without a cognition level are excluded (the table crosses
        concept × level); pass ``concepts`` to declare the full course
        inventory so lost concepts can be detected.
        """
        tagged: List[TaggedQuestion] = []
        for number, item in enumerate(self.items, start=1):
            if item.cognition_level is None or not item.subject:
                continue
            tagged.append(
                TaggedQuestion(
                    number=number,
                    concept=item.subject,
                    level=item.cognition_level,
                )
            )
        return SpecificationTable.from_questions(tagged, concepts=concepts)
