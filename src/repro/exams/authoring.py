"""Exam authoring (paper §5.4, Figure 5).

:class:`ExamBuilder` is the programmatic equivalent of the paper's exam
authoring interface: instructors pull problems from the bank or add their
own ("After authoring the problems, instructors can combine their own
problems with the problems from database"), arrange them into
presentation groups, set the time limit and display type, and build a
validated :class:`~repro.exams.exam.Exam`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.errors import AuthoringError, DuplicateIdError
from repro.core.metadata import DisplayType
from repro.bank.itembank import ItemBank
from repro.exams.exam import Exam, ExamGroup
from repro.items.base import Item

__all__ = ["ExamBuilder"]


class ExamBuilder:
    """Fluent builder for exams.

    Every mutator returns ``self`` so authoring steps chain::

        exam = (ExamBuilder("mid", "Midterm")
                .add_from_bank(bank, "q1", "q2")
                .add_item(my_essay)
                .group("part-1", ["q1", "q2"])
                .time_limit(3600)
                .build())
    """

    def __init__(self, exam_id: str, title: str) -> None:
        if not exam_id:
            raise AuthoringError("exam_id must be non-empty")
        if not title:
            raise AuthoringError("exam title must be non-empty")
        self._exam_id = exam_id
        self._title = title
        self._items: List[Item] = []
        self._groups: List[ExamGroup] = []
        self._display_type = DisplayType.FIXED_ORDER
        self._time_limit: Optional[float] = None
        self._resumable = True

    # -- item assembly ----------------------------------------------------------

    def add_item(self, item: Item) -> "ExamBuilder":
        """Add an instructor-authored item."""
        if any(existing.item_id == item.item_id for existing in self._items):
            raise DuplicateIdError(
                f"item {item.item_id!r} already added to exam {self._exam_id!r}"
            )
        item.validate()
        self._items.append(item)
        return self

    def add_items(self, items: Sequence[Item]) -> "ExamBuilder":
        """Add several items in order."""
        for item in items:
            self.add_item(item)
        return self

    def add_from_bank(self, bank: ItemBank, *item_ids: str) -> "ExamBuilder":
        """Pull problems out of the problem database by identifier."""
        for item_id in item_ids:
            self.add_item(bank.get(item_id))
        return self

    # -- presentation -----------------------------------------------------------

    def group(
        self,
        name: str,
        item_ids: Sequence[str],
        template_name: Optional[str] = None,
    ) -> "ExamBuilder":
        """Create a presentation group over already-added items (§5.4)."""
        known = {item.item_id for item in self._items}
        missing = [item_id for item_id in item_ids if item_id not in known]
        if missing:
            raise AuthoringError(
                f"group {name!r} references items not yet added: {missing}"
            )
        if any(existing.name == name for existing in self._groups):
            raise DuplicateIdError(f"group {name!r} already defined")
        self._groups.append(
            ExamGroup(
                name=name, item_ids=list(item_ids), template_name=template_name
            )
        )
        return self

    def display(self, display_type: DisplayType) -> "ExamBuilder":
        """Set fixed or random presentation order."""
        self._display_type = display_type
        return self

    def time_limit(self, seconds: float) -> "ExamBuilder":
        """Set the §3.4 Test Time ("a default time limit for testing")."""
        if seconds <= 0:
            raise AuthoringError(f"time limit must be positive, got {seconds}")
        self._time_limit = float(seconds)
        return self

    def resumable(self, allowed: bool) -> "ExamBuilder":
        """Set whether paused sittings may resume."""
        self._resumable = allowed
        return self

    # -- construction -------------------------------------------------------------

    def build(self) -> Exam:
        """Validate and produce the exam."""
        exam = Exam(
            exam_id=self._exam_id,
            title=self._title,
            items=list(self._items),
            groups=list(self._groups),
            display_type=self._display_type,
            time_limit_seconds=self._time_limit,
            resumable=self._resumable,
        )
        exam.validate()
        return exam
