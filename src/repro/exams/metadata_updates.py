"""Writing measured statistics back into the MINE metadata (§3.3-§3.4).

The point of the assessment metadata is that measured attributes travel
with the content: after an administration, each item's Item Difficulty
Index, Item Discrimination Index, and distraction record (§3.3), and the
exam's Average Time and Instructional Sensitivity Index (§3.4), are
updated from the analysis.  The next author searching the bank then
filters on real statistics (see :meth:`repro.bank.search.Query.
with_difficulty`), and CAT pools calibrate from them
(:mod:`repro.adaptive.calibration`).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.errors import AnalysisError
from repro.core.exam_analysis import average_time
from repro.core.question_analysis import CohortAnalysis
from repro.exams.exam import Exam

__all__ = ["write_back_statistics"]


def write_back_statistics(
    exam: Exam,
    cohort: CohortAnalysis,
    durations_seconds: Optional[Sequence[float]] = None,
    instructional_sensitivity: Optional[Dict[str, float]] = None,
) -> int:
    """Update the exam's and items' metadata from a cohort analysis.

    * per analyzable item: ``item_difficulty_index`` (P),
      ``item_discrimination_index`` (D), and the distraction summary;
    * per exam: ``average_time_seconds`` from the sitting durations;
    * optionally, per item ISI values (item_id → ISI) are written into
      each item's ``distraction``-adjacent metadata — the paper stores
      ISI at exam level, so the exam gets the mean.

    Returns the number of items updated.  The cohort must have been
    produced from this exam's :meth:`~repro.exams.exam.Exam.
    question_specs` (same question count and order).
    """
    analyzable = exam.analyzable_items()
    if len(analyzable) != len(cohort.questions):
        raise AnalysisError(
            f"cohort has {len(cohort.questions)} analyzed questions but the "
            f"exam has {len(analyzable)} analyzable items"
        )
    updated = 0
    for item, analysis in zip(analyzable, cohort.questions):
        individual = item.metadata.assessment.individual_test
        individual.item_difficulty_index = analysis.difficulty
        individual.item_discrimination_index = analysis.discrimination
        if analysis.distraction is not None:
            individual.distraction = analysis.distraction.describe()
        updated += 1
    if durations_seconds:
        exam.metadata.assessment.exam.average_time_seconds = average_time(
            list(durations_seconds)
        )
    if instructional_sensitivity:
        values = [
            value
            for item_id, value in instructional_sensitivity.items()
            if any(item.item_id == item_id for item in analyzable)
        ]
        if values:
            exam.metadata.assessment.exam.instructional_sensitivity_index = (
                sum(values) / len(values)
            )
    return updated
