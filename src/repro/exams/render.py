"""Printable exam papers.

The authoring tool's output a learner actually sees (Figure 5's "exam
presentation style"): the exam title, instructions derived from the exam
attributes (time limit, resumability), group headers, and the numbered
items in a given learner's presentation order.  Also renders the answer
key for the teacher's copy.
"""

from __future__ import annotations

from typing import List, Optional

from repro.exams.exam import Exam
from repro.exams.ordering import ordered_items
from repro.items.rendering import render_item

__all__ = ["render_exam_paper", "render_answer_key"]


def _header(exam: Exam) -> List[str]:
    lines = ["=" * 60, exam.title.center(60), "=" * 60]
    details = [f"{len(exam.items)} questions"]
    if exam.time_limit_seconds is not None:
        details.append(f"time limit {exam.time_limit_seconds / 60:.0f} minutes")
    details.append(
        "may be paused and resumed" if exam.resumable
        else "cannot be resumed once paused"
    )
    lines.append("  |  ".join(details))
    lines.append("")
    return lines


def render_exam_paper(exam: Exam, learner_id: str = "") -> str:
    """The exam as the given learner sees it.

    Random-order exams need a ``learner_id`` (the order is seeded per
    learner); fixed-order exams accept the default.  Items inside a
    presentation group appear under the group's header.
    """
    exam.validate()
    lines = _header(exam)
    items = ordered_items(exam, learner_id or "-")
    current_group: Optional[str] = None
    for number, item in enumerate(items, start=1):
        group = exam.group_of(item.item_id)
        group_name = group.name if group is not None else None
        if group_name != current_group:
            if group_name is not None:
                lines.append(f"--- {group_name} ---")
            current_group = group_name
        lines.append(render_item(item, number=number))
        lines.append("")
    return "\n".join(lines)


def render_answer_key(exam: Exam) -> str:
    """The teacher's answer key, in authored order.

    Subjective items (essays, questionnaires) are marked as manually
    graded.
    """
    exam.validate()
    lines = [f"Answer key - {exam.title}"]
    for number, item in enumerate(exam.items, start=1):
        answer = item.answer_text()
        if answer is None:
            rendered = "(manually graded)"
        else:
            rendered = answer
        lines.append(f"{number:>3}. [{item.item_id}] {rendered}")
    return "\n".join(lines)
