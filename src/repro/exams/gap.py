"""Coverage-gap analysis: from §4.2.3 findings back to authoring.

The paper's motivation for the two-way specification table: "With the
cognition level analysis, teachers can avoid missing items in teaching."
This module closes that loop programmatically: :func:`coverage_gaps`
inspects a specification table and produces the
:class:`~repro.exams.blueprint.Blueprint` of questions that would repair
it — one question for every lost concept, plus the counts needed to
restore the SUM(A) ≥ … ≥ SUM(F) pyramid — and
:func:`repair_exam` assembles those questions from the bank and appends
them to the exam.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.cognition import COGNITIVE_LEVELS, CognitionLevel
from repro.core.spec_table import SpecificationTable
from repro.bank.itembank import ItemBank
from repro.exams.blueprint import Blueprint, assemble
from repro.exams.exam import Exam

__all__ = ["CoverageGaps", "coverage_gaps", "repair_exam"]


@dataclass
class CoverageGaps:
    """What the exam is missing, as a repair plan."""

    lost_concepts: List[str] = field(default_factory=list)
    #: per-level shortfall needed to restore the pyramid, A..F order
    pyramid_shortfall: List[int] = field(default_factory=list)
    blueprint: Blueprint = field(default_factory=Blueprint)

    @property
    def is_covered(self) -> bool:
        """True when nothing is missing."""
        return not self.lost_concepts and not any(self.pyramid_shortfall)

    def describe(self) -> str:
        """Human-readable summary of the gaps."""
        if self.is_covered:
            return "exam covers every concept; cognition pyramid holds"
        parts = []
        if self.lost_concepts:
            parts.append(
                "concepts lost from the exam: " + ", ".join(self.lost_concepts)
            )
        for level, shortfall in zip(COGNITIVE_LEVELS, self.pyramid_shortfall):
            if shortfall:
                parts.append(
                    f"need {shortfall} more {level.label} question(s) to "
                    f"restore the pyramid"
                )
        return "; ".join(parts)


def coverage_gaps(
    table: SpecificationTable,
    default_level: CognitionLevel = CognitionLevel.KNOWLEDGE,
    pyramid_concept: Optional[str] = None,
) -> CoverageGaps:
    """Compute the repair blueprint for a specification table.

    * each lost concept gets one ``default_level`` question;
    * each pyramid violation is repaired *bottom-up*: walking A→F, every
      level is topped up to at least the count of the level above it
      (the minimal addition that restores the ordering);
      ``pyramid_concept`` names the concept the pyramid questions are
      drawn from (defaults to the table's first concept).
    """
    gaps = CoverageGaps()
    for concept in table.lost_concepts():
        gaps.lost_concepts.append(concept)
        gaps.blueprint.require(concept, default_level, 1)

    sums = table.level_sums()
    required = list(sums)
    # walk from the top (F) downwards: each level must hold at least as
    # many questions as the level above it
    for index in range(len(required) - 2, -1, -1):
        required[index] = max(required[index], required[index + 1])
    shortfall = [need - have for need, have in zip(required, sums)]
    gaps.pyramid_shortfall = shortfall
    if any(shortfall):
        concept = pyramid_concept or (
            table.concepts[0] if table.concepts else "general"
        )
        for level, count in zip(COGNITIVE_LEVELS, shortfall):
            if count > 0:
                gaps.blueprint.require(concept, level, count)
    return gaps


def repair_exam(
    exam: Exam,
    bank: ItemBank,
    concepts: Sequence[str],
    repaired_exam_id: Optional[str] = None,
) -> Exam:
    """Assemble the gap questions from the bank and extend the exam.

    Returns a new validated exam containing the original items plus the
    repairs; raises :class:`~repro.core.errors.BlueprintError` when the
    bank cannot supply a needed cell.  When the exam has no gaps the
    original exam is returned unchanged.
    """
    table = exam.specification_table(concepts=concepts)
    gaps = coverage_gaps(table)
    if gaps.is_covered:
        return exam
    supplement = assemble(
        f"{exam.exam_id}-repair",
        "repair set",
        bank,
        gaps.blueprint,
    )
    existing = {item.item_id for item in exam.items}
    from repro.exams.authoring import ExamBuilder

    builder = ExamBuilder(
        repaired_exam_id or f"{exam.exam_id}-v2", exam.title
    )
    builder.add_items(exam.items)
    builder.add_items(
        [item for item in supplement.items if item.item_id not in existing]
    )
    if exam.time_limit_seconds is not None:
        builder.time_limit(exam.time_limit_seconds)
    builder.display(exam.display_type)
    builder.resumable(exam.resumable)
    return builder.build()
