"""Blueprint-driven exam assembly.

Section 4.2's two-way specification table is not only an *analysis* tool;
the paper's motivation ("With the cognition level analysis, teachers can
avoid missing items in teaching") implies assembling exams that *cover*
the specification.  :class:`Blueprint` states the target: how many
questions each (concept, cognition level) cell needs; :func:`assemble`
fills it from the problem bank and fails with a precise shortfall report
when the bank cannot satisfy it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cognition import CognitionLevel
from repro.core.errors import BlueprintError
from repro.bank.itembank import ItemBank
from repro.exams.authoring import ExamBuilder
from repro.exams.exam import Exam
from repro.items.base import Item

__all__ = ["Blueprint", "assemble"]


@dataclass
class Blueprint:
    """Target question counts per (concept, cognition level) cell."""

    targets: Dict[Tuple[str, CognitionLevel], int] = field(default_factory=dict)

    def require(
        self, concept: str, level: CognitionLevel, count: int = 1
    ) -> "Blueprint":
        """Add a requirement; chaining supported."""
        if count < 1:
            raise BlueprintError(f"cell count must be positive, got {count}")
        if not concept:
            raise BlueprintError("concept must be non-empty")
        key = (concept, level)
        self.targets[key] = self.targets.get(key, 0) + count
        return self

    def total(self) -> int:
        """Total questions the blueprint requires."""
        return sum(self.targets.values())

    def concepts(self) -> List[str]:
        """Distinct concepts, in first-required order."""
        seen: Dict[str, None] = {}
        for concept, _ in self.targets:
            seen.setdefault(concept, None)
        return list(seen)


def assemble(
    exam_id: str,
    title: str,
    bank: ItemBank,
    blueprint: Blueprint,
    time_limit_seconds: Optional[float] = None,
    difficulty_band: Optional[Tuple[float, float]] = None,
) -> Exam:
    """Assemble an exam from the bank satisfying the blueprint.

    Items are selected per cell in bank insertion order; an optional
    ``difficulty_band`` restricts selection to items whose stored
    Item Difficulty Index lies within the band (items without a stored
    index are always eligible — new questions have no statistics yet).

    Raises :class:`BlueprintError` listing every unsatisfiable cell.
    """
    if blueprint.total() == 0:
        raise BlueprintError("blueprint is empty")
    chosen: List[Item] = []
    chosen_ids: set = set()
    shortfalls: List[str] = []
    for (concept, level), needed in blueprint.targets.items():
        candidates = [
            item
            for item in bank
            if item.subject == concept
            and item.cognition_level is level
            and item.item_id not in chosen_ids
            and _difficulty_ok(item, difficulty_band)
        ]
        if len(candidates) < needed:
            shortfalls.append(
                f"({concept}, {level.label}): need {needed}, bank has "
                f"{len(candidates)}"
            )
            continue
        for item in candidates[:needed]:
            chosen.append(item)
            chosen_ids.add(item.item_id)
    if shortfalls:
        raise BlueprintError(
            "bank cannot satisfy the blueprint: " + "; ".join(shortfalls)
        )
    builder = ExamBuilder(exam_id, title).add_items(chosen)
    if time_limit_seconds is not None:
        builder.time_limit(time_limit_seconds)
    return builder.build()


def _difficulty_ok(
    item: Item, band: Optional[Tuple[float, float]]
) -> bool:
    if band is None:
        return True
    low, high = band
    difficulty = item.metadata.assessment.individual_test.item_difficulty_index
    if difficulty is None:
        return True
    return low <= difficulty <= high
