"""Exam authoring (paper §5.4): the exam model, the fluent builder, the
group service, delivery ordering, and blueprint-driven assembly."""

from repro.exams.authoring import ExamBuilder
from repro.exams.blueprint import Blueprint, assemble
from repro.exams.exam import Exam, ExamGroup
from repro.exams.gap import CoverageGaps, coverage_gaps, repair_exam
from repro.exams.metadata_updates import write_back_statistics
from repro.exams.ordering import ordered_items, presentation_order
from repro.exams.render import render_answer_key, render_exam_paper

__all__ = [
    "Exam",
    "ExamGroup",
    "ExamBuilder",
    "Blueprint",
    "assemble",
    "CoverageGaps",
    "coverage_gaps",
    "repair_exam",
    "write_back_statistics",
    "presentation_order",
    "ordered_items",
    "render_exam_paper",
    "render_answer_key",
]
