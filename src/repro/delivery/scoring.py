"""Scoring submitted sittings and bridging them into the analysis model.

:func:`grade_session` turns a submitted :class:`ExamSession` into a
:class:`GradedSitting`: per-item scored responses, the total, and the
pending-manual-grading list (essays).  :func:`sittings_to_responses`
converts a cohort of graded sittings into the
:class:`~repro.core.question_analysis.ExamineeResponses` the §4.1
analysis pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import ResponseError, SessionStateError
from repro.core.question_analysis import ExamineeResponses
from repro.delivery.session import ExamSession, SessionState
from repro.exams.exam import Exam
from repro.items.essay import EssayItem
from repro.items.responses import ScoredResponse

__all__ = ["GradedSitting", "grade_session", "sittings_to_responses"]


@dataclass
class GradedSitting:
    """One learner's graded sitting."""

    exam_id: str
    learner_id: str
    scores: Dict[str, ScoredResponse]
    duration_seconds: float
    answer_times: List[float] = field(default_factory=list)

    @property
    def total_points(self) -> float:
        """Points earned across all items."""
        return sum(score.points for score in self.scores.values())

    @property
    def max_points(self) -> float:
        """Points available across all items."""
        return sum(score.max_points for score in self.scores.values())

    @property
    def percent(self) -> float:
        """Earned share of the available points, 0-100."""
        maximum = self.max_points
        return (self.total_points / maximum * 100.0) if maximum else 0.0

    def pending_items(self) -> List[str]:
        """Item ids awaiting manual grading."""
        return [
            item_id
            for item_id, score in self.scores.items()
            if score.needs_manual_grading
        ]

    def is_fully_graded(self) -> bool:
        """True when no item awaits manual grading."""
        return not self.pending_items()

    def apply_manual_grade(
        self, exam: Exam, item_id: str, points: float
    ) -> None:
        """Record a human grader's points for a pending essay response."""
        score = self.scores.get(item_id)
        if score is None:
            raise ResponseError(f"sitting has no response for {item_id!r}")
        if not score.needs_manual_grading:
            raise ResponseError(f"item {item_id!r} is not awaiting grading")
        item = exam.item(item_id)
        if not isinstance(item, EssayItem):
            raise ResponseError(
                f"item {item_id!r} is not an essay; cannot manually grade"
            )
        self.scores[item_id] = item.grade(score.selected or "", points)


def grade_session(session: ExamSession) -> GradedSitting:
    """Grade a submitted session against its exam's keys."""
    if session.state is not SessionState.SUBMITTED:
        raise SessionStateError(
            f"cannot grade a session in state {session.state.value}"
        )
    scores: Dict[str, ScoredResponse] = {}
    for item in session.exam.items:
        response = session.response_to(item.item_id)
        scores[item.item_id] = item.score(response)
    return GradedSitting(
        exam_id=session.exam.exam_id,
        learner_id=session.learner_id,
        scores=scores,
        duration_seconds=session.duration_seconds(),
        answer_times=session.answer_times(),
    )


def sittings_to_responses(
    exam: Exam, sittings: List[GradedSitting]
) -> List[ExamineeResponses]:
    """Convert graded sittings to the analysis model's input shape.

    Covers the choice-style items :meth:`Exam.question_specs` declares
    (multiple choice / true-false), in exam order; the recorded selection
    is the scored response's normalized ``selected`` label.
    """
    analyzable = exam.analyzable_items()
    responses: List[ExamineeResponses] = []
    for sitting in sittings:
        selections: List[Optional[str]] = []
        for item in analyzable:
            score = sitting.scores.get(item.item_id)
            selections.append(score.selected if score is not None else None)
        responses.append(
            ExamineeResponses.of(
                sitting.learner_id,
                selections,
                duration_seconds=sitting.duration_seconds,
            )
        )
    return responses
