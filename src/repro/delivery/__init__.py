"""Exam delivery runtime: the session state machine, timing, scoring."""

from repro.delivery.clock import Clock, ManualClock, WallClock
from repro.delivery.scoring import (
    GradedSitting,
    grade_session,
    sittings_to_responses,
)
from repro.delivery.session import AnswerEvent, ExamSession, SessionState

__all__ = [
    "Clock",
    "WallClock",
    "ManualClock",
    "ExamSession",
    "SessionState",
    "AnswerEvent",
    "GradedSitting",
    "grade_session",
    "sittings_to_responses",
]
