"""Clock abstraction for exam timing.

Exam sessions need elapsed-time accounting (the §3.4 Test Time limit and
Average Time statistic).  Production code would use the wall clock;
simulations and tests need a controllable one.  Both implement
:class:`Clock`.
"""

from __future__ import annotations

import time
from typing import Protocol

from repro.core.errors import DeliveryError

__all__ = ["Clock", "WallClock", "ManualClock", "OffsetClock"]


class Clock(Protocol):
    """Anything that reports monotonically non-decreasing seconds."""

    def now(self) -> float:
        """Current time in seconds (origin arbitrary but fixed)."""
        ...


class WallClock:
    """The real (monotonic) clock."""

    def now(self) -> float:
        """Monotonic seconds from an arbitrary origin."""
        return time.monotonic()


class OffsetClock:
    """A wall clock re-anchored to continue a prior timeline.

    ``time.monotonic`` restarts from an arbitrary origin every boot, so
    timestamps persisted by one process (session start times, tracking
    events) are meaningless against a fresh :class:`WallClock`.  An
    ``OffsetClock(origin)`` starts ticking at ``origin`` — the persisted
    "now" of the process that wrote the snapshot — keeping every stored
    timestamp comparable and elapsed-time accounting monotonic across
    restarts (used by :mod:`repro.lms.persistence` and
    :mod:`repro.store.recovery`).
    """

    def __init__(self, origin: float = 0.0) -> None:
        self._base = float(origin) - time.monotonic()

    def now(self) -> float:
        """Monotonic seconds continuing the anchored timeline."""
        return self._base + time.monotonic()


class ManualClock:
    """A clock advanced explicitly — deterministic tests and simulation."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """The manually controlled current time."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (>= 0)."""
        if seconds < 0:
            raise DeliveryError(f"cannot advance clock by {seconds}")
        self._now += seconds

    def set(self, timestamp: float) -> None:
        """Jump the clock to ``timestamp`` (never backwards)."""
        if timestamp < self._now:
            raise DeliveryError(
                f"cannot move clock backwards ({self._now} -> {timestamp})"
            )
        self._now = timestamp
