"""The exam delivery session (paper §5: "Learners take the exam or the
problems with Internet browser").

:class:`ExamSession` is the server-side state machine of one learner's
sitting:

* ``start`` → the learner sees items in their presentation order
  (fixed or per-learner random, §3.2 VI.C);
* ``answer`` records a response with its elapsed timestamp (feeding the
  §4.2.1 time-vs-answered figure);
* ``suspend``/``resume`` honour the exam's Resumable flag (§3.2 VI.B:
  "True means resumed and false means paused at a later time" — a
  non-resumable exam cannot be continued once suspended);
* the §3.4 Test Time limit is enforced: answers after expiry raise
  :class:`TimeLimitExceeded`, and ``submit`` still succeeds (the sitting
  is closed with whatever was answered);
* ``submit`` freezes the response set for scoring.

Every lifecycle method accepts an optional explicit ``now`` timestamp.
When given, it replaces *all* clock reads the call would make, so one
sampled timestamp drives the whole transition — the property the LMS
write-ahead journal relies on to make a replayed session bit-identical
to the live one (:mod:`repro.store`).  ``export_state`` /
``from_state`` round-trip a session through JSON for the same reason:
a snapshot must be able to persist an in-flight sitting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.errors import (
    NotFoundError,
    SessionStateError,
    TimeLimitExceeded,
)
from repro.delivery.clock import Clock, WallClock
from repro.exams.exam import Exam
from repro.exams.ordering import presentation_order

__all__ = ["SessionState", "AnswerEvent", "ExamSession"]


class SessionState(enum.Enum):
    """Sitting lifecycle: created, in progress, suspended, submitted."""
    CREATED = "created"
    IN_PROGRESS = "in_progress"
    SUSPENDED = "suspended"
    SUBMITTED = "submitted"


@dataclass(frozen=True)
class AnswerEvent:
    """One committed answer: which item, what, and when (elapsed s)."""

    item_id: str
    response: object
    elapsed_seconds: float


class ExamSession:
    """One learner's sitting of one exam."""

    def __init__(
        self,
        exam: Exam,
        learner_id: str,
        clock: Optional[Clock] = None,
    ) -> None:
        if not learner_id:
            raise SessionStateError("learner_id must be non-empty")
        exam.validate()
        self.exam = exam
        self.learner_id = learner_id
        self._clock = clock if clock is not None else WallClock()
        self._state = SessionState.CREATED
        self._started_at: Optional[float] = None
        self._elapsed_before_suspend = 0.0
        self._resumed_at: Optional[float] = None
        self._answers: Dict[str, AnswerEvent] = {}
        self._events: List[AnswerEvent] = []
        self._submitted_elapsed: Optional[float] = None

    # -- state inspection -----------------------------------------------------

    @property
    def state(self) -> SessionState:
        """The session's lifecycle state."""
        return self._state

    def _now(self, now: Optional[float]) -> float:
        return self._clock.now() if now is None else now

    def elapsed_seconds(self, now: Optional[float] = None) -> float:
        """Time the learner has actively spent in the sitting."""
        if self._state is SessionState.CREATED:
            return 0.0
        if self._state is SessionState.SUSPENDED:
            return self._elapsed_before_suspend
        if self._state is SessionState.SUBMITTED:
            return self._submitted_elapsed or 0.0
        return self._elapsed_before_suspend + (
            self._now(now) - (self._resumed_at or 0.0)
        )

    def remaining_seconds(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds left before the Test Time limit, or None when unlimited."""
        limit = self.exam.time_limit_seconds
        if limit is None:
            return None
        return max(0.0, limit - self.elapsed_seconds(now))

    def time_expired(self, now: Optional[float] = None) -> bool:
        """True when the Test Time limit has run out."""
        remaining = self.remaining_seconds(now)
        return remaining is not None and remaining <= 0.0

    # -- lifecycle --------------------------------------------------------------

    def start(self, now: Optional[float] = None) -> List[str]:
        """Begin the sitting; returns item ids in presentation order."""
        if self._state is not SessionState.CREATED:
            raise SessionStateError(
                f"cannot start a session in state {self._state.value}"
            )
        self._state = SessionState.IN_PROGRESS
        self._started_at = self._now(now)
        self._resumed_at = self._started_at
        order = presentation_order(self.exam, self.learner_id)
        return [self.exam.items[index].item_id for index in order]

    def answer(
        self, item_id: str, response: object, now: Optional[float] = None
    ) -> AnswerEvent:
        """Record (or overwrite) the learner's answer to one item."""
        if self._state is not SessionState.IN_PROGRESS:
            raise SessionStateError(
                f"cannot answer in state {self._state.value}"
            )
        at = self._now(now)
        if self.time_expired(at):
            raise TimeLimitExceeded(
                f"test time of {self.exam.time_limit_seconds}s has expired"
            )
        item = self.exam.item(item_id)  # raises NotFoundError for unknown ids
        item.score(response)  # validates the response shape; result discarded
        event = AnswerEvent(
            item_id=item_id,
            response=response,
            elapsed_seconds=self.elapsed_seconds(at),
        )
        self._answers[item_id] = event
        self._events.append(event)
        return event

    def suspend(self, now: Optional[float] = None) -> None:
        """Pause the sitting (always allowed; *resuming* may not be)."""
        if self._state is not SessionState.IN_PROGRESS:
            raise SessionStateError(
                f"cannot suspend a session in state {self._state.value}"
            )
        self._elapsed_before_suspend = self.elapsed_seconds(now)
        self._resumed_at = None
        self._state = SessionState.SUSPENDED

    def resume(self, now: Optional[float] = None) -> None:
        """Continue a suspended sitting — only if the exam is resumable."""
        if self._state is not SessionState.SUSPENDED:
            raise SessionStateError(
                f"cannot resume a session in state {self._state.value}"
            )
        if not self.exam.resumable:
            raise SessionStateError(
                f"exam {self.exam.exam_id!r} is not resumable; the sitting "
                f"is paused for good"
            )
        self._state = SessionState.IN_PROGRESS
        self._resumed_at = self._now(now)

    def submit(self, now: Optional[float] = None) -> None:
        """Close the sitting; answers become immutable."""
        if self._state not in (SessionState.IN_PROGRESS, SessionState.SUSPENDED):
            raise SessionStateError(
                f"cannot submit a session in state {self._state.value}"
            )
        self._submitted_elapsed = self.elapsed_seconds(now)
        self._state = SessionState.SUBMITTED

    # -- results ----------------------------------------------------------------

    def response_to(self, item_id: str) -> Optional[object]:
        """The current response to an item (None when unanswered)."""
        if item_id not in {item.item_id for item in self.exam.items}:
            raise NotFoundError(
                f"exam {self.exam.exam_id!r} has no item {item_id!r}"
            )
        event = self._answers.get(item_id)
        return event.response if event is not None else None

    def answered_item_ids(self) -> List[str]:
        """Item ids with a recorded answer, in first-answer order."""
        return list(self._answers)

    def answer_events(self) -> List[AnswerEvent]:
        """Every answer commit, in order (overwrites appear twice)."""
        return list(self._events)

    def answer_times(self) -> List[float]:
        """Elapsed commit times of the *final* answer per item, sorted —
        the per-examinee series the §4.2.1 figure (1) consumes."""
        return sorted(event.elapsed_seconds for event in self._answers.values())

    def duration_seconds(self) -> float:
        """Total active time of the (submitted) sitting."""
        if self._state is not SessionState.SUBMITTED:
            raise SessionStateError("session not yet submitted")
        return self._submitted_elapsed or 0.0

    # -- persistence -------------------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """The session's full durable state, JSON-shaped.

        Timestamps are raw clock values (the LMS clock's timeline);
        restoring into the *same* logical timeline — which
        :mod:`repro.lms.persistence` guarantees by persisting and
        re-anchoring the clock — keeps elapsed-time accounting exact.
        Responses must be JSON-serializable (they are wire payloads in
        every served deployment).
        """
        return {
            "learner_id": self.learner_id,
            "state": self._state.value,
            "started_at": self._started_at,
            "elapsed_before_suspend": self._elapsed_before_suspend,
            "resumed_at": self._resumed_at,
            "submitted_elapsed": self._submitted_elapsed,
            "events": [
                {
                    "item_id": event.item_id,
                    "response": event.response,
                    "elapsed_seconds": event.elapsed_seconds,
                }
                for event in self._events
            ],
        }

    @classmethod
    def from_state(
        cls,
        exam: Exam,
        state: Dict[str, object],
        clock: Optional[Clock] = None,
    ) -> "ExamSession":
        """Rebuild a session from :meth:`export_state` output."""
        session = cls(exam, str(state["learner_id"]), clock=clock)
        session._state = SessionState(state["state"])
        started_at = state.get("started_at")
        session._started_at = (
            float(started_at) if started_at is not None else None
        )
        session._elapsed_before_suspend = float(
            state.get("elapsed_before_suspend", 0.0)
        )
        resumed_at = state.get("resumed_at")
        session._resumed_at = (
            float(resumed_at) if resumed_at is not None else None
        )
        submitted = state.get("submitted_elapsed")
        session._submitted_elapsed = (
            float(submitted) if submitted is not None else None
        )
        for record in state.get("events", []):
            event = AnswerEvent(
                item_id=str(record["item_id"]),
                response=record.get("response"),
                elapsed_seconds=float(record["elapsed_seconds"]),
            )
            session._events.append(event)
            # plain assignment, like live answer(): the latest commit
            # per item wins but first-answer dict order is kept
            session._answers[event.item_id] = event
        return session
