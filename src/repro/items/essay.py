"""Essay items (§3.2 I: "Defines the text of an open-ended essay question.
You can also use it to represent shorter fill-in-the blank.  Two elements
are Question and Hint.").

Essays are subjective: :meth:`EssayItem.score` returns a *pending* result
that a human grades later via :meth:`EssayItem.grade`.  An optional
``model_answer`` supports the grader and the §3.3 Answer metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.errors import ItemError, ResponseError
from repro.core.metadata import QuestionStyle
from repro.items.base import Item
from repro.items.responses import ScoredResponse

__all__ = ["EssayItem"]


@dataclass
class EssayItem(Item):
    """An open-ended question graded by a human."""

    model_answer: str = ""
    max_points: float = 1.0
    min_length: int = 0

    def style(self) -> QuestionStyle:
        """This item's question style (essay)."""
        return QuestionStyle.ESSAY

    def answer_text(self) -> Optional[str]:
        """The model answer, when one was written."""
        return self.model_answer or None

    def validate(self) -> None:
        """Structural checks: positive points, sane minimum length."""
        if self.max_points <= 0:
            raise ItemError(
                f"item {self.item_id!r}: max_points must be positive, got "
                f"{self.max_points}"
            )
        if self.min_length < 0:
            raise ItemError(
                f"item {self.item_id!r}: min_length must be >= 0"
            )

    def score(self, response: object) -> ScoredResponse:
        """Queue the text for manual grading; empty/short answers are wrong."""
        if response is None:
            return ScoredResponse.wrong(max_points=self.max_points, selected=None)
        if not isinstance(response, str):
            raise ResponseError(
                f"item {self.item_id!r}: essay response must be text, got "
                f"{type(response).__name__}"
            )
        text = response.strip()
        if not text or len(text) < self.min_length:
            return ScoredResponse.wrong(max_points=self.max_points, selected=text)
        return ScoredResponse.pending(max_points=self.max_points, selected=text)

    def grade(self, response: str, points: float) -> ScoredResponse:
        """Record a human grader's decision on an essay response."""
        if not 0 <= points <= self.max_points:
            raise ResponseError(
                f"item {self.item_id!r}: awarded points {points} outside "
                f"[0, {self.max_points}]"
            )
        return ScoredResponse(
            points=points,
            max_points=self.max_points,
            correct=points == self.max_points,
            needs_manual_grading=False,
            selected=response,
        )

    def content_fields(self) -> Dict[str, object]:
        """The content section as a JSON-ready dict."""
        return {
            "question": self.question,
            "hint": self.hint,
            "model_answer": self.model_answer,
            "max_points": self.max_points,
            "min_length": self.min_length,
        }
