"""Completion items (§3.2 V: "Design a question like fill-in blank or
cloze").

The stem contains ``___`` blank markers; the key lists the accepted
answers per blank.  Scoring awards one point per correctly filled blank
(partial credit), with optional case-insensitive comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.errors import ItemError, ResponseError
from repro.core.metadata import QuestionStyle
from repro.items.base import Item
from repro.items.responses import ScoredResponse

__all__ = ["CompletionItem", "BLANK_MARKER"]

#: The marker that denotes a blank in the stem.
BLANK_MARKER = "___"


@dataclass
class CompletionItem(Item):
    """Fill-in-the-blank / cloze question.

    ``accepted_answers[i]`` lists every string accepted for blank ``i``.
    """

    accepted_answers: List[List[str]] = field(default_factory=list)
    case_sensitive: bool = False

    def style(self) -> QuestionStyle:
        """This item's question style (completion)."""
        return QuestionStyle.COMPLETION

    @property
    def blank_count(self) -> int:
        """How many ``___`` markers the stem contains."""
        return self.question.count(BLANK_MARKER)

    def answer_text(self) -> Optional[str]:
        """The first accepted answer per blank, joined."""
        if not self.accepted_answers:
            return None
        return " | ".join(
            answers[0] if answers else "?" for answers in self.accepted_answers
        )

    def validate(self) -> None:
        """Structural checks: blanks exist and each accepts answers."""
        blanks = self.blank_count
        if blanks == 0:
            raise ItemError(
                f"item {self.item_id!r}: stem has no {BLANK_MARKER!r} blank "
                f"markers"
            )
        if len(self.accepted_answers) != blanks:
            raise ItemError(
                f"item {self.item_id!r}: stem has {blanks} blanks but "
                f"{len(self.accepted_answers)} answer lists"
            )
        for index, answers in enumerate(self.accepted_answers):
            if not answers:
                raise ItemError(
                    f"item {self.item_id!r}: blank {index} accepts no answers"
                )
            if any(not answer for answer in answers):
                raise ItemError(
                    f"item {self.item_id!r}: blank {index} has an empty "
                    f"accepted answer"
                )

    def score(self, response: object) -> ScoredResponse:
        """Grade a sequence of blank fillings (one string per blank)."""
        max_points = float(len(self.accepted_answers))
        if response is None:
            return ScoredResponse.wrong(max_points=max_points, selected=None)
        if isinstance(response, str):
            # a single-blank item may receive a bare string
            response = [response]
        if not isinstance(response, Sequence):
            raise ResponseError(
                f"item {self.item_id!r}: completion response must be a "
                f"sequence of strings"
            )
        if len(response) != len(self.accepted_answers):
            raise ResponseError(
                f"item {self.item_id!r}: expected {len(self.accepted_answers)} "
                f"blank fillings, got {len(response)}"
            )
        points = 0.0
        for filled, accepted in zip(response, self.accepted_answers):
            if filled is None:
                continue
            if self._matches(str(filled), accepted):
                points += 1.0
        rendering = " | ".join("-" if r is None else str(r) for r in response)
        return ScoredResponse.partial(
            points=points, max_points=max_points, selected=rendering
        )

    def _matches(self, filled: str, accepted: Sequence[str]) -> bool:
        candidate = filled.strip()
        if not self.case_sensitive:
            candidate = candidate.lower()
            return candidate in (answer.strip().lower() for answer in accepted)
        return candidate in (answer.strip() for answer in accepted)

    def content_fields(self) -> Dict[str, object]:
        """The content section as a JSON-ready dict."""
        return {
            "question": self.question,
            "hint": self.hint,
            "accepted_answers": [list(a) for a in self.accepted_answers],
            "case_sensitive": self.case_sensitive,
        }
