"""Multiple-choice items (§3.2 III, §5.1 "choice problem").

A :class:`MultipleChoiceItem` has labelled options and exactly one correct
option — the analysis model's rules (Table 1, the four rules) are defined
over this style.  Options carry their own text and label; labels default
to "A", "B", ... as in the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ItemError, ResponseError
from repro.core.metadata import QuestionStyle
from repro.items.base import Item
from repro.items.responses import ScoredResponse

__all__ = ["Choice", "MultipleChoiceItem"]


@dataclass
class Choice:
    """One selectable option: its label (e.g. "A") and display text."""

    label: str
    text: str

    def __post_init__(self) -> None:
        if not self.label:
            raise ItemError("choice label must be non-empty")
        if not self.text:
            raise ItemError(f"choice {self.label!r}: text must be non-empty")


@dataclass
class MultipleChoiceItem(Item):
    """A question with multiple choice answers and a single key."""

    choices: List[Choice] = field(default_factory=list)
    correct_label: str = ""

    @classmethod
    def build(
        cls,
        item_id: str,
        question: str,
        option_texts: Sequence[str],
        correct_index: int,
        labels: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> "MultipleChoiceItem":
        """Convenience constructor from option texts and a correct index.

        Labels default to "A", "B", ... matching the paper's notation.
        """
        if labels is None:
            labels = [chr(ord("A") + i) for i in range(len(option_texts))]
        if len(labels) != len(option_texts):
            raise ItemError(
                f"got {len(labels)} labels for {len(option_texts)} options"
            )
        if not 0 <= correct_index < len(option_texts):
            raise ItemError(
                f"correct_index {correct_index} out of range for "
                f"{len(option_texts)} options"
            )
        choices = [
            Choice(label=label, text=text)
            for label, text in zip(labels, option_texts)
        ]
        item = cls(
            item_id=item_id,
            question=question,
            choices=choices,
            correct_label=labels[correct_index],
            **kwargs,
        )
        item.validate()
        return item

    def style(self) -> QuestionStyle:
        """This item's question style (multiple choice)."""
        return QuestionStyle.MULTIPLE_CHOICE

    @property
    def labels(self) -> Tuple[str, ...]:
        """The option labels, in display order."""
        return tuple(choice.label for choice in self.choices)

    def answer_text(self) -> Optional[str]:
        """The correct option label."""
        return self.correct_label or None

    def validate(self) -> None:
        """Structural checks: >= 2 options, unique labels, key exists."""
        if len(self.choices) < 2:
            raise ItemError(
                f"item {self.item_id!r}: multiple choice needs at least two "
                f"options, got {len(self.choices)}"
            )
        labels = self.labels
        if len(set(labels)) != len(labels):
            raise ItemError(f"item {self.item_id!r}: duplicate option labels")
        if self.correct_label not in labels:
            raise ItemError(
                f"item {self.item_id!r}: correct label {self.correct_label!r} "
                f"is not among the options {labels}"
            )

    def score(self, response: object) -> ScoredResponse:
        """Grade a selected option label; ``None`` means skipped (wrong,
        recorded as no selection)."""
        if response is None:
            return ScoredResponse.wrong(selected=None)
        if not isinstance(response, str):
            raise ResponseError(
                f"item {self.item_id!r}: choice response must be an option "
                f"label string, got {type(response).__name__}"
            )
        if response not in self.labels:
            raise ResponseError(
                f"item {self.item_id!r}: unknown option {response!r}; "
                f"valid options are {self.labels}"
            )
        if response == self.correct_label:
            return ScoredResponse.right(selected=response)
        return ScoredResponse.wrong(selected=response)

    def content_fields(self) -> Dict[str, object]:
        """The content section as a JSON-ready dict."""
        return {
            "question": self.question,
            "hint": self.hint,
            "options": [
                {"label": choice.label, "text": choice.text}
                for choice in self.choices
            ],
            "correct_label": self.correct_label,
        }
