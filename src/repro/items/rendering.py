"""Text rendering of items and laid-out problems.

Renders items the way the paper's authoring interface displays them
(Figures 3-4): the stem, then options/blanks, then the hint.  Also
renders :class:`~repro.items.templates.LaidOutElement` lists onto a
character canvas, honouring the template positions.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.errors import ItemError
from repro.items.base import Item
from repro.items.templates import LaidOutElement

__all__ = ["render_item", "render_layout"]


def render_item(item: Item, number: int = 0) -> str:
    """Render one item as plain text, numbered when ``number`` > 0."""
    prefix = f"{number}. " if number else ""
    lines: List[str] = [f"{prefix}{item.question}"]
    fields = item.content_fields()
    options = fields.get("options")
    premises = fields.get("premises")
    if isinstance(options, list) and premises is None:
        for option in options:
            lines.append(f"   ({option['label']}) {option['text']}")
    if "correct_value" in fields:
        lines.append("   ( ) True    ( ) False")
    if isinstance(premises, list):
        for premise in premises:
            lines.append(f"   {premise}  ->  ____")
        lines.append("   choices: " + ", ".join(options or []))
    scale = fields.get("scale")
    if isinstance(scale, list) and scale:
        lines.append("   scale: " + " / ".join(scale))
    if item.hint:
        lines.append(f"   Hint: {item.hint}")
    return "\n".join(lines)


def render_layout(elements: Sequence[LaidOutElement], width: int = 80) -> str:
    """Paint positioned elements onto a character canvas."""
    if width < 10:
        raise ItemError(f"canvas width too small: {width}")
    if not elements:
        return ""
    height = max(element.y for element in elements) + 1
    canvas = [[" "] * width for _ in range(height)]
    for element in elements:
        column = min(element.x, width - 1)
        for offset, char in enumerate(element.text):
            if column + offset >= width:
                break
            canvas[element.y][column + offset] = char
    return "\n".join("".join(row).rstrip() for row in canvas)
