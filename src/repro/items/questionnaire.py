"""Questionnaire items (§3.2 VI).

A questionnaire question collects an opinion/response on a scale or as
free text — there is no correct answer, so every response scores zero
points out of zero and is recorded for later tabulation.  The §3.2
attributes are carried in the metadata: ``resumable`` ("True means resumed
and false means paused at a later time") and ``display_type`` (fixed or
random order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.errors import ItemError, ResponseError
from repro.core.metadata import DisplayType, QuestionStyle
from repro.items.base import Item
from repro.items.responses import ScoredResponse

__all__ = ["QuestionnaireItem"]


@dataclass
class QuestionnaireItem(Item):
    """An opinion/scale question with no correct answer.

    ``scale`` optionally constrains responses to a fixed set of labels
    (e.g. a Likert scale); empty means free text.
    """

    scale: List[str] = field(default_factory=list)
    resumable: bool = True
    display_type: DisplayType = DisplayType.FIXED_ORDER

    def __post_init__(self) -> None:
        super().__post_init__()
        self.metadata.assessment.questionnaire.resumable = self.resumable
        self.metadata.assessment.questionnaire.display_type = self.display_type

    def style(self) -> QuestionStyle:
        """This item's question style (questionnaire)."""
        return QuestionStyle.QUESTIONNAIRE

    def validate(self) -> None:
        """Structural checks: scale labels unique and non-empty."""
        if len(set(self.scale)) != len(self.scale):
            raise ItemError(f"item {self.item_id!r}: duplicate scale labels")
        if any(not label for label in self.scale):
            raise ItemError(f"item {self.item_id!r}: empty scale label")

    def score(self, response: object) -> ScoredResponse:
        """Record the response; questionnaires contribute no score."""
        if response is None:
            return ScoredResponse(
                points=0.0, max_points=0.0, correct=None, selected=None
            )
        if not isinstance(response, str):
            raise ResponseError(
                f"item {self.item_id!r}: questionnaire response must be text"
            )
        if self.scale and response not in self.scale:
            raise ResponseError(
                f"item {self.item_id!r}: response {response!r} not on the "
                f"scale {self.scale}"
            )
        return ScoredResponse(
            points=0.0, max_points=0.0, correct=None, selected=response
        )

    def content_fields(self) -> Dict[str, object]:
        """The content section as a JSON-ready dict."""
        return {
            "question": self.question,
            "hint": self.hint,
            "scale": list(self.scale),
            "resumable": self.resumable,
            "display_type": self.display_type.value,
        }
