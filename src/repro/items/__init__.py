"""Assessment items: the six question styles of paper §3.2 plus the
presentation templates of §5.3 and the QTI exchange binding of §2.3."""

from repro.items.base import Item, Picture
from repro.items.choice import Choice, MultipleChoiceItem
from repro.items.completion import BLANK_MARKER, CompletionItem
from repro.items.essay import EssayItem
from repro.items.matching import MatchItem
from repro.items.qti import (
    item_from_qti,
    item_from_qti_xml,
    item_to_qti,
    item_to_qti_xml,
)
from repro.items.questionnaire import QuestionnaireItem
from repro.items.rendering import render_item, render_layout
from repro.items.responses import ScoredResponse
from repro.items.templates import (
    LaidOutElement,
    Slot,
    Template,
    TemplateLibrary,
    apply_template,
    default_choice_template,
)
from repro.items.truefalse import TrueFalseItem

__all__ = [
    "Item",
    "Picture",
    "Choice",
    "MultipleChoiceItem",
    "TrueFalseItem",
    "EssayItem",
    "MatchItem",
    "CompletionItem",
    "BLANK_MARKER",
    "QuestionnaireItem",
    "ScoredResponse",
    "Slot",
    "Template",
    "TemplateLibrary",
    "apply_template",
    "default_choice_template",
    "LaidOutElement",
    "render_item",
    "render_layout",
    "item_to_qti",
    "item_to_qti_xml",
    "item_from_qti",
    "item_from_qti_xml",
]
