"""Base classes for assessment items (paper §3.2, §5.1, §5.2).

Section 5.2 says a problem "has two sections, one is metadata information,
and another one is problem content".  :class:`Item` mirrors that: every
item carries a :class:`~repro.core.metadata.MineMetadata` document (the
metadata section) and style-specific content (defined by subclasses).

Subclasses implement:

* :meth:`Item.style` — which §3.2 question style the item is;
* :meth:`Item.score` — grade a raw response, returning a
  :class:`~repro.items.responses.ScoredResponse`;
* :meth:`Item.validate` — structural checks (has a key, has options, ...);
* :meth:`Item.content_fields` — the content section as a flat dict used
  by the QTI binding and the bank's persistence layer.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.cognition import CognitionLevel
from repro.core.errors import ItemError
from repro.core.metadata import MineMetadata, QuestionStyle

__all__ = ["Item", "Picture"]


@dataclass
class Picture:
    """A picture placed in a problem (§5.3: "We can put a picture in a
    problem, it is allowed to set the picture's position (x axis; y
    axis)")."""

    resource: str
    x: int = 0
    y: int = 0

    def __post_init__(self) -> None:
        if not self.resource:
            raise ItemError("picture resource must be non-empty")


@dataclass
class Item(abc.ABC):
    """An authorable assessment problem.

    ``item_id`` — bank identifier; ``question`` — the stem text ("the
    content could be text, graph ... we focus on text"); ``hint`` — the
    Hint element §3.2 defines for essay and true/false items (available to
    every style here); ``subject`` — the concept the question examines;
    ``cognition_level`` — Bloom level tag; ``pictures`` — positioned
    pictures (§5.3); ``metadata`` — the full MINE metadata document.
    """

    item_id: str
    question: str
    hint: str = ""
    subject: str = ""
    cognition_level: Optional[CognitionLevel] = None
    pictures: List[Picture] = field(default_factory=list)
    metadata: MineMetadata = field(default_factory=MineMetadata)

    def __post_init__(self) -> None:
        if not self.item_id:
            raise ItemError("item_id must be non-empty")
        if not self.question:
            raise ItemError(f"item {self.item_id!r}: question text is empty")
        self._sync_metadata()

    def _sync_metadata(self) -> None:
        """Keep the metadata's assessment section consistent with the item.

        The authoring system stores the answer/subject/cognition-level in
        the IndividualTest metadata (§3.3) so that packaged items carry
        their assessment attributes.
        """
        assessment = self.metadata.assessment
        assessment.question_style = self.style()
        assessment.questionnaire.question = self.question
        assessment.individual_test.subject = self.subject
        assessment.individual_test.cognition_level = self.cognition_level
        answer = self.answer_text()
        if answer is not None:
            assessment.individual_test.answer = answer
        if not self.metadata.general.identifier:
            self.metadata.general.identifier = self.item_id
        if not self.metadata.general.title:
            self.metadata.general.title = self.question[:60]

    # -- subclass API ---------------------------------------------------------

    @abc.abstractmethod
    def style(self) -> QuestionStyle:
        """The §3.2 question style of this item."""

    @abc.abstractmethod
    def score(self, response: object) -> "object":
        """Grade a raw learner response; returns a ScoredResponse."""

    @abc.abstractmethod
    def validate(self) -> None:
        """Raise :class:`ItemError` when the item is structurally invalid."""

    @abc.abstractmethod
    def content_fields(self) -> Dict[str, object]:
        """The content section as a flat, JSON-serializable dict."""

    def answer_text(self) -> Optional[str]:
        """The correct answer as text for the metadata's Answer field
        (§3.3 I: "Correct answer for explaining and query").  ``None``
        when the style has no objective key (essay, questionnaire)."""
        return None

    def is_objective(self) -> bool:
        """True when the item can be machine-scored."""
        return self.answer_text() is not None
