"""True/false items (§3.2 II: "Defines a question whose answer is either
true or false.  Two elements are Question and Hint.")."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.errors import ResponseError
from repro.core.metadata import QuestionStyle
from repro.items.base import Item
from repro.items.responses import ScoredResponse

__all__ = ["TrueFalseItem"]

_TRUE_WORDS = frozenset({"true", "t", "yes", "1"})
_FALSE_WORDS = frozenset({"false", "f", "no", "0"})


@dataclass
class TrueFalseItem(Item):
    """A statement the learner judges true or false."""

    correct_value: bool = True

    def style(self) -> QuestionStyle:
        """This item's question style (true/false)."""
        return QuestionStyle.TRUE_FALSE

    def answer_text(self) -> Optional[str]:
        """The key: 'true' or 'false'."""
        return "true" if self.correct_value else "false"

    def validate(self) -> None:
        # the base class already enforces non-empty question text; a
        # true/false item has no further structural requirements
        """Structural check: the key is a boolean."""
        if not isinstance(self.correct_value, bool):
            raise ResponseError(
                f"item {self.item_id!r}: correct_value must be a bool"
            )

    def score(self, response: object) -> ScoredResponse:
        """Grade a boolean (or the words true/false); ``None`` = skipped."""
        if response is None:
            return ScoredResponse.wrong(selected=None)
        value = self._coerce(response)
        selected = "true" if value else "false"
        if value == self.correct_value:
            return ScoredResponse.right(selected=selected)
        return ScoredResponse.wrong(selected=selected)

    def _coerce(self, response: object) -> bool:
        if isinstance(response, bool):
            return response
        if isinstance(response, str):
            lowered = response.strip().lower()
            if lowered in _TRUE_WORDS:
                return True
            if lowered in _FALSE_WORDS:
                return False
        raise ResponseError(
            f"item {self.item_id!r}: true/false response must be a bool or "
            f"'true'/'false', got {response!r}"
        )

    def content_fields(self) -> Dict[str, object]:
        """The content section as a JSON-ready dict."""
        return {
            "question": self.question,
            "hint": self.hint,
            "correct_value": self.correct_value,
        }
