"""Match items (§3.2 IV: "Define a question with proper matched choice").

A :class:`MatchItem` pairs a list of *premises* with a list of *options*;
the key maps each premise to its correct option.  Scoring awards partial
credit proportional to the number of correctly matched premises (each
premise is one sub-decision), which is the standard treatment for
matching exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.errors import ItemError, ResponseError
from repro.core.metadata import QuestionStyle
from repro.items.base import Item
from repro.items.responses import ScoredResponse

__all__ = ["MatchItem"]


@dataclass
class MatchItem(Item):
    """Match each premise to one of the options."""

    premises: List[str] = field(default_factory=list)
    options: List[str] = field(default_factory=list)
    key: Dict[str, str] = field(default_factory=dict)

    def style(self) -> QuestionStyle:
        """This item's question style (match)."""
        return QuestionStyle.MATCH

    def answer_text(self) -> Optional[str]:
        """The key as 'premise -> option' pairs."""
        if not self.key:
            return None
        return "; ".join(
            f"{premise} -> {self.key.get(premise, '?')}"
            for premise in self.premises
        )

    def validate(self) -> None:
        """Structural checks: premises, options, and a complete key."""
        if len(self.premises) < 2:
            raise ItemError(
                f"item {self.item_id!r}: match item needs at least two "
                f"premises"
            )
        if len(set(self.premises)) != len(self.premises):
            raise ItemError(f"item {self.item_id!r}: duplicate premises")
        if len(set(self.options)) != len(self.options):
            raise ItemError(f"item {self.item_id!r}: duplicate options")
        missing = [p for p in self.premises if p not in self.key]
        if missing:
            raise ItemError(
                f"item {self.item_id!r}: premises without a key: {missing}"
            )
        unknown_targets = [
            target for target in self.key.values() if target not in self.options
        ]
        if unknown_targets:
            raise ItemError(
                f"item {self.item_id!r}: key targets not among options: "
                f"{unknown_targets}"
            )

    def score(self, response: object) -> ScoredResponse:
        """Grade a premise→option mapping; each premise is worth one point
        of partial credit."""
        max_points = float(len(self.premises))
        if response is None:
            return ScoredResponse.wrong(max_points=max_points, selected=None)
        if not isinstance(response, Mapping):
            raise ResponseError(
                f"item {self.item_id!r}: match response must be a mapping "
                f"premise -> option, got {type(response).__name__}"
            )
        unknown = [premise for premise in response if premise not in self.premises]
        if unknown:
            raise ResponseError(
                f"item {self.item_id!r}: unknown premises in response: {unknown}"
            )
        bad_targets = [
            target
            for target in response.values()
            if target is not None and target not in self.options
        ]
        if bad_targets:
            raise ResponseError(
                f"item {self.item_id!r}: unknown options in response: "
                f"{bad_targets}"
            )
        points = float(
            sum(
                1
                for premise in self.premises
                if response.get(premise) == self.key[premise]
            )
        )
        rendering = "; ".join(
            f"{premise}->{response.get(premise, '-')}" for premise in self.premises
        )
        return ScoredResponse.partial(
            points=points, max_points=max_points, selected=rendering
        )

    def content_fields(self) -> Dict[str, object]:
        """The content section as a JSON-ready dict."""
        return {
            "question": self.question,
            "hint": self.hint,
            "premises": list(self.premises),
            "options": list(self.options),
            "key": dict(self.key),
        }
