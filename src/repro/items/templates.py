"""Problem presentation templates (paper §5.3).

Section 5.3 describes template support in the authoring tool: a picture
can be placed at an (x, y) position, the question description and
selection items can be laid out by moving each element, and an instructor
"wanted to copy the problem structure for reuse.  He can add a new
template in the exam.  Also, he can delete an existed template."

:class:`Template` captures a presentation layout (named element slots
with positions); :class:`TemplateLibrary` provides the add/copy/delete
management the paper describes; :func:`apply_template` lays out an item's
elements according to a template.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.errors import AuthoringError, NotFoundError
from repro.items.base import Item

__all__ = ["Slot", "Template", "TemplateLibrary", "apply_template", "LaidOutElement"]


@dataclass
class Slot:
    """A positioned element slot in a template.

    ``role`` names what goes in the slot ("question", "option", "picture",
    "hint"); ``x``/``y`` position it; ``width`` constrains rendering.
    """

    role: str
    x: int = 0
    y: int = 0
    width: int = 60

    def __post_init__(self) -> None:
        if not self.role:
            raise AuthoringError("slot role must be non-empty")
        if self.x < 0 or self.y < 0:
            raise AuthoringError(
                f"slot {self.role!r}: position must be non-negative, got "
                f"({self.x}, {self.y})"
            )
        if self.width < 1:
            raise AuthoringError(f"slot {self.role!r}: width must be positive")


@dataclass
class Template:
    """A named presentation layout: ordered slots for an item's elements."""

    name: str
    slots: List[Slot] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise AuthoringError("template name must be non-empty")

    def slot_for(self, role: str) -> Optional[Slot]:
        """The first slot with the given role, or None."""
        for slot in self.slots:
            if slot.role == role:
                return slot
        return None

    def move_slot(self, role: str, x: int, y: int) -> None:
        """§5.3: "We set the presentation style by moving each item"."""
        slot = self.slot_for(role)
        if slot is None:
            raise NotFoundError(f"template {self.name!r} has no {role!r} slot")
        if x < 0 or y < 0:
            raise AuthoringError(
                f"slot {role!r}: position must be non-negative"
            )
        slot.x = x
        slot.y = y

    def copy_as(self, new_name: str) -> "Template":
        """Copy the template structure for reuse (§5.3)."""
        duplicate = copy.deepcopy(self)
        duplicate.name = new_name
        return duplicate


def default_choice_template(option_count: int = 4) -> Template:
    """The stock layout: question on top, options stacked below."""
    slots = [Slot(role="question", x=0, y=0)]
    for index in range(option_count):
        slots.append(Slot(role=f"option{index}", x=4, y=2 + index))
    slots.append(Slot(role="hint", x=0, y=3 + option_count))
    return Template(name="default-choice", slots=slots)


class TemplateLibrary:
    """The exam's template collection (§5.3 add/copy/delete)."""

    def __init__(self) -> None:
        self._templates: Dict[str, Template] = {}

    def add(self, template: Template) -> None:
        """Add a new template; names must be unique."""
        if template.name in self._templates:
            raise AuthoringError(
                f"template {template.name!r} already exists"
            )
        self._templates[template.name] = template

    def get(self, name: str) -> Template:
        """The template with this name; NotFoundError otherwise."""
        try:
            return self._templates[name]
        except KeyError:
            raise NotFoundError(f"no template named {name!r}") from None

    def delete(self, name: str) -> None:
        """§5.3: "he can delete an existed template"."""
        if name not in self._templates:
            raise NotFoundError(f"no template named {name!r}")
        del self._templates[name]

    def copy(self, name: str, new_name: str) -> Template:
        """Duplicate an existing template under a new name."""
        duplicate = self.get(name).copy_as(new_name)
        self.add(duplicate)
        return duplicate

    def __len__(self) -> int:
        return len(self._templates)

    def __contains__(self, name: str) -> bool:
        return name in self._templates

    def __iter__(self) -> Iterator[Template]:
        return iter(self._templates.values())

    def names(self) -> List[str]:
        """Every template name, in insertion order."""
        return list(self._templates)


@dataclass(frozen=True)
class LaidOutElement:
    """One positioned piece of rendered content."""

    role: str
    x: int
    y: int
    text: str


def apply_template(item: Item, template: Template) -> List[LaidOutElement]:
    """Lay out an item's elements according to a template.

    Returns positioned elements sorted by (y, x) — ready for a renderer.
    Roles present in the template but absent from the item are skipped;
    item elements without a slot fall back to a position below the last
    used row.
    """
    contents: List[Tuple[str, str]] = [("question", item.question)]
    fields = item.content_fields()
    options = fields.get("options")
    if isinstance(options, list) and all(
        isinstance(option, dict) for option in options
    ):
        for index, option in enumerate(options):
            contents.append((f"option{index}", f"{option['label']}. {option['text']}"))
    if item.hint:
        contents.append(("hint", f"Hint: {item.hint}"))
    for index, picture in enumerate(item.pictures):
        contents.append((f"picture{index}", f"[picture {picture.resource}]"))

    elements: List[LaidOutElement] = []
    next_free_y = 0
    for role, text in contents:
        slot = template.slot_for(role)
        if slot is None and role.startswith("picture"):
            picture = item.pictures[int(role[len("picture"):])]
            elements.append(
                LaidOutElement(role=role, x=picture.x, y=picture.y, text=text)
            )
            next_free_y = max(next_free_y, picture.y + 1)
            continue
        if slot is None:
            elements.append(LaidOutElement(role=role, x=0, y=next_free_y, text=text))
            next_free_y += 1
            continue
        elements.append(
            LaidOutElement(role=role, x=slot.x, y=slot.y, text=text[: slot.width])
        )
        next_free_y = max(next_free_y, slot.y + 1)
    return sorted(elements, key=lambda element: (element.y, element.x))
