"""Learner responses and scoring results.

A raw response is whatever a learner submitted (an option label, a text,
True/False, a mapping for match items).  :func:`Item.score` turns a raw
response into a :class:`ScoredResponse` — awarded points, maximum points,
and whether the response needs manual grading (essays, questionnaires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ResponseError

__all__ = ["ScoredResponse"]


@dataclass(frozen=True)
class ScoredResponse:
    """The result of grading one response to one item.

    ``points``/``max_points`` — awarded and available score;
    ``correct`` — True/False for objective items, ``None`` while a
    subjective item awaits manual grading; ``needs_manual_grading`` — True
    for essay/questionnaire responses; ``selected`` — the normalized
    response recorded for analysis (the option label for choice styles).
    """

    points: float
    max_points: float
    correct: Optional[bool]
    needs_manual_grading: bool = False
    selected: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_points < 0:
            raise ResponseError(f"max_points must be >= 0, got {self.max_points}")
        if not 0 <= self.points <= self.max_points:
            raise ResponseError(
                f"points ({self.points}) must be within [0, {self.max_points}]"
            )

    @classmethod
    def right(cls, max_points: float = 1.0, selected: Optional[str] = None):
        """A fully correct response."""
        return cls(
            points=max_points,
            max_points=max_points,
            correct=True,
            selected=selected,
        )

    @classmethod
    def wrong(cls, max_points: float = 1.0, selected: Optional[str] = None):
        """An incorrect (or skipped) response."""
        return cls(points=0.0, max_points=max_points, correct=False, selected=selected)

    @classmethod
    def partial(
        cls, points: float, max_points: float, selected: Optional[str] = None
    ):
        """Partial credit; correct only at full marks."""
        return cls(
            points=points,
            max_points=max_points,
            correct=points == max_points,
            selected=selected,
        )

    @classmethod
    def pending(cls, max_points: float = 1.0, selected: Optional[str] = None):
        """A response that a human must grade."""
        return cls(
            points=0.0,
            max_points=max_points,
            correct=None,
            needs_manual_grading=True,
            selected=selected,
        )
