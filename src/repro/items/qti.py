"""QTI-flavoured XML binding for items (paper §2.3, §6).

The paper's authoring concept "is also referenced IMS QTI" — the IMS
Question & Test Interoperability specification that "allows systems to
exchange questions and tests".  This module serializes every item style
to a QTI-1.2-flavoured ``<item>`` element (``<presentation>`` with the
stem and response declarations, ``<resprocessing>`` with the key) and
parses it back, so items can be exchanged with external repositories.

The binding covers the subset of QTI the paper's system needs; it is not
a complete QTI implementation (QTI 1.2 is hundreds of pages), but the
element names and structure follow the specification so real QTI
consumers recognise the documents.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from repro.core.cognition import CognitionLevel
from repro.core.errors import ItemError, MetadataError
from repro.core.metadata import DisplayType
from repro.items.base import Item
from repro.items.choice import MultipleChoiceItem
from repro.items.completion import CompletionItem
from repro.items.essay import EssayItem
from repro.items.matching import MatchItem
from repro.items.questionnaire import QuestionnaireItem
from repro.items.truefalse import TrueFalseItem

__all__ = ["item_to_qti", "item_from_qti", "item_to_qti_xml", "item_from_qti_xml"]

_STYLE_ATTR = "mine_style"


def item_to_qti(item: Item) -> ET.Element:
    """Serialize an item to a QTI-style ``<item>`` element."""
    root = ET.Element(
        "item",
        attrib={
            "ident": item.item_id,
            "title": item.question[:60],
            _STYLE_ATTR: item.style().value,
        },
    )
    meta = ET.SubElement(root, "itemmetadata")
    _field(meta, "subject", item.subject)
    if item.cognition_level is not None:
        _field(meta, "cognition_level", item.cognition_level.name.lower())
    presentation = ET.SubElement(root, "presentation")
    material = ET.SubElement(presentation, "material")
    mattext = ET.SubElement(material, "mattext")
    mattext.text = item.question
    if item.hint:
        hint = ET.SubElement(root, "hint")
        hint_material = ET.SubElement(hint, "material")
        hint_text = ET.SubElement(hint_material, "mattext")
        hint_text.text = item.hint

    if isinstance(item, MultipleChoiceItem):
        _choice_presentation(presentation, item)
        _respcondition(root, item.correct_label)
    elif isinstance(item, TrueFalseItem):
        _truefalse_presentation(presentation)
        _respcondition(root, "true" if item.correct_value else "false")
    elif isinstance(item, MatchItem):
        _match_presentation(presentation, item)
        _match_resprocessing(root, item)
    elif isinstance(item, CompletionItem):
        _completion_resprocessing(root, item)
    elif isinstance(item, EssayItem):
        _essay_extensions(root, item)
    elif isinstance(item, QuestionnaireItem):
        _questionnaire_presentation(presentation, root, item)
    else:  # pragma: no cover - future styles
        raise ItemError(f"no QTI binding for {type(item).__name__}")
    return root


def item_to_qti_xml(item: Item) -> str:
    """Serialize an item to indented QTI XML text."""
    element = item_to_qti(item)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def _field(parent: ET.Element, label: str, entry: str) -> None:
    if not entry:
        return
    qtimetadatafield = ET.SubElement(parent, "qtimetadatafield")
    fieldlabel = ET.SubElement(qtimetadatafield, "fieldlabel")
    fieldlabel.text = label
    fieldentry = ET.SubElement(qtimetadatafield, "fieldentry")
    fieldentry.text = entry


def _choice_presentation(presentation: ET.Element, item: MultipleChoiceItem) -> None:
    response_lid = ET.SubElement(
        presentation, "response_lid", attrib={"ident": "MC", "rcardinality": "Single"}
    )
    render_choice = ET.SubElement(response_lid, "render_choice")
    for choice in item.choices:
        response_label = ET.SubElement(
            render_choice, "response_label", attrib={"ident": choice.label}
        )
        material = ET.SubElement(response_label, "material")
        mattext = ET.SubElement(material, "mattext")
        mattext.text = choice.text


def _truefalse_presentation(presentation: ET.Element) -> None:
    response_lid = ET.SubElement(
        presentation, "response_lid", attrib={"ident": "TF", "rcardinality": "Single"}
    )
    render_choice = ET.SubElement(response_lid, "render_choice")
    for label in ("true", "false"):
        response_label = ET.SubElement(
            render_choice, "response_label", attrib={"ident": label}
        )
        material = ET.SubElement(response_label, "material")
        mattext = ET.SubElement(material, "mattext")
        mattext.text = label.capitalize()


def _respcondition(root: ET.Element, correct_ident: str) -> None:
    resprocessing = ET.SubElement(root, "resprocessing")
    respcondition = ET.SubElement(resprocessing, "respcondition")
    conditionvar = ET.SubElement(respcondition, "conditionvar")
    varequal = ET.SubElement(conditionvar, "varequal")
    varequal.text = correct_ident
    setvar = ET.SubElement(respcondition, "setvar", attrib={"action": "Set"})
    setvar.text = "1"


def _match_presentation(presentation: ET.Element, item: MatchItem) -> None:
    for premise in item.premises:
        response_lid = ET.SubElement(
            presentation,
            "response_lid",
            attrib={"ident": f"premise:{premise}", "rcardinality": "Single"},
        )
        render_choice = ET.SubElement(response_lid, "render_choice")
        for option in item.options:
            response_label = ET.SubElement(
                render_choice, "response_label", attrib={"ident": option}
            )
            material = ET.SubElement(response_label, "material")
            mattext = ET.SubElement(material, "mattext")
            mattext.text = option


def _match_resprocessing(root: ET.Element, item: MatchItem) -> None:
    resprocessing = ET.SubElement(root, "resprocessing")
    for premise in item.premises:
        respcondition = ET.SubElement(
            resprocessing, "respcondition", attrib={"premise": premise}
        )
        conditionvar = ET.SubElement(respcondition, "conditionvar")
        varequal = ET.SubElement(conditionvar, "varequal")
        varequal.text = item.key[premise]
        setvar = ET.SubElement(respcondition, "setvar", attrib={"action": "Add"})
        setvar.text = "1"


def _completion_resprocessing(root: ET.Element, item: CompletionItem) -> None:
    root.set("case_sensitive", "true" if item.case_sensitive else "false")
    resprocessing = ET.SubElement(root, "resprocessing")
    for index, answers in enumerate(item.accepted_answers):
        respcondition = ET.SubElement(
            resprocessing, "respcondition", attrib={"blank": str(index)}
        )
        conditionvar = ET.SubElement(respcondition, "conditionvar")
        for answer in answers:
            varequal = ET.SubElement(conditionvar, "varequal")
            varequal.text = answer
        setvar = ET.SubElement(respcondition, "setvar", attrib={"action": "Add"})
        setvar.text = "1"


def _essay_extensions(root: ET.Element, item: EssayItem) -> None:
    root.set("max_points", repr(item.max_points))
    root.set("min_length", str(item.min_length))
    if item.model_answer:
        answer = ET.SubElement(root, "itemfeedback", attrib={"ident": "model"})
        material = ET.SubElement(answer, "material")
        mattext = ET.SubElement(material, "mattext")
        mattext.text = item.model_answer


def _questionnaire_presentation(
    presentation: ET.Element, root: ET.Element, item: QuestionnaireItem
) -> None:
    root.set("resumable", "true" if item.resumable else "false")
    root.set("display_type", item.display_type.value)
    if item.scale:
        response_lid = ET.SubElement(
            presentation,
            "response_lid",
            attrib={"ident": "SCALE", "rcardinality": "Single"},
        )
        render_choice = ET.SubElement(response_lid, "render_choice")
        for label in item.scale:
            response_label = ET.SubElement(
                render_choice, "response_label", attrib={"ident": label}
            )
            material = ET.SubElement(response_label, "material")
            mattext = ET.SubElement(material, "mattext")
            mattext.text = label


# --------------------------------------------------------------------------
# Parsing
# --------------------------------------------------------------------------


def item_from_qti_xml(text: str) -> Item:
    """Parse QTI XML text into the matching Item class."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise MetadataError(f"malformed QTI XML: {exc}") from exc
    return item_from_qti(root)


def item_from_qti(root: ET.Element) -> Item:
    """Parse a QTI ``<item>`` element back into the matching Item class."""
    if root.tag != "item":
        raise MetadataError(f"expected <item> root, got <{root.tag}>")
    style = root.get(_STYLE_ATTR)
    if style is None:
        raise MetadataError("QTI item missing the mine_style attribute")
    item_id = root.get("ident", "")
    question = _stem_text(root)
    hint = _hint_text(root)
    subject, level = _item_metadata(root)
    common = dict(
        item_id=item_id,
        question=question,
        hint=hint,
        subject=subject,
        cognition_level=level,
    )

    if style == "multiple_choice":
        return _parse_choice(root, common)
    if style == "true_false":
        correct = _first_varequal(root)
        return TrueFalseItem(correct_value=correct == "true", **common)
    if style == "match":
        return _parse_match(root, common)
    if style == "completion":
        return _parse_completion(root, common)
    if style == "essay":
        return _parse_essay(root, common)
    if style == "questionnaire":
        return _parse_questionnaire(root, common)
    raise MetadataError(f"unknown QTI item style: {style!r}")


def _stem_text(root: ET.Element) -> str:
    mattext = root.find("presentation/material/mattext")
    if mattext is None or mattext.text is None:
        raise MetadataError("QTI item has no stem text")
    return mattext.text


def _hint_text(root: ET.Element) -> str:
    mattext = root.find("hint/material/mattext")
    if mattext is None or mattext.text is None:
        return ""
    return mattext.text


def _item_metadata(root: ET.Element):
    subject = ""
    level: Optional[CognitionLevel] = None
    for qtimetadatafield in root.findall("itemmetadata/qtimetadatafield"):
        label = qtimetadatafield.findtext("fieldlabel", "")
        entry = qtimetadatafield.findtext("fieldentry", "")
        if label == "subject":
            subject = entry
        elif label == "cognition_level" and entry:
            level = CognitionLevel.parse(entry)
    return subject, level


def _first_varequal(root: ET.Element) -> str:
    varequal = root.find("resprocessing/respcondition/conditionvar/varequal")
    if varequal is None or varequal.text is None:
        raise MetadataError("QTI item has no correct response declared")
    return varequal.text


def _parse_choice(root: ET.Element, common: Dict[str, object]) -> MultipleChoiceItem:
    from repro.items.choice import Choice

    choices: List[Choice] = []
    for response_label in root.findall(
        "presentation/response_lid/render_choice/response_label"
    ):
        label = response_label.get("ident", "")
        text = response_label.findtext("material/mattext", "")
        choices.append(Choice(label=label, text=text))
    item = MultipleChoiceItem(
        choices=choices, correct_label=_first_varequal(root), **common
    )
    item.validate()
    return item


def _parse_match(root: ET.Element, common: Dict[str, object]) -> MatchItem:
    premises: List[str] = []
    options: List[str] = []
    for response_lid in root.findall("presentation/response_lid"):
        ident = response_lid.get("ident", "")
        if not ident.startswith("premise:"):
            raise MetadataError(f"unexpected response_lid ident {ident!r}")
        premises.append(ident[len("premise:"):])
        if not options:
            options = [
                label.get("ident", "")
                for label in response_lid.findall(
                    "render_choice/response_label"
                )
            ]
    key: Dict[str, str] = {}
    for respcondition in root.findall("resprocessing/respcondition"):
        premise = respcondition.get("premise", "")
        target = respcondition.findtext("conditionvar/varequal", "")
        key[premise] = target
    item = MatchItem(premises=premises, options=options, key=key, **common)
    item.validate()
    return item


def _parse_completion(root: ET.Element, common: Dict[str, object]) -> CompletionItem:
    accepted: List[List[str]] = []
    for respcondition in sorted(
        root.findall("resprocessing/respcondition"),
        key=lambda el: int(el.get("blank", "0")),
    ):
        answers = [
            varequal.text or ""
            for varequal in respcondition.findall("conditionvar/varequal")
        ]
        accepted.append(answers)
    item = CompletionItem(
        accepted_answers=accepted,
        case_sensitive=root.get("case_sensitive") == "true",
        **common,
    )
    item.validate()
    return item


def _parse_essay(root: ET.Element, common: Dict[str, object]) -> EssayItem:
    model_answer = root.findtext("itemfeedback/material/mattext", "")
    max_points_raw = root.get("max_points", "1.0")
    try:
        max_points = float(max_points_raw)
    except ValueError:
        raise MetadataError(f"bad max_points: {max_points_raw!r}") from None
    item = EssayItem(
        model_answer=model_answer,
        max_points=max_points,
        min_length=int(root.get("min_length", "0")),
        **common,
    )
    item.validate()
    return item


def _parse_questionnaire(
    root: ET.Element, common: Dict[str, object]
) -> QuestionnaireItem:
    scale = [
        response_label.get("ident", "")
        for response_label in root.findall(
            "presentation/response_lid/render_choice/response_label"
        )
    ]
    display_raw = root.get("display_type", "fixed_order")
    try:
        display = DisplayType(display_raw)
    except ValueError:
        raise MetadataError(f"unknown display type {display_raw!r}") from None
    item = QuestionnaireItem(
        scale=scale,
        resumable=root.get("resumable", "true") == "true",
        display_type=display,
        **common,
    )
    item.validate()
    return item
