"""Consistent hashing for learner→shard placement.

The classic ring: every shard contributes ``replicas`` virtual points
hashed onto a 64-bit circle; a key belongs to the first shard point at
or clockwise of the key's own hash.  Virtual points smooth the load
(with 64 replicas the largest shard is within a few percent of the
mean), and the defining property is *stability*: adding or removing a
shard only moves the keys whose arc it owned — about ``1/N`` of the
population — while every other key keeps its shard.  That is what makes
resharding a recovery-sized event instead of a full-state migration.

Hashes come from :func:`hashlib.blake2b`, not the built-in ``hash`` —
the built-in is salted per process (``PYTHONHASHSEED``), and a ring
that routes differently in every worker would scatter each learner's
state across the fleet.
"""

from __future__ import annotations

from bisect import bisect_left
from hashlib import blake2b
from typing import Iterable, List, Tuple

from repro.core.errors import AnalysisError

__all__ = ["HashRing"]

#: virtual points per shard (64 keeps the worst shard within a few
#: percent of uniform while the ring stays tiny)
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    """A stable 64-bit position on the circle for ``label``."""
    return int.from_bytes(
        blake2b(label.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring over named shards."""

    def __init__(
        self,
        shards: Iterable[str] = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise AnalysisError(
                f"ring replicas must be positive, got {replicas}"
            )
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._shards: List[str] = []
        for shard in shards:
            self.add(shard)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    @property
    def shards(self) -> List[str]:
        """The member shards, in insertion order."""
        return list(self._shards)

    def add(self, shard: str) -> None:
        """Join a shard: its virtual points enter the circle."""
        if shard in self._shards:
            raise AnalysisError(f"shard {shard!r} already on the ring")
        self._shards.append(shard)
        for replica in range(self.replicas):
            self._points.append((_point(f"{shard}#{replica}"), shard))
        self._points.sort()

    def remove(self, shard: str) -> None:
        """Leave: the shard's arcs fall to their clockwise successors."""
        if shard not in self._shards:
            raise AnalysisError(f"shard {shard!r} is not on the ring")
        self._shards.remove(shard)
        self._points = [
            point for point in self._points if point[1] != shard
        ]

    def route(self, key: str) -> str:
        """The shard owning ``key`` — first point clockwise of its hash."""
        if not self._points:
            raise AnalysisError("cannot route on an empty ring")
        position = _point(key)
        index = bisect_left(self._points, (position, ""))
        if index == len(self._points):
            index = 0  # wrap: past the last point means the first shard
        return self._points[index][1]
