"""Sharded multi-process delivery tier (ROADMAP item 1).

One process and one coarse lock cap exam delivery at a few thousand
requests per second.  This package scales the tier *out* instead of up:

* :class:`~repro.cluster.ring.HashRing` — consistent hashing with
  virtual nodes; each learner id maps to exactly one shard, and adding
  or removing a shard remaps only ~1/N of the population.
* :class:`~repro.cluster.context.ClusterContext` — the per-worker view
  of the topology: which shard this process is, where its peers listen,
  and the forwarding/scatter plumbing the HTTP layer uses to route
  per-learner requests to their owner and to gather per-shard analysis
  partials.
* :class:`~repro.cluster.supervisor.ExamCluster` — the parent process:
  reserves the ports, forks N workers (each its own
  :class:`~repro.server.app.ExamServer` over its own
  :class:`~repro.lms.lms.Lms` and WAL directory), watches them, and
  restarts any that die so a SIGKILL'd shard recovers from its journal.

Every worker listens on two sockets: the shared **front port**
(``SO_REUSEPORT`` — the kernel load-balances incoming connections
across workers) and its own **direct port** (where peers forward and
where a topology-aware load generator drives a shard directly).  A
request landing on the wrong worker is proxied to the owner, so any
worker can serve any request; cohort analytics scatter to every shard
and merge the columnar partials
(:func:`repro.core.columnar.merge_partials`) into an answer
bit-identical to a single process holding the whole cohort.
"""

from repro.cluster.context import ClusterContext
from repro.cluster.ring import HashRing
from repro.cluster.supervisor import ExamCluster

__all__ = ["ClusterContext", "ExamCluster", "HashRing"]
