"""The cluster parent: port reservation, worker processes, watchdog.

:class:`ExamCluster` turns one machine into an N-shard delivery tier:

1. **Reserve the ports.**  The parent binds one placeholder socket per
   port (the shared front port plus each worker's direct port) with
   ``SO_REUSEPORT`` set and *without* listening.  Bound-but-quiet
   sockets keep the kernel from giving the port to anyone else, so the
   whole topology is known — and shippable to every child — before any
   worker exists, with no bind race.
2. **Fork the workers.**  Each child builds its own
   :class:`~repro.lms.lms.Lms` (recovered from its shard's WAL
   directory when one is configured), wraps it in an
   :class:`~repro.server.app.ExamServer` listening on its direct port
   *and* the shared front port (both ``SO_REUSEPORT``), and serves
   until SIGTERM.
3. **Watch them.**  A watchdog thread restarts any worker that dies.
   The replacement re-binds the same ports and replays the shard's WAL,
   so a SIGKILL costs one shard a recovery window — during which its
   peers answer ``503 shard_unavailable`` + ``Retry-After`` for its
   learners — and nothing else.
"""

from __future__ import annotations

import http.client
import multiprocessing
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.cluster.context import ClusterContext
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing

__all__ = ["ExamCluster", "WorkerSpec"]

#: watchdog poll period (seconds)
WATCH_INTERVAL = 0.25


@dataclass
class WorkerSpec:
    """Everything one worker process needs to come up, fork-shippable."""

    shard: str
    host: str
    direct_port: int
    front_port: int
    shard_urls: Dict[str, str]
    replicas: int = DEFAULT_REPLICAS
    wal_dir: Optional[str] = None
    fsync: str = "interval"
    wal_format: int = 2
    group_commit: bool = False
    max_in_flight: int = 64
    checkpoint_interval_seconds: Optional[float] = None
    extra_server_kwargs: Dict[str, object] = field(default_factory=dict)


def _worker_main(spec: WorkerSpec) -> None:
    """The child process: one shard's ExamServer until SIGTERM."""
    from repro.server.app import ExamServer

    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns ^C
    ring = HashRing(spec.shard_urls.keys(), replicas=spec.replicas)
    cluster = ClusterContext(
        shard=spec.shard,
        ring=ring,
        direct_urls=spec.shard_urls,
        front_url=f"http://{spec.host}:{spec.front_port}",
    )
    server = ExamServer(
        host=spec.host,
        port=spec.direct_port,
        wal_dir=spec.wal_dir,
        fsync=spec.fsync,
        wal_format=spec.wal_format,
        group_commit=spec.group_commit,
        max_in_flight=spec.max_in_flight,
        checkpoint_interval_seconds=spec.checkpoint_interval_seconds,
        cluster=cluster,
        reuse_port=True,
        **spec.extra_server_kwargs,
    )
    server.add_front_listener(spec.front_port)
    server.start()
    try:
        # Event.wait in a loop: a bare wait() can sit in an
        # uninterruptible futex and miss the signal handler's set()
        while not stop.wait(0.5):
            pass
    finally:
        server.shutdown()


def _reserve_port(host: str, port: int = 0) -> Tuple[socket.socket, int]:
    """Bind (never listen) a port so nobody else can take it (0 = any)."""
    placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    placeholder.bind((host, port))
    return placeholder, placeholder.getsockname()[1]


class ExamCluster:
    """N sharded exam-delivery workers behind one front port."""

    def __init__(
        self,
        workers: int = 2,
        host: str = "127.0.0.1",
        front_port: int = 0,
        wal_root: Optional["str | Path"] = None,
        fsync: str = "interval",
        wal_format: int = 2,
        group_commit: bool = False,
        max_in_flight: int = 64,
        checkpoint_interval_seconds: Optional[float] = None,
        replicas: int = DEFAULT_REPLICAS,
        watchdog: bool = True,
        ready_timeout: float = 30.0,
        readmodel: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if readmodel and wal_root is None:
            raise ValueError(
                "readmodel=True needs per-shard WALs to tail; pass wal_root"
            )
        if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
            raise RuntimeError(
                "this platform has no SO_REUSEPORT; the sharded tier "
                "needs it to put every worker behind one front port"
            )
        self.host = host
        self.workers = workers
        self.wal_root = Path(wal_root) if wal_root is not None else None
        self.ready_timeout = ready_timeout
        self._watchdog_enabled = watchdog
        self.shards = [f"shard-{index}" for index in range(workers)]
        # reserve every port up front: topology before any child exists
        self._placeholders: List[socket.socket] = []
        front_sock, self.front_port = _reserve_port(host, front_port)
        self._placeholders.append(front_sock)
        self.direct_ports: Dict[str, int] = {}
        for shard in self.shards:
            placeholder, port = _reserve_port(host)
            self._placeholders.append(placeholder)
            self.direct_ports[shard] = port
        shard_urls = {
            shard: f"http://{host}:{port}"
            for shard, port in self.direct_ports.items()
        }
        self._specs: Dict[str, WorkerSpec] = {}
        for shard in self.shards:
            wal_dir = None
            if self.wal_root is not None:
                wal_dir = str(self.wal_root / shard)
            self._specs[shard] = WorkerSpec(
                shard=shard,
                host=host,
                direct_port=self.direct_ports[shard],
                front_port=self.front_port,
                shard_urls=shard_urls,
                replicas=replicas,
                wal_dir=wal_dir,
                fsync=fsync,
                wal_format=wal_format,
                group_commit=group_commit,
                max_in_flight=max_in_flight,
                checkpoint_interval_seconds=checkpoint_interval_seconds,
                extra_server_kwargs={"readmodel": True} if readmodel else {},
            )
        self._context = multiprocessing.get_context("fork")
        self._processes: Dict[str, multiprocessing.Process] = {}
        self._stopping = False
        self._watch_thread: Optional[threading.Thread] = None
        #: shard -> times the watchdog had to restart it
        self.restarts: Dict[str, int] = {shard: 0 for shard in self.shards}

    # -- addresses -----------------------------------------------------------

    @property
    def url(self) -> str:
        """The shared front URL (any worker may answer)."""
        return f"http://{self.host}:{self.front_port}"

    def worker_url(self, shard: str) -> str:
        """One shard's direct URL."""
        return f"http://{self.host}:{self.direct_ports[shard]}"

    @property
    def worker_urls(self) -> List[str]:
        return [self.worker_url(shard) for shard in self.shards]

    def pid(self, shard: str) -> int:
        """The live worker process id for a shard."""
        return self._processes[shard].pid

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ExamCluster":
        """Fork every worker, start the watchdog, wait until all ready."""
        if self._processes:
            raise RuntimeError("cluster already started")
        for shard in self.shards:
            self._spawn(shard)
        if self._watchdog_enabled:
            self._watch_thread = threading.Thread(
                target=self._watch, name="mine-assess-watchdog", daemon=True
            )
            self._watch_thread.start()
        self.wait_ready(self.ready_timeout)
        return self

    def _spawn(self, shard: str) -> None:
        process = self._context.Process(
            target=_worker_main,
            args=(self._specs[shard],),
            name=f"mine-assess-{shard}",
            daemon=True,
        )
        process.start()
        self._processes[shard] = process

    def _watch(self) -> None:
        while not self._stopping:
            time.sleep(WATCH_INTERVAL)
            for shard in self.shards:
                if self._stopping:
                    return
                process = self._processes.get(shard)
                if process is not None and not process.is_alive():
                    process.join()
                    self.restarts[shard] += 1
                    self._spawn(shard)

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every worker's direct /healthz answers 200."""
        deadline = time.monotonic() + timeout
        for shard in self.shards:
            while True:
                if self._probe(shard):
                    break
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"worker {shard} not ready within {timeout}s"
                    )
                time.sleep(0.05)

    def _probe(self, shard: str) -> bool:
        connection = http.client.HTTPConnection(
            self.host, self.direct_ports[shard], timeout=2
        )
        try:
            connection.request("GET", "/healthz")
            return connection.getresponse().status == 200
        except OSError:
            return False
        finally:
            connection.close()

    def kill_worker(self, shard: str, sig: int = signal.SIGKILL) -> int:
        """Send a signal to one worker (crash injection for tests).

        Returns the pid that was signalled.  With the watchdog on, a
        killed worker is respawned and recovers from its WAL.
        """
        pid = self._processes[shard].pid
        os.kill(pid, sig)
        return pid

    def stop(self, timeout: float = 15.0) -> None:
        """SIGTERM every worker, join them, release the ports."""
        if self._stopping:
            return
        self._stopping = True
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=5.0)
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
        deadline = time.monotonic() + timeout
        for process in self._processes.values():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=5.0)
        for placeholder in self._placeholders:
            placeholder.close()
        self._placeholders.clear()

    # -- context-manager sugar ------------------------------------------------

    def __enter__(self) -> "ExamCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
