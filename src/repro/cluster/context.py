"""The per-worker cluster view: routing, forwarding, scatter-gather.

Every worker process holds one :class:`ClusterContext`.  The HTTP layer
consults it on each request: per-learner routes whose learner hashes to
another shard are **forwarded** verbatim to that shard's direct port
(so any worker can serve any request — the kernel's ``SO_REUSEPORT``
balancing never has to be right); cohort-level routes **scatter** an
internal request to every peer and gather the per-shard payloads.

Internal peer-to-peer routes (``…:partial``, ``…:local``,
``/internal/…``) carry no learner affinity and are never re-forwarded,
which is what keeps a scatter from recursing.

A dead peer surfaces as ``503 shard_unavailable`` with a small
``Retry-After`` — the supervisor's watchdog is restarting the shard and
replaying its WAL, so clients that honour the header (the load
generator does, with jitter) converge without thundering-herding the
recovering worker.
"""

from __future__ import annotations

import http.client
import json
import os
from typing import Dict, List, Optional, Tuple

from repro.cluster.ring import HashRing
from repro.server.errors import ApiError

__all__ = ["ClusterContext", "ROUTE_AFFINITY"]

#: what a 503 for an unreachable shard tells clients to wait (seconds)
SHARD_RETRY_AFTER_SECONDS = 1

#: route name -> where its learner id lives (``params`` or ``body``).
#: Routes absent from this table have no learner affinity and are
#: served wherever they land.
ROUTE_AFFINITY: Dict[str, Tuple[str, str]] = {
    "learners.register": ("body", "learner_id"),
    "learners.get": ("params", "learner_id"),
    "enrollments.create": ("body", "learner_id"),
    "sittings.start": ("params", "learner_id"),
    "sittings.answer": ("params", "learner_id"),
    "sittings.next_item": ("params", "learner_id"),
    "sittings.answers_batch": ("params", "learner_id"),
    "sittings.suspend": ("params", "learner_id"),
    "sittings.resume": ("params", "learner_id"),
    "sittings.submit": ("params", "learner_id"),
    "sittings.status": ("params", "learner_id"),
}


class ClusterContext:
    """One worker's knowledge of the whole cluster."""

    def __init__(
        self,
        shard: str,
        ring: HashRing,
        direct_urls: Dict[str, str],
        front_url: Optional[str] = None,
        timeout: float = 10.0,
    ) -> None:
        if shard not in ring:
            raise ValueError(f"shard {shard!r} is not on the ring")
        missing = [name for name in ring.shards if name not in direct_urls]
        if missing:
            raise ValueError(f"no direct url for shards {missing}")
        self.shard = shard
        self.ring = ring
        self.direct_urls = dict(direct_urls)
        self.front_url = front_url
        self.timeout = timeout

    # -- placement -----------------------------------------------------------

    def owner(self, learner_id: str) -> str:
        """The shard owning this learner's state."""
        return self.ring.route(learner_id)

    def is_local(self, learner_id: str) -> bool:
        return self.owner(learner_id) == self.shard

    def peers(self) -> List[str]:
        """Every shard except this one, ring order."""
        return [name for name in self.ring.shards if name != self.shard]

    def owner_for(
        self, route_name: str, params: Dict[str, str], body: object
    ) -> Optional[str]:
        """The owning shard of a request, or None when it has no
        learner affinity (or the affinity field is absent/malformed —
        the local handler then produces the proper 400)."""
        affinity = ROUTE_AFFINITY.get(route_name)
        if affinity is None:
            return None
        source, field = affinity
        if source == "params":
            learner_id = params.get(field)
        else:
            learner_id = (
                body.get(field) if isinstance(body, dict) else None
            )
        if not isinstance(learner_id, str) or not learner_id:
            return None
        return self.owner(learner_id)

    # -- wire plumbing -------------------------------------------------------

    def _request(
        self,
        shard: str,
        method: str,
        path: str,
        body: bytes = b"",
    ) -> Tuple[int, object, Optional[int]]:
        """One HTTP exchange with a peer's direct port.

        Returns ``(status, decoded_payload, retry_after)``.  Connection
        failures become ``503 shard_unavailable``: the shard is down or
        restarting, and the caller's client should retry shortly.
        """
        url = self.direct_urls[shard]
        host, _, port = url.rpartition("//")[2].partition(":")
        connection = http.client.HTTPConnection(
            host, int(port), timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"}
            if body:
                headers["Content-Length"] = str(len(body))
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            retry_after = response.getheader("Retry-After")
            payload = json.loads(raw) if raw else None
            return (
                response.status,
                payload,
                int(retry_after) if retry_after is not None else None,
            )
        except (OSError, http.client.HTTPException) as exc:
            raise ApiError(
                503,
                "shard_unavailable",
                f"shard {shard} is unreachable ({type(exc).__name__}); "
                f"it may be recovering — retry shortly",
                retry_after=SHARD_RETRY_AFTER_SECONDS,
            ) from exc
        finally:
            connection.close()

    def forward(
        self, shard: str, method: str, path: str, body: bytes
    ) -> Tuple[int, object, Optional[int]]:
        """Proxy a misrouted request verbatim to its owning shard."""
        return self._request(shard, method, path, body)

    def gather(self, path: str) -> List[object]:
        """GET ``path`` from every peer; the local leg is the caller's.

        Raises the first peer's ``ApiError`` (e.g. 503 while a shard
        restarts) — a partial cohort analysis would be silently wrong,
        so the gather is all-or-nothing.
        """
        payloads: List[object] = []
        for shard in self.peers():
            status, payload, retry_after = self._request(shard, "GET", path)
            if status != 200:
                raise ApiError(
                    status if status >= 400 else 502,
                    "shard_error",
                    f"shard {shard} answered {status} for {path}",
                    retry_after=retry_after,
                )
            payloads.append(payload)
        return payloads

    def broadcast(
        self, method: str, path: str, body: bytes = b""
    ) -> int:
        """Send an idempotent mutation to every peer; returns peer count.

        A ``409`` from a peer counts as success: broadcasts are retried
        after partial failures, and "already applied" is exactly the
        outcome the retry wanted.
        """
        for shard in self.peers():
            status, payload, _ = self._request(shard, method, path, body)
            if status >= 400 and status != 409:
                raise ApiError(
                    status,
                    "shard_error",
                    f"shard {shard} answered {status} for {method} {path}",
                )
        return len(self.peers())

    # -- introspection -------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """The ``/cluster/topology`` payload (also shown in /metrics)."""
        # pid: the answering worker's own process id — querying each
        # shard's direct port maps the whole topology to pids (what an
        # operator needs to signal a specific worker)
        return {
            "shard": self.shard,
            "pid": os.getpid(),
            "workers": len(self.ring),
            "replicas": self.ring.replicas,
            "front_url": self.front_url,
            "shards": [
                {"shard": name, "url": self.direct_urls[name]}
                for name in self.ring.shards
            ],
        }
