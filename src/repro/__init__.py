"""repro — reproduction of "A Cognition Assessment Authoring System for
E-Learning" (Hung et al., 2004).

The library has four layers:

* :mod:`repro.core` — the paper's contribution: the MINE SCORM assessment
  metadata model (§3) and the analysis model (§4): difficulty and
  discrimination indices, the four diagnostic rules, traffic-light
  signals, and whole-test analyses;
* :mod:`repro.items`, :mod:`repro.exams`, :mod:`repro.bank` — the
  authoring system (§5): question styles, templates, exam assembly, and
  the problem & exam database;
* :mod:`repro.scorm`, :mod:`repro.lms`, :mod:`repro.delivery` — the
  substrate: SCORM packaging and run-time environment, an LMS with the
  on-line exam monitor, and the exam delivery session machine;
* :mod:`repro.sim`, :mod:`repro.adaptive`, :mod:`repro.baselines` —
  simulated learner cohorts used by the benchmarks, the adaptive-testing
  extension the paper lists as future work, and classical-test-theory
  baselines.

Quickstart::

    from repro.core import analyze_cohort, ExamineeResponses, QuestionSpec

    specs = [QuestionSpec(options=("A", "B", "C", "D"), correct="A")]
    cohort = [ExamineeResponses.of(f"s{i}", ["A" if i % 2 else "B"])
              for i in range(20)]
    result = analyze_cohort(cohort, specs)
    print(result.questions[0].advice.render())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
