"""repro — reproduction of "A Cognition Assessment Authoring System for
E-Learning" (Hung et al., 2004), grown into a production-scale system.

This module is the **public API facade**: the canonical entrypoints of
every layer re-exported at the top, lazily (PEP 562), so ``import
repro`` costs microseconds and pulls in only what you touch.  The deep
module paths remain importable — the facade is the stable surface,
``docs/api.md`` maps one to the other.

The library's layers:

* :mod:`repro.core` — the paper's contribution: the MINE SCORM
  assessment metadata model (§3) and the analysis model (§4) with its
  columnar fast path;
* :mod:`repro.items`, :mod:`repro.exams`, :mod:`repro.bank` — the
  authoring system (§5);
* :mod:`repro.scorm`, :mod:`repro.lms`, :mod:`repro.delivery` — the
  SCORM/LMS substrate with the on-line exam monitor;
* :mod:`repro.server` — the HTTP exam-delivery and analysis service
  over the LMS, with its load-generation client
  (``mine-assess serve`` / ``mine-assess loadgen``);
* :mod:`repro.store` — the durable event journal under the LMS:
  write-ahead logging, crash recovery, and checkpoint compaction
  (``mine-assess serve --wal-dir`` / ``mine-assess recover``);
* :mod:`repro.cluster` — the sharded multi-process delivery tier:
  consistent-hash learner placement, worker supervision, and
  scatter-gather analytics (``mine-assess serve --workers N``);
* :mod:`repro.readmodel` — the CQRS read side: a journal-fed analytics
  fold with checkpoints and time-travel queries, served from
  ``GET /admin/analytics/...`` (``mine-assess serve --readmodel`` /
  ``mine-assess analytics``);
* :mod:`repro.sim`, :mod:`repro.adaptive`, :mod:`repro.baselines` —
  simulated cohorts (scalar, vectorized, and sharded engines),
  adaptive testing, and classical baselines;
* :mod:`repro.obs` — spans, counters, and pluggable sinks threaded
  through all of the above (``--profile`` on the CLI).

Quickstart::

    import repro

    exam = repro.author("quiz-1", "Quiz 1").add_item(...).build()
    data = repro.simulate_sitting_data(exam, params, learners)
    result = repro.analyze_cohort(data.responses, data.specs)
    print(result.questions[0].advice.render())
"""

from typing import TYPE_CHECKING

__version__ = "1.7.0"

#: facade name -> (module, attribute); ``None`` attribute re-exports the
#: module itself.  Everything here is importable as ``repro.<name>``.
_EXPORTS = {
    # authoring
    "Exam": ("repro.exams.exam", "Exam"),
    "ExamBuilder": ("repro.exams.authoring", "ExamBuilder"),
    "author": ("repro.exams.authoring", "ExamBuilder"),
    "MultipleChoiceItem": ("repro.items.choice", "MultipleChoiceItem"),
    # analysis (§4.1)
    "analyze_cohort": ("repro.core.question_analysis", "analyze_cohort"),
    "ExamineeResponses": ("repro.core.question_analysis", "ExamineeResponses"),
    "QuestionSpec": ("repro.core.question_analysis", "QuestionSpec"),
    "CohortAnalysis": ("repro.core.question_analysis", "CohortAnalysis"),
    "GroupSplit": ("repro.core.grouping", "GroupSplit"),
    "LiveCohortAnalysis": ("repro.core.columnar", "LiveCohortAnalysis"),
    "ResponseMatrix": ("repro.core.columnar", "ResponseMatrix"),
    "build_report": ("repro.core.report", "build_report"),
    "AssessmentReport": ("repro.core.report", "AssessmentReport"),
    # simulation
    "simulate_sitting_data": ("repro.sim.workloads", "simulate_sitting_data"),
    "simulate_sharded": ("repro.sim.vectorized", "simulate_sharded"),
    "classroom_exam": ("repro.sim.workloads", "classroom_exam"),
    "classroom_parameters": ("repro.sim.workloads", "classroom_parameters"),
    "pre_post_cohorts": ("repro.sim.workloads", "pre_post_cohorts"),
    "make_population": ("repro.sim.population", "make_population"),
    "ItemParameters": ("repro.sim.learner_model", "ItemParameters"),
    # adaptive testing (online CAT + the calibration loop)
    "AdaptivePolicy": ("repro.adaptive.online", "AdaptivePolicy"),
    "AdaptiveSession": ("repro.adaptive.online", "AdaptiveSession"),
    "ItemInformationTable": (
        "repro.adaptive.online", "ItemInformationTable"
    ),
    "select_next_item": ("repro.adaptive.cat", "select_next_item"),
    "calibrate_2pl": ("repro.adaptive.item_calibration", "calibrate_2pl"),
    "classroom_adaptive_exam": (
        "repro.sim.workloads", "classroom_adaptive_exam"
    ),
    "simulate_adaptive_cohort": (
        "repro.sim.adaptive_cohort", "simulate_adaptive_cohort"
    ),
    # LMS / delivery
    "Lms": ("repro.lms.lms", "Lms"),
    "Learner": ("repro.lms.learners", "Learner"),
    "ExamMonitor": ("repro.lms.monitor", "ExamMonitor"),
    "save_lms": ("repro.lms.persistence", "save_lms"),
    "load_lms": ("repro.lms.persistence", "load_lms"),
    # HTTP serving
    "ExamServer": ("repro.server.app", "ExamServer"),
    "run_loadgen": ("repro.server.loadgen", "run_loadgen"),
    "LoadgenReport": ("repro.server.loadgen", "LoadgenReport"),
    # sharded delivery (the multi-process cluster)
    "ExamCluster": ("repro.cluster.supervisor", "ExamCluster"),
    "HashRing": ("repro.cluster.ring", "HashRing"),
    # durability (the write-ahead journal)
    "Journal": ("repro.store.journal", "Journal"),
    "recover": ("repro.store.recovery", "recover"),
    "state_fingerprint": ("repro.store.recovery", "state_fingerprint"),
    "Checkpointer": ("repro.store.checkpoint", "Checkpointer"),
    "JournalTailer": ("repro.store.tail", "JournalTailer"),
    # analytics read models (the CQRS read side)
    "ReadModel": ("repro.readmodel.model", "ReadModel"),
    "ReadModelService": ("repro.readmodel.service", "ReadModelService"),
    "readmodel": ("repro.readmodel", None),
    # SCORM packaging
    "package_exam": ("repro.scorm.package", "package_exam"),
    "build_package": ("repro.scorm.package", "package_exam"),
    "ContentPackage": ("repro.scorm.package", "ContentPackage"),
    "extract_exam": ("repro.scorm.package", "extract_exam"),
    # observability
    "obs": ("repro.obs", None),
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name):
    """Lazy facade resolution (PEP 562): import on first attribute use."""
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attribute is None else getattr(module, attribute)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


if TYPE_CHECKING:  # pragma: no cover - static-analysis eyes only
    from repro import obs  # noqa: F401
    from repro.adaptive.cat import select_next_item  # noqa: F401
    from repro.adaptive.item_calibration import calibrate_2pl  # noqa: F401
    from repro.adaptive.online import (  # noqa: F401
        AdaptivePolicy,
        AdaptiveSession,
        ItemInformationTable,
    )
    from repro.sim.adaptive_cohort import (  # noqa: F401
        simulate_adaptive_cohort,
    )
    from repro.core.columnar import (  # noqa: F401
        LiveCohortAnalysis,
        ResponseMatrix,
    )
    from repro.cluster.ring import HashRing  # noqa: F401
    from repro.cluster.supervisor import ExamCluster  # noqa: F401
    from repro.core.grouping import GroupSplit  # noqa: F401
    from repro.core.question_analysis import (  # noqa: F401
        CohortAnalysis,
        ExamineeResponses,
        QuestionSpec,
        analyze_cohort,
    )
    from repro.core.report import AssessmentReport, build_report  # noqa: F401
    from repro.exams.authoring import ExamBuilder  # noqa: F401
    from repro.exams.authoring import ExamBuilder as author  # noqa: F401
    from repro.exams.exam import Exam  # noqa: F401
    from repro.items.choice import MultipleChoiceItem  # noqa: F401
    from repro.lms.learners import Learner  # noqa: F401
    from repro.lms.lms import Lms  # noqa: F401
    from repro.lms.monitor import ExamMonitor  # noqa: F401
    from repro.lms.persistence import load_lms, save_lms  # noqa: F401
    from repro.server.app import ExamServer  # noqa: F401
    from repro.server.loadgen import LoadgenReport, run_loadgen  # noqa: F401
    from repro import readmodel  # noqa: F401
    from repro.readmodel.model import ReadModel  # noqa: F401
    from repro.readmodel.service import ReadModelService  # noqa: F401
    from repro.store.checkpoint import Checkpointer  # noqa: F401
    from repro.store.journal import Journal  # noqa: F401
    from repro.store.tail import JournalTailer  # noqa: F401
    from repro.store.recovery import recover, state_fingerprint  # noqa: F401
    from repro.scorm.package import ContentPackage  # noqa: F401
    from repro.scorm.package import extract_exam  # noqa: F401
    from repro.scorm.package import package_exam  # noqa: F401
    from repro.scorm.package import package_exam as build_package  # noqa: F401
    from repro.sim.learner_model import ItemParameters  # noqa: F401
    from repro.sim.population import make_population  # noqa: F401
    from repro.sim.vectorized import simulate_sharded  # noqa: F401
    from repro.sim.workloads import (  # noqa: F401
        classroom_adaptive_exam,
        classroom_exam,
        classroom_parameters,
        pre_post_cohorts,
        simulate_sitting_data,
    )
