"""The in-process read-model follower the exam server embeds.

:class:`ReadModelService` owns one :class:`~repro.readmodel.model.
ReadModel`, one :class:`~repro.store.tail.JournalTailer`, and a lock.
Started, it runs a daemon thread that polls the WAL and folds new
records as they commit; admin handlers call :meth:`sync` before
answering — a cheap catch-up of whatever delta accumulated since the
last poll — which gives read-your-writes consistency in the serving
process while keeping every query O(aggregate), not O(history).

Restart resumes from the newest ``readmodel-*.json`` checkpoint in the
WAL directory and replays only the suffix.  If compaction ever retires
records past the follower's position (it cannot in-process — the server
syncs the read model *before* the LMS checkpointer compacts — but an
external follower can race an external compactor), the tailer raises
:class:`~repro.store.tail.TailTruncatedError` and the service restarts
itself from the newest checkpoint rather than serving a silent gap.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Optional

from repro import obs
from repro.core.errors import StoreError
from repro.readmodel.checkpoint import (
    latest_readmodel_checkpoint,
    load_readmodel,
    save_readmodel,
)
from repro.readmodel.model import ReadModel
from repro.store.tail import JournalTailer, TailTruncatedError

__all__ = ["ReadModelService", "DEFAULT_POLL_INTERVAL"]

#: follower thread cadence; per-request sync() hides it from clients
DEFAULT_POLL_INTERVAL = 0.05


class ReadModelService:
    """A checkpoint-resumable WAL follower plus its query lock."""

    def __init__(
        self,
        directory: "str | Path",
        journal=None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        checkpoint_keep: int = 2,
    ) -> None:
        self.directory = Path(directory)
        self.journal = journal
        self.poll_interval = float(poll_interval)
        self.checkpoint_keep = int(checkpoint_keep)
        self.lock = threading.RLock()
        self.model = self._resume()
        self._tailer = JournalTailer(
            self.directory,
            start_lsn=self.model.applied_lsn,
            poll_interval=self.poll_interval,
        )
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.restarts = 0
        self.checkpoints_taken = 0

    def _resume(self) -> ReadModel:
        path = latest_readmodel_checkpoint(self.directory)
        if path is None:
            return ReadModel()
        try:
            model = load_readmodel(path)
        except (StoreError, ValueError, OSError):
            # a torn/corrupt checkpoint must not strand the follower;
            # fold from the journal head instead
            obs.count("readmodel.checkpoint.unreadable")
            return ReadModel()
        obs.count("readmodel.resumes")
        return model

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="readmodel-follower", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.sync()
            except StoreError:
                # surfaced to queries via sync(); the thread keeps going
                obs.count("readmodel.follower.errors")
            self._stop.wait(self.poll_interval)

    def close(self) -> None:
        """Stop the follower thread (the model stays queryable)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    # -- folding -------------------------------------------------------------

    def sync(self) -> int:
        """Fold everything appended since the last poll; records applied.

        Cheap at the tip (one directory listing + an EOF read), so
        handlers call it per-request for read-your-writes semantics.
        """
        with self.lock:
            try:
                records = self._tailer.poll()
            except TailTruncatedError:
                self._restart_from_checkpoint()
                records = self._tailer.poll()
            applied = self.model.apply_all(records)
        if applied:
            obs.count("readmodel.events.applied", applied)
        return applied

    def _restart_from_checkpoint(self) -> None:
        """Re-anchor after compaction ran ahead of the follower."""
        self.restarts += 1
        obs.count("readmodel.follower.restarts")
        self.model = self._resume()
        self._tailer = JournalTailer(
            self.directory,
            start_lsn=self.model.applied_lsn,
            poll_interval=self.poll_interval,
        )

    def checkpoint(self) -> Path:
        """Sync to the tip, then persist the fold state."""
        with self.lock:
            self.sync()
            path = save_readmodel(
                self.model, self.directory, keep=self.checkpoint_keep
            )
            self.checkpoints_taken += 1
        return path

    # -- introspection -------------------------------------------------------

    def lag(self) -> Optional[int]:
        """Records the journal holds that the model has not folded yet."""
        if self.journal is None:
            return None
        with self.lock:
            return max(self.journal.last_lsn - self.model.applied_lsn, 0)

    def info(self) -> Dict[str, object]:
        """The /metrics payload: position, lag, and follower counters."""
        with self.lock:
            payload: Dict[str, object] = {
                "applied_lsn": self.model.applied_lsn,
                "applied_events": self.model.applied_events,
                "exams": len(self.model.exams),
                "records_read": self._tailer.records_read,
                "polls": self._tailer.polls,
                "segments_followed": self._tailer.segments_followed,
                "restarts": self.restarts,
                "checkpoints_taken": self.checkpoints_taken,
            }
            if self.journal is not None:
                payload["journal_lsn"] = self.journal.last_lsn
                payload["lag"] = max(
                    self.journal.last_lsn - self.model.applied_lsn, 0
                )
        return payload
