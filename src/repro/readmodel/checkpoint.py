"""Read-model checkpoints, full rebuilds, and time-travel queries.

A read-model checkpoint is the fold state of :class:`~repro.readmodel.
model.ReadModel` at one LSN, written as ``readmodel-<lsn>.json`` next
to the WAL segments (prefix-distinct from both ``wal-*`` segments and
the LMS's ``checkpoint-*`` snapshots, so neither reader picks up the
other's files).  Restoring one and replaying the journal suffix above
its stamp reproduces the live fold exactly — which powers the two query
modes this module adds on top of the streaming service:

* :func:`rebuild` — fold the **entire** journal from LSN 0, ignoring
  checkpoints.  This is the differential oracle: its analysis must be
  bit-identical to the serving tier's live engine over the same
  history.
* :func:`as_of` — "the cohort as of LSN/time T": restore the nearest
  checkpoint at or below the target, then replay the bounded suffix up
  to it.  Cost is O(checkpoint + suffix), never O(full history).

Time targets rely on the journal's per-directory timestamp monotonicity
(one LMS clock per shard): replay stops at the first *timed* event past
the target; untimed catalog events (offer/register) carry no clock and
apply whenever encountered below the LSN bound.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Tuple

from repro import obs
from repro.core.errors import StoreError
from repro.readmodel.model import ReadModel
from repro.store.events import event_timestamp
from repro.store.journal import read_records, segment_files, segment_first_lsn

__all__ = [
    "readmodel_files",
    "latest_readmodel_checkpoint",
    "save_readmodel",
    "load_readmodel",
    "rebuild",
    "as_of",
]

_READMODEL_PREFIX = "readmodel-"
_READMODEL_SUFFIX = ".json"


def _readmodel_name(applied_lsn: int) -> str:
    return f"{_READMODEL_PREFIX}{applied_lsn:020d}{_READMODEL_SUFFIX}"


def _readmodel_lsn(path: Path) -> int:
    stem = path.name[len(_READMODEL_PREFIX):-len(_READMODEL_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise StoreError(
            f"not a read-model checkpoint name: {path.name}"
        ) from None


def readmodel_files(directory: "str | Path") -> List[Path]:
    """Every read-model checkpoint in the directory, oldest first."""
    base = Path(directory)
    if not base.is_dir():
        return []
    found = [
        path
        for path in base.iterdir()
        if path.name.startswith(_READMODEL_PREFIX)
        and path.name.endswith(_READMODEL_SUFFIX)
    ]
    return sorted(found, key=_readmodel_lsn)


def latest_readmodel_checkpoint(
    directory: "str | Path", at_or_below: Optional[int] = None
) -> Optional[Path]:
    """The newest checkpoint (optionally at or below an LSN), or None."""
    best: Optional[Path] = None
    for path in readmodel_files(directory):
        if at_or_below is not None and _readmodel_lsn(path) > at_or_below:
            break
        best = path
    return best


def save_readmodel(
    model: ReadModel, directory: "str | Path", *, keep: int = 2
) -> Path:
    """Write the model's snapshot atomically; prune old checkpoints.

    ``keep`` newest files are retained (mirroring the LMS checkpointer's
    retention) so one corrupt file never strands the follower.
    """
    if keep < 1:
        raise StoreError(f"must keep at least 1 checkpoint, got {keep}")
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    path = base / _readmodel_name(model.applied_lsn)
    payload = json.dumps(model.snapshot(), separators=(",", ":"))
    tmp = path.with_suffix(".tmp")
    with tmp.open("w", encoding="utf-8") as stream:
        stream.write(payload)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)
    for old in readmodel_files(base)[:-keep]:
        old.unlink()
    obs.count("readmodel.checkpoints")
    return path


def load_readmodel(path: "str | Path") -> ReadModel:
    """Restore a read model from one checkpoint file."""
    with Path(path).open("r", encoding="utf-8") as stream:
        document = json.load(stream)
    model = ReadModel.from_snapshot(document)
    if model.applied_lsn != _readmodel_lsn(Path(path)):
        raise StoreError(
            f"checkpoint {Path(path).name} claims lsn "
            f"{_readmodel_lsn(Path(path))} but holds {model.applied_lsn}"
        )
    return model


def rebuild(directory: "str | Path") -> ReadModel:
    """Fold the full journal from LSN 0, ignoring every checkpoint.

    The differential-oracle path: over an unretired journal this
    reproduces exactly the state the streaming fold reached.  Raises
    :class:`StoreError` when compaction already retired the journal's
    head — a rebuild from 0 would silently miss history, so it refuses.
    """
    base = Path(directory)
    segments = segment_files(base)
    if segments and segment_first_lsn(segments[0]) > 1:
        raise StoreError(
            f"cannot rebuild from lsn 0: records 1.."
            f"{segment_first_lsn(segments[0]) - 1} were retired by "
            f"checkpoint compaction (oldest surviving segment is "
            f"{segments[0].name}); use a read-model checkpoint instead"
        )
    model = ReadModel()
    with obs.span("readmodel.rebuild"):
        model.apply_all(read_records(base))
    return model


def as_of(
    directory: "str | Path",
    lsn: Optional[int] = None,
    ts: Optional[float] = None,
) -> Tuple[ReadModel, int]:
    """The read model as of an LSN or timestamp: nearest checkpoint
    plus a bounded suffix replay.

    Exactly one of ``lsn``/``ts`` must be given.  Returns the model and
    the number of suffix records replayed on top of the checkpoint (the
    measure of how bounded the query was).  LSN targets are per-shard
    coordinates; timestamp targets are meaningful across shards (one
    wall clock) and are how the cluster surface time-travels.
    """
    if (lsn is None) == (ts is None):
        raise StoreError("as_of needs exactly one of lsn= or ts=")
    base = Path(directory)
    checkpoint = latest_readmodel_checkpoint(base, at_or_below=lsn)
    if checkpoint is not None and ts is not None:
        # timestamp targets pick by the stamp *inside* the snapshot:
        # the newest checkpoint whose last timed event is at or below T
        checkpoint = None
        for path in readmodel_files(base):
            with path.open("r", encoding="utf-8") as stream:
                document = json.load(stream)
            if float(document.get("last_event_ts", 0.0)) <= ts:
                checkpoint = path
            else:
                break
    model = load_readmodel(checkpoint) if checkpoint else ReadModel()
    segments = segment_files(base)
    if segments and segment_first_lsn(segments[0]) > model.applied_lsn + 1:
        raise StoreError(
            f"records {model.applied_lsn + 1}.."
            f"{segment_first_lsn(segments[0]) - 1} were retired and no "
            f"read-model checkpoint covers them; checkpoint the read "
            f"model before compacting"
        )
    replayed = 0
    with obs.span("readmodel.as_of"):
        for record in read_records(base, start_lsn=model.applied_lsn):
            if lsn is not None and record.lsn > lsn:
                break
            if ts is not None:
                stamp = event_timestamp(record.type, record.data)
                if stamp > ts:
                    break
            if model.apply(record):
                replayed += 1
    return model, replayed
