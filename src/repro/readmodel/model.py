"""The fold engine: journal events -> incrementally maintained read models.

:class:`ReadModel` consumes :class:`~repro.store.journal.JournalRecord`
objects in LSN order (from a :class:`~repro.store.tail.JournalTailer`,
or a :func:`~repro.store.journal.read_records` replay) and folds each
event into per-exam aggregates:

* the **cohort matrix** — a :class:`~repro.core.columnar.
  LiveCohortAnalysis` maintained by *exactly* the live LMS's submit
  sequence (``invalidate`` the learner's earlier sitting, then
  ``add_sitting`` the regraded one), so :meth:`analysis` is
  **bit-identical** to the serving tier's ``live_analysis`` over the
  same event history — the differential-oracle property the rebuild
  path is tested against;
* the **score distribution** — per-learner latest percent plus eleven
  decade buckets, decremented on re-sit so a learner is never counted
  twice;
* the **Bloom blueprint rollup** — static per-level question counts
  crossed with a rolling per-level correct count over the cohort's
  latest sittings;
* the **specification-table aggregate** — the §4.2.2 concept × level
  table, static per offering.

Every aggregate is O(cohort) or O(exam) in size — never O(history) —
which is what makes the admin query surface O(1) against a checkpoint
regardless of how much journal lies beneath it.

The fold is **deterministic and replayable**: applying the same records
in the same LSN order from any snapshot produces the same state, and
:meth:`ReadModel.apply` ignores records at or below ``applied_lsn`` so
overlapping replays (checkpoint + suffix) are idempotent.
"""

from __future__ import annotations

import base64
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cognition import COGNITIVE_LEVELS
from repro.core.columnar import SKIP, LiveCohortAnalysis
from repro.core.errors import NotFoundError, StoreError
from repro.core.question_analysis import CohortAnalysis, ExamineeResponses
from repro.store.events import event_timestamp
from repro.store.journal import JournalRecord

__all__ = ["ReadModel", "ExamReadModel", "SNAPSHOT_FORMAT", "merge_summaries"]

#: on-disk snapshot format tag (see :mod:`repro.readmodel.checkpoint`)
SNAPSHOT_FORMAT = "mine-readmodel-v1"

#: score-distribution decades: [0,10) .. [90,100) plus the exact-100 bucket
DISTRIBUTION_BUCKETS = 11


def _bucket(percent: float) -> int:
    return min(int(percent // 10), DISTRIBUTION_BUCKETS - 1)


class ExamReadModel:
    """All per-offering aggregates, folded one submit at a time."""

    def __init__(self, exam) -> None:
        self.exam = exam
        self.items = list(exam.items)
        self.analyzable = exam.analyzable_items()
        self.specs = tuple(exam.question_specs())
        #: mirrors the LMS: no live analysis for exams without choice items
        self.live: Optional[LiveCohortAnalysis] = (
            LiveCohortAnalysis(self.specs) if self.specs else None
        )
        self.enrolled: set = set()
        self.submits = 0
        #: latest sitting's graded percent per learner (re-sit overwrites)
        self.percents: Dict[str, float] = {}
        self.buckets: List[int] = [0] * DISTRIBUTION_BUCKETS
        #: latest sitting's per-level correct counts per learner
        self.level_correct: Dict[str, Dict[str, int]] = {}
        self._level_totals: Dict[str, int] = {
            level.letter: 0 for level in COGNITIVE_LEVELS
        }
        #: static blueprint shape, computed once at offer time
        self._level_questions: Dict[str, int] = {
            level.letter: 0 for level in COGNITIVE_LEVELS
        }
        self._level_analyzable: Dict[str, int] = {
            level.letter: 0 for level in COGNITIVE_LEVELS
        }
        for item in self.items:
            if item.cognition_level is not None:
                self._level_questions[item.cognition_level.letter] += 1
        for spec in self.specs:
            if spec.cognition_level is not None:
                self._level_analyzable[spec.cognition_level.letter] += 1
        self._spec_table = self._build_spec_table()

    def _build_spec_table(self) -> Dict[str, object]:
        table = self.exam.specification_table()
        return {
            "concepts": list(table.concepts),
            "levels": [level.letter for level in COGNITIVE_LEVELS],
            "cells": {
                concept: [
                    table.count(concept, level) for level in COGNITIVE_LEVELS
                ]
                for concept in table.concepts
            },
            "level_sums": table.level_sums(),
            "total": table.total(),
            "lost_concepts": table.lost_concepts(),
            "pyramid_violations": [
                [low.letter, high.letter]
                for low, high in table.pyramid_violations()
            ],
        }

    # -- folding -------------------------------------------------------------

    def fold_submit(self, learner_id: str, answers: Dict[str, object]) -> None:
        """One graded sitting, from the sitting's final answer map.

        ``answers`` maps item id -> the raw wire response (latest write
        wins, exactly as :class:`~repro.delivery.session.ExamSession`
        keeps them); grading runs the items' own ``score`` methods, the
        same code path :func:`~repro.delivery.scoring.grade_session`
        uses, so percent and selections match the live grade bit for
        bit.
        """
        self.submits += 1
        total = 0.0
        maximum = 0.0
        scores = {}
        for item in self.items:
            scored = item.score(answers.get(item.item_id))
            scores[item.item_id] = scored
            total += scored.points
            maximum += scored.max_points
        percent = (total / maximum * 100.0) if maximum else 0.0
        previous = self.percents.pop(learner_id, None)
        if previous is not None:
            self.buckets[_bucket(previous)] -= 1
        self.percents[learner_id] = percent
        self.buckets[_bucket(percent)] += 1
        if self.live is not None:
            # the live-LMS submit sequence, verbatim: drop any earlier
            # sitting by this learner, then fold the regraded one
            selections = [
                scores[item.item_id].selected for item in self.analyzable
            ]
            self.live.invalidate(learner_id)
            self.live.add_sitting(ExamineeResponses.of(learner_id, selections))
        vector: Dict[str, int] = {}
        for spec, item in zip(self.specs, self.analyzable):
            if spec.cognition_level is None:
                continue
            if scores[item.item_id].selected == spec.correct:
                letter = spec.cognition_level.letter
                vector[letter] = vector.get(letter, 0) + 1
        old = self.level_correct.pop(learner_id, None)
        if old:
            for letter, count in old.items():
                self._level_totals[letter] -= count
        self.level_correct[learner_id] = vector
        for letter, count in vector.items():
            self._level_totals[letter] += count

    # -- views ---------------------------------------------------------------

    def distribution(self) -> Dict[str, object]:
        """The score distribution over the cohort's latest sittings."""
        values = self.percents.values()
        return {
            "count": len(self.percents),
            "buckets": list(self.buckets),
            "min": min(values) if self.percents else None,
            "max": max(values) if self.percents else None,
        }

    def blueprint(self) -> Dict[str, object]:
        """The Bloom-level rollup: exam shape × cohort correctness."""
        cohort = len(self.percents)
        levels = []
        for level in COGNITIVE_LEVELS:
            letter = level.letter
            analyzable = self._level_analyzable[letter]
            levels.append(
                {
                    "letter": letter,
                    "label": level.label,
                    "questions": self._level_questions[letter],
                    "analyzable": analyzable,
                    "attempts": analyzable * cohort,
                    "correct": self._level_totals[letter],
                }
            )
        return {
            "levels": levels,
            "cohort": cohort,
            "pyramid_violations": list(
                self._spec_table["pyramid_violations"]
            ),
        }

    def spec_table(self) -> Dict[str, object]:
        """The static §4.2.2 specification-table aggregate."""
        return dict(self._spec_table)

    def analysis(self) -> CohortAnalysis:
        """The current cohort's §4.1 analysis (cached in the live engine)."""
        if self.live is None:
            raise NotFoundError(
                f"exam {self.exam.exam_id!r} has no analyzable questions"
            )
        return self.live.analysis()

    def partial(self) -> Dict[str, object]:
        """This model's cohort as a scatter-gather partial."""
        if self.live is None:
            raise NotFoundError(
                f"exam {self.exam.exam_id!r} has no analyzable questions"
            )
        return self.live.export_partial()

    def summary(self) -> Dict[str, object]:
        return {
            "exam_id": self.exam.exam_id,
            "title": self.exam.title,
            "questions": len(self.items),
            "analyzable": len(self.analyzable),
            "enrolled": len(self.enrolled),
            "submits": self.submits,
            "distribution": self.distribution(),
            "blueprint": self.blueprint(),
            "spec_table": self.spec_table(),
        }


class ReadModel:
    """The whole journal folded into queryable aggregates.

    Not thread-safe on its own — the service tier serializes access.
    """

    def __init__(self) -> None:
        self.applied_lsn = 0
        self.applied_events = 0
        self.last_event_ts = 0.0
        self.events: Dict[str, int] = {}
        self.learners: set = set()
        self.exams: Dict[str, ExamReadModel] = {}
        #: open sittings' answer maps, keyed (learner_id, exam_id)
        self.pending: Dict[Tuple[str, str], Dict[str, object]] = {}

    # -- folding -------------------------------------------------------------

    def apply(self, record: JournalRecord) -> bool:
        """Fold one journal record; False when it was already applied.

        Records must arrive in LSN order; the guard makes overlapping
        replays (a checkpoint plus a suffix that re-reads the boundary)
        idempotent rather than double-counted.
        """
        if record.lsn <= self.applied_lsn:
            return False
        self._fold(record.type, record.data)
        self.applied_lsn = record.lsn
        self.applied_events += 1
        self.events[record.type] = self.events.get(record.type, 0) + 1
        ts = event_timestamp(record.type, record.data)
        if ts > self.last_event_ts:
            self.last_event_ts = ts
        return True

    def apply_all(self, records) -> int:
        """Fold an iterable of records; the number newly applied."""
        applied = 0
        for record in records:
            if self.apply(record):
                applied += 1
        return applied

    def _fold(self, type_: str, data: Dict[str, object]) -> None:
        if type_ == "offer":
            from repro.bank.exambank import exam_from_record

            exam = exam_from_record(data["exam"])
            self.exams[exam.exam_id] = ExamReadModel(exam)
        elif type_ == "register":
            self.learners.add(data["learner_id"])
        elif type_ == "enroll":
            model = self.exams.get(data["exam_id"])
            if model is not None:
                model.enrolled.add(data["learner_id"])
        elif type_ == "start":
            # a fresh sitting: any earlier answers belong to a sitting
            # that was already submitted (or is being re-sat)
            self.pending[(data["learner_id"], data["exam_id"])] = {}
        elif type_ == "answer":
            key = (data["learner_id"], data["exam_id"])
            self.pending.setdefault(key, {})[data["item_id"]] = data[
                "response"
            ]
        elif type_ == "answers":
            key = (data["learner_id"], data["exam_id"])
            answers = self.pending.setdefault(key, {})
            for item_id, response in data["answers"]:
                answers[item_id] = response
        elif type_ == "submit":
            learner_id = data["learner_id"]
            exam_id = data["exam_id"]
            answers = self.pending.pop((learner_id, exam_id), {})
            model = self.exams.get(exam_id)
            if model is not None:
                model.fold_submit(learner_id, answers)
        elif type_ in ("suspend", "resume", "monitor", "calibrate"):
            # lifecycle-only: counted in the per-type totals.  A
            # calibrate swap changes *selection* parameters, not the
            # response matrix this read model folds.
            pass
        else:
            raise StoreError(
                f"unknown journal event type {type_!r}; "
                f"this read model needs a newer fold"
            )

    # -- views ---------------------------------------------------------------

    def exam(self, exam_id: str) -> ExamReadModel:
        model = self.exams.get(exam_id)
        if model is None:
            raise NotFoundError(
                f"read model has no exam {exam_id!r} "
                f"(not offered before lsn {self.applied_lsn})"
            )
        return model

    def overview(self) -> Dict[str, object]:
        return {
            "applied_lsn": self.applied_lsn,
            "applied_events": self.applied_events,
            "last_event_ts": self.last_event_ts,
            "events": dict(sorted(self.events.items())),
            "learners": len(self.learners),
            "open_sittings": len(self.pending),
            "exams": [
                {
                    "exam_id": exam_id,
                    "submits": model.submits,
                    "enrolled": len(model.enrolled),
                }
                for exam_id, model in sorted(self.exams.items())
            ],
        }

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The full fold state as a JSON-shaped document.

        The cohort matrix rides as its scatter-gather partial — row
        order (submission order) is preserved, which matters: extreme-
        group boundary ties break by row order, so a restored model must
        analyze bit-identically to the one that was snapshotted.
        """
        from repro.bank.exambank import exam_to_record

        exams = {}
        for exam_id, model in self.exams.items():
            exams[exam_id] = {
                "record": exam_to_record(model.exam),
                "partial": (
                    model.live.export_partial()
                    if model.live is not None
                    else None
                ),
                "enrolled": sorted(model.enrolled),
                "submits": model.submits,
                "percents": dict(model.percents),
                "level_correct": {
                    learner: dict(vector)
                    for learner, vector in model.level_correct.items()
                },
            }
        return {
            "format": SNAPSHOT_FORMAT,
            "applied_lsn": self.applied_lsn,
            "applied_events": self.applied_events,
            "last_event_ts": self.last_event_ts,
            "events": dict(self.events),
            "learners": sorted(self.learners),
            "pending": [
                [learner_id, exam_id, [[k, v] for k, v in answers.items()]]
                for (learner_id, exam_id), answers in self.pending.items()
            ],
            "exams": exams,
        }

    @classmethod
    def from_snapshot(cls, document: Dict[str, object]) -> "ReadModel":
        from repro.bank.exambank import exam_from_record

        if document.get("format") != SNAPSHOT_FORMAT:
            raise StoreError(
                f"unknown read-model snapshot format "
                f"{document.get('format')!r}"
            )
        model = cls()
        model.applied_lsn = int(document["applied_lsn"])
        model.applied_events = int(document.get("applied_events", 0))
        model.last_event_ts = float(document.get("last_event_ts", 0.0))
        model.events = {
            str(k): int(v) for k, v in document.get("events", {}).items()
        }
        model.learners = set(document.get("learners", ()))
        for learner_id, exam_id, pairs in document.get("pending", ()):
            model.pending[(learner_id, exam_id)] = {
                pair[0]: pair[1] for pair in pairs
            }
        for exam_id, state in document.get("exams", {}).items():
            exam_model = ExamReadModel(exam_from_record(state["record"]))
            exam_model.enrolled = set(state.get("enrolled", ()))
            exam_model.submits = int(state.get("submits", 0))
            for learner, percent in state.get("percents", {}).items():
                exam_model.percents[learner] = float(percent)
                exam_model.buckets[_bucket(float(percent))] += 1
            for learner, vector in state.get("level_correct", {}).items():
                counts = {str(k): int(v) for k, v in vector.items()}
                exam_model.level_correct[learner] = counts
                for letter, count in counts.items():
                    exam_model._level_totals[letter] += count
            partial = state.get("partial")
            if exam_model.live is not None and partial is not None:
                _restore_matrix(exam_model.live, exam_model.specs, partial)
            model.exams[exam_id] = exam_model
        return model


def _restore_matrix(
    live: LiveCohortAnalysis, specs, partial: Dict[str, object]
) -> None:
    """Rebuild a cohort matrix from its partial, preserving row order.

    Unlike :func:`~repro.core.columnar.merge_partials` this must NOT
    canonical-sort: a single shard's row order (submission order) is the
    tie-break order for extreme-group boundaries, and restore has to
    reproduce the snapshotted model exactly.
    """
    ids = [str(identifier) for identifier in partial["examinee_ids"]]
    codes = base64.b64decode(partial["codes_b64"])
    labels = [list(per_question) for per_question in partial["labels"]]
    if labels == [list(spec.options) for spec in specs]:
        if ids:
            live.extend_codes(ids, codes)
        return
    width = len(specs)
    for index, examinee_id in enumerate(ids):
        row = codes[index * width : (index + 1) * width]
        selections: List[Optional[str]] = [
            None if code == SKIP else labels[question][code]
            for question, code in enumerate(row)
        ]
        live.add_sitting(
            ExamineeResponses(
                examinee_id=examinee_id, selections=tuple(selections)
            )
        )


def merge_summaries(
    summaries: Sequence[Dict[str, object]],
) -> Dict[str, object]:
    """Merge per-shard exam summaries into one cohort-wide summary.

    Shards own disjoint learners, so the integer aggregates simply sum;
    min/max combine; the static exam shape (questions, spec table,
    blueprint levels) is identical on every shard and taken from the
    first.
    """
    if not summaries:
        raise NotFoundError("no shard summaries to merge")
    merged = {
        "exam_id": summaries[0]["exam_id"],
        "title": summaries[0]["title"],
        "questions": summaries[0]["questions"],
        "analyzable": summaries[0]["analyzable"],
        "enrolled": sum(s["enrolled"] for s in summaries),
        "submits": sum(s["submits"] for s in summaries),
        "spec_table": summaries[0]["spec_table"],
    }
    buckets = [0] * DISTRIBUTION_BUCKETS
    count = 0
    lows = []
    highs = []
    for summary in summaries:
        distribution = summary["distribution"]
        for index, value in enumerate(distribution["buckets"]):
            buckets[index] += value
        count += distribution["count"]
        if distribution["min"] is not None:
            lows.append(distribution["min"])
        if distribution["max"] is not None:
            highs.append(distribution["max"])
    merged["distribution"] = {
        "count": count,
        "buckets": buckets,
        "min": min(lows) if lows else None,
        "max": max(highs) if highs else None,
    }
    cohort = sum(s["blueprint"]["cohort"] for s in summaries)
    levels = []
    for index, level in enumerate(summaries[0]["blueprint"]["levels"]):
        levels.append(
            {
                "letter": level["letter"],
                "label": level["label"],
                "questions": level["questions"],
                "analyzable": level["analyzable"],
                "attempts": level["analyzable"] * cohort,
                "correct": sum(
                    s["blueprint"]["levels"][index]["correct"]
                    for s in summaries
                ),
            }
        )
    merged["blueprint"] = {
        "levels": levels,
        "cohort": cohort,
        "pyramid_violations": list(
            summaries[0]["blueprint"]["pyramid_violations"]
        ),
    }
    return merged
