"""``repro.readmodel`` — the journal-fed analytics read-model tier (CQRS).

The write path (:mod:`repro.lms` + :mod:`repro.store`) journals every
mutation; this package is the read path: it tails the WAL, folds events
into incrementally maintained aggregates, and answers the analytical
questions the serving tier should never compute from scratch (see
``docs/readmodel.md``):

* :class:`ReadModel` / :class:`ExamReadModel` — the deterministic fold:
  rolling psychometrics (a live cohort matrix bit-identical to the
  serving engine's), score distributions, Bloom-level blueprint
  rollups, and specification-table aggregates;
* :mod:`repro.readmodel.checkpoint` — ``readmodel-<lsn>.json``
  snapshots, :func:`rebuild` (the full-journal differential oracle),
  and :func:`as_of` time-travel queries;
* :class:`ReadModelService` — the in-process follower thread behind
  ``GET /admin/analytics/...`` and the ``serve --readmodel`` flag.

Resolution is lazy (PEP 562), matching the other subsystem facades.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "ReadModel": ("repro.readmodel.model", "ReadModel"),
    "ExamReadModel": ("repro.readmodel.model", "ExamReadModel"),
    "merge_summaries": ("repro.readmodel.model", "merge_summaries"),
    "SNAPSHOT_FORMAT": ("repro.readmodel.model", "SNAPSHOT_FORMAT"),
    "readmodel_files": ("repro.readmodel.checkpoint", "readmodel_files"),
    "latest_readmodel_checkpoint": (
        "repro.readmodel.checkpoint",
        "latest_readmodel_checkpoint",
    ),
    "save_readmodel": ("repro.readmodel.checkpoint", "save_readmodel"),
    "load_readmodel": ("repro.readmodel.checkpoint", "load_readmodel"),
    "rebuild": ("repro.readmodel.checkpoint", "rebuild"),
    "as_of": ("repro.readmodel.checkpoint", "as_of"),
    "ReadModelService": ("repro.readmodel.service", "ReadModelService"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


if TYPE_CHECKING:  # pragma: no cover - static-analysis eyes only
    from repro.readmodel.checkpoint import (  # noqa: F401
        as_of,
        latest_readmodel_checkpoint,
        load_readmodel,
        readmodel_files,
        rebuild,
        save_readmodel,
    )
    from repro.readmodel.model import (  # noqa: F401
        SNAPSHOT_FORMAT,
        ExamReadModel,
        ReadModel,
        merge_summaries,
    )
    from repro.readmodel.service import ReadModelService  # noqa: F401
