"""Classical test theory baselines for the ablation benches."""

from repro.baselines.classical import (
    ClassicalItemStats,
    classical_item_analysis,
    point_biserial,
    whole_group_difficulty,
)

__all__ = [
    "whole_group_difficulty",
    "point_biserial",
    "ClassicalItemStats",
    "classical_item_analysis",
]
