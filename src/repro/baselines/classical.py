"""Classical test theory baselines.

The paper's analysis model uses the upper/lower-25% method (§4.1.1).
This module implements the standard alternatives it is measured against
in the ablation benches:

* **whole-group difficulty** — P = R/N over every examinee (the paper's
  own §3.3 definition), versus the split-group P = (PH + PL)/2;
* **point-biserial discrimination** — the correlation between item
  correctness and total score, the textbook alternative to D = PH − PL;
* :func:`classical_item_analysis` — both statistics for every question
  of a cohort, as a Moodle/edX-style item report would compute them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.errors import AnalysisError, EmptyCohortError
from repro.core.question_analysis import ExamineeResponses, QuestionSpec

__all__ = [
    "whole_group_difficulty",
    "point_biserial",
    "ClassicalItemStats",
    "classical_item_analysis",
]


def whole_group_difficulty(correct_flags: Sequence[bool]) -> float:
    """P = R/N over the entire cohort (§3.3's definition)."""
    if not correct_flags:
        raise EmptyCohortError("no correctness flags")
    return sum(1 for flag in correct_flags if flag) / len(correct_flags)


def point_biserial(
    correct_flags: Sequence[bool], total_scores: Sequence[float]
) -> float:
    """Point-biserial correlation between item correctness and total score.

    Returns 0.0 for degenerate cases (everyone right/wrong, or zero score
    variance) — the convention item-analysis packages use.
    """
    if len(correct_flags) != len(total_scores):
        raise AnalysisError(
            f"{len(correct_flags)} flags vs {len(total_scores)} scores"
        )
    n = len(correct_flags)
    if n == 0:
        raise EmptyCohortError("no examinees")
    p = sum(1 for flag in correct_flags if flag) / n
    if p in (0.0, 1.0):
        return 0.0
    mean = sum(total_scores) / n
    variance = sum((score - mean) ** 2 for score in total_scores) / n
    if variance == 0:
        return 0.0
    mean_correct = (
        sum(score for flag, score in zip(correct_flags, total_scores) if flag)
        / (p * n)
    )
    mean_wrong = (
        sum(score for flag, score in zip(correct_flags, total_scores) if not flag)
        / ((1 - p) * n)
    )
    return (mean_correct - mean_wrong) * math.sqrt(p * (1 - p)) / math.sqrt(
        variance
    )


@dataclass(frozen=True)
class ClassicalItemStats:
    """Whole-group statistics for one question."""

    number: int
    difficulty: float  # P = R/N
    point_biserial: float


def classical_item_analysis(
    responses: Sequence[ExamineeResponses],
    questions: Sequence[QuestionSpec],
) -> List[ClassicalItemStats]:
    """The classical (whole-group) item report for a cohort."""
    if not responses:
        raise EmptyCohortError("no examinee responses")
    if not questions:
        raise AnalysisError("no questions")
    totals: Dict[str, float] = {}
    per_question_flags: List[List[bool]] = [[] for _ in questions]
    total_scores: List[float] = []
    for response in responses:
        if len(response.selections) != len(questions):
            raise AnalysisError(
                f"examinee {response.examinee_id!r} answered "
                f"{len(response.selections)} of {len(questions)} questions"
            )
        score = 0.0
        for index, (selection, spec) in enumerate(
            zip(response.selections, questions)
        ):
            correct = selection == spec.correct
            per_question_flags[index].append(correct)
            score += 1.0 if correct else 0.0
        total_scores.append(score)
    stats = []
    for index, flags in enumerate(per_question_flags):
        stats.append(
            ClassicalItemStats(
                number=index + 1,
                difficulty=whole_group_difficulty(flags),
                point_biserial=point_biserial(flags, total_scores),
            )
        )
    return stats
