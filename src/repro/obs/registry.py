"""The observability registry: spans, counters, gauges, and sinks.

The paper's on-line exam monitor (§5, Fig. 6) watches sittings while
they run; this module is the analogous substrate for the *system
itself* — structured, low-overhead instrumentation threaded through
delivery, analysis, simulation, and packaging, so any run can answer
"where did the time go" without ad-hoc benchmark scripts.

The design center is the **disabled path**: every call site in the hot
layers goes through the module-level helpers of :mod:`repro.obs`, which
check one flag and return a shared no-op object when instrumentation is
off.  No records, no clock reads, no allocation beyond the call's own
kwargs dict — the 10k x 50 benchmark holds the overhead under 5%
(``benchmarks/test_bench_obs_overhead.py`` records the number into
``BENCH_obs.json``).

When enabled, :class:`Registry` keeps:

* **spans** — nested wall/CPU timers (:class:`SpanRecord` trees, one
  root per top-level ``with obs.span(...)``), retention-bounded;
* **counters** — monotonic adds (sittings submitted, cache
  invalidations, shard counts, bytes written);
* **gauges** — last-value-wins measurements (cohort size, queue depth);
* **sinks** — pluggable observers notified as each span closes (ring
  buffer, JSON-lines file, or anything with an ``emit(event)`` method).

Everything is stdlib-only and process-local; thread safety is
best-effort (a lock guards counter/gauge mutation, span stacks are
per-thread), which matches the library's in-process LMS.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["SpanRecord", "Registry", "NOOP_SPAN"]

#: Retention bound on completed root spans (oldest dropped first), so a
#: long-lived profiled process cannot grow without bound.
DEFAULT_MAX_ROOTS = 4096


class SpanRecord:
    """One timed region: name, tags, wall/CPU seconds, nested children.

    ``wall_seconds``/``cpu_seconds`` are filled when the span closes;
    ``error`` names the exception type when the region raised.
    """

    __slots__ = (
        "name",
        "tags",
        "started_at",
        "wall_seconds",
        "cpu_seconds",
        "children",
        "error",
    )

    def __init__(self, name: str, tags: Dict[str, Any]) -> None:
        self.name = name
        self.tags = tags
        self.started_at = time.time()
        self.wall_seconds: float = 0.0
        self.cpu_seconds: float = 0.0
        self.children: List["SpanRecord"] = []
        self.error: Optional[str] = None

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "SpanRecord"]]:
        """Yield ``(depth, record)`` over this span and its subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form of the whole subtree (sinks serialize this)."""
        payload: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "started_at": round(self.started_at, 6),
            "wall_ms": round(self.wall_seconds * 1000.0, 4),
            "cpu_ms": round(self.cpu_seconds * 1000.0, 4),
        }
        if self.tags:
            payload["tags"] = dict(self.tags)
        if self.error is not None:
            payload["error"] = self.error
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, wall={self.wall_seconds * 1000:.2f}ms,"
            f" children={len(self.children)})"
        )


class _NoopSpan:
    """The shared disabled-path span: enter/exit do nothing.

    One instance (:data:`NOOP_SPAN`) serves every disabled or sampled-out
    ``obs.span`` call, so the off switch costs a flag check and nothing
    else.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def tag(self, **tags: Any) -> "_NoopSpan":
        return self


#: The singleton returned whenever a span is not being recorded.
NOOP_SPAN = _NoopSpan()


class _SampledOutSpan:
    """A root span the sampler skipped: suppresses its whole subtree.

    Unlike :data:`NOOP_SPAN` it must track scope, so that spans opened
    underneath it know they belong to a discarded root rather than
    starting new roots of their own.
    """

    __slots__ = ("_registry",)

    def __init__(self, registry: "Registry") -> None:
        self._registry = registry

    def tag(self, **tags: Any) -> "_SampledOutSpan":
        return self

    def __enter__(self) -> "_SampledOutSpan":
        local = self._registry._local
        local.suppress = getattr(local, "suppress", 0) + 1
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._registry._local.suppress -= 1


class _Span:
    """A live span: context manager that records into its registry."""

    __slots__ = ("_registry", "record", "_wall0", "_cpu0")

    def __init__(self, registry: "Registry", name: str, tags: Dict[str, Any]):
        self._registry = registry
        self.record = SpanRecord(name, tags)
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def tag(self, **tags: Any) -> "_Span":
        """Attach tags after entry (e.g. results known only at the end)."""
        self.record.tags.update(tags)
        return self

    def __enter__(self) -> "_Span":
        stack = self._registry._stack()
        stack.append(self.record)
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        record = self.record
        record.wall_seconds = time.perf_counter() - self._wall0
        record.cpu_seconds = time.process_time() - self._cpu0
        if exc_type is not None:
            record.error = exc_type.__name__
        registry = self._registry
        stack = registry._stack()
        # unwind to this record even if an inner span leaked (an exception
        # escaping between enter/exit of a child); robustness over purity
        while stack and stack[-1] is not record:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(record)
        else:
            registry._finish_root(record)


class Registry:
    """A process-local collection point for spans, counters, and gauges.

    ``enabled`` gates everything; ``sample_every=N`` records only every
    Nth *root* span (nested spans follow their root's fate), which keeps
    per-request profiling affordable under heavy traffic.  Sinks receive
    each completed root span tree as a dict event, plus counter/gauge
    snapshots on :meth:`flush`.
    """

    def __init__(
        self,
        enabled: bool = False,
        sample_every: int = 1,
        max_roots: int = DEFAULT_MAX_ROOTS,
    ) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        if max_roots < 1:
            raise ValueError(f"max_roots must be >= 1, got {max_roots}")
        self.enabled = enabled
        self.sample_every = sample_every
        self.max_roots = max_roots
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: List[SpanRecord] = []
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._sinks: List[Any] = []
        self._root_seq = 0  # sampling decisions are deterministic

    # -- span plumbing ----------------------------------------------------

    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags: Any):
        """A context manager timing ``name``; no-op when disabled.

        Nested calls build a tree: a span entered while another is open
        becomes its child.  Tags are arbitrary JSON-ready key/values
        (exam ids, cohort sizes, engine names).
        """
        if not self.enabled:
            return NOOP_SPAN
        if getattr(self._local, "suppress", 0):
            return NOOP_SPAN  # inside a sampled-out root's subtree
        if self.sample_every > 1 and not self._stack():
            self._root_seq += 1
            if (self._root_seq - 1) % self.sample_every:
                return _SampledOutSpan(self)
        return _Span(self, name, tags)

    def _finish_root(self, record: SpanRecord) -> None:
        with self._lock:
            self._roots.append(record)
            if len(self._roots) > self.max_roots:
                del self._roots[: len(self._roots) - self.max_roots]
        event = record.to_dict()
        for sink in list(self._sinks):
            sink.emit(event)

    # -- counters & gauges ------------------------------------------------

    def count(self, name: str, value: float = 1, **tags: Any) -> None:
        """Add ``value`` to a monotonic counter; no-op when disabled.

        Tags become part of the series key (``name{k=v,...}``), so e.g.
        per-exam counts stay separable without a label index.
        """
        if not self.enabled:
            return
        key = _series_key(name, tags)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **tags: Any) -> None:
        """Set a gauge to its latest value; no-op when disabled."""
        if not self.enabled:
            return
        key = _series_key(name, tags)
        with self._lock:
            self._gauges[key] = value

    # -- sinks ------------------------------------------------------------

    def add_sink(self, sink: Any) -> None:
        """Attach a sink (anything with ``emit(event: dict)``)."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> bool:
        """Detach a sink; returns whether it was attached."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            return False
        return True

    @property
    def sinks(self) -> List[Any]:
        """The attached sinks (snapshot copy)."""
        return list(self._sinks)

    def flush(self) -> None:
        """Push counter/gauge snapshots to every sink, then flush them."""
        snapshot = self.snapshot()
        events = []
        if snapshot["counters"]:
            events.append(
                {"type": "counters", "values": snapshot["counters"]}
            )
        if snapshot["gauges"]:
            events.append({"type": "gauges", "values": snapshot["gauges"]})
        for sink in list(self._sinks):
            for event in events:
                sink.emit(event)
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        """Flush, then close every sink that supports it."""
        self.flush()
        for sink in list(self._sinks):
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # -- inspection -------------------------------------------------------

    @property
    def roots(self) -> List[SpanRecord]:
        """Completed root spans, oldest first (snapshot copy)."""
        with self._lock:
            return list(self._roots)

    def counters(self) -> Dict[str, float]:
        """Current counter values (snapshot copy)."""
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        """Current gauge values (snapshot copy)."""
        with self._lock:
            return dict(self._gauges)

    def counter(self, name: str, **tags: Any) -> float:
        """One counter's current value (0 when never incremented)."""
        with self._lock:
            return self._counters.get(_series_key(name, tags), 0)

    def snapshot(self) -> Dict[str, Any]:
        """Counters, gauges, and span roots as one JSON-ready dict."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "spans": [root.to_dict() for root in self._roots],
            }

    def reset(self) -> None:
        """Clear all recorded state (sinks stay attached)."""
        with self._lock:
            self._roots.clear()
            self._counters.clear()
            self._gauges.clear()
            self._root_seq = 0

    def timed(self, name: str, **tags: Any) -> Callable:
        """Decorator form of :meth:`span` for whole functions."""

        def wrap(fn: Callable) -> Callable:
            def wrapper(*args: Any, **kwargs: Any):
                with self.span(name, **tags):
                    return fn(*args, **kwargs)

            wrapper.__name__ = getattr(fn, "__name__", "wrapped")
            wrapper.__doc__ = fn.__doc__
            return wrapper

        return wrap


def _series_key(name: str, tags: Dict[str, Any]) -> str:
    if not tags:
        return name
    inner = ",".join(f"{k}={tags[k]}" for k in sorted(tags))
    return f"{name}{{{inner}}}"
