"""Human-readable rendering of a registry's spans and counters.

The CLI's ``--profile`` prints this after any subcommand: an aggregated
span tree (same-named siblings under the same parent path merge into
one line with a call count) followed by the counter and gauge tables.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.registry import Registry, SpanRecord

__all__ = ["render_span_tree", "render_counters", "render_profile"]


class _Node:
    __slots__ = ("wall", "cpu", "calls", "errors", "children")

    def __init__(self) -> None:
        self.wall = 0.0
        self.cpu = 0.0
        self.calls = 0
        self.errors = 0
        self.children: "Dict[str, _Node]" = {}


def _fold(record: SpanRecord, into: Dict[str, "_Node"]) -> None:
    node = into.get(record.name)
    if node is None:
        node = into[record.name] = _Node()
    node.wall += record.wall_seconds
    node.cpu += record.cpu_seconds
    node.calls += 1
    if record.error is not None:
        node.errors += 1
    for child in record.children:
        _fold(child, node.children)


def render_span_tree(registry: Registry) -> str:
    """The aggregated span tree, indented, widest timings first.

    Sibling spans with the same name merge (calls column counts them);
    children sort by total wall time so the hot path reads top-down.
    """
    tree: Dict[str, _Node] = {}
    for root in registry.roots:
        _fold(root, tree)
    if not tree:
        return "span tree: (no spans recorded)"
    lines = [
        f"{'span':<44} {'wall ms':>10} {'cpu ms':>10} {'calls':>7}"
    ]

    def emit(nodes: Dict[str, "_Node"], depth: int) -> None:
        ordered: List[Tuple[str, _Node]] = sorted(
            nodes.items(), key=lambda kv: -kv[1].wall
        )
        for name, node in ordered:
            label = "  " * depth + name
            if node.errors:
                label += f" [!{node.errors}]"
            lines.append(
                f"{label:<44} {node.wall * 1000:>10.2f}"
                f" {node.cpu * 1000:>10.2f} {node.calls:>7}"
            )
            emit(node.children, depth + 1)

    emit(tree, 0)
    return "\n".join(lines)


def render_counters(registry: Registry) -> str:
    """Counter and gauge tables, alphabetical."""
    counters = registry.counters()
    gauges = registry.gauges()
    if not counters and not gauges:
        return "counters: (none recorded)"
    lines: List[str] = []
    if counters:
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<50} {_fmt(counters[name]):>12}")
    if gauges:
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:<50} {_fmt(gauges[name]):>12}")
    return "\n".join(lines)


def render_profile(registry: Registry) -> str:
    """The full ``--profile`` report: span tree + counters + gauges."""
    return render_span_tree(registry) + "\n\n" + render_counters(registry)


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return str(int(value))
