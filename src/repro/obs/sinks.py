"""Pluggable sinks for the observability registry.

A sink is anything with ``emit(event: dict)``; ``flush()`` and
``close()`` are optional.  Events are JSON-ready dicts: one per
completed root span tree (``{"type": "span", ...}``, children nested),
plus counter/gauge snapshots on flush (``{"type": "counters", ...}``).

Two concrete sinks ship here:

* :class:`RingBufferSink` — bounded in-memory retention, the default
  for tests and live inspection (the exam monitor's metrics view);
* :class:`JsonLinesSink` — one JSON object per line to a file, the
  exchange format the CLI's ``--profile=PATH`` writes and CI parses.
"""

from __future__ import annotations

import io
import json
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = ["RingBufferSink", "JsonLinesSink"]


class RingBufferSink:
    """Keep the last ``maxlen`` events in memory."""

    def __init__(self, maxlen: int = 1024) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self._events: "deque[Dict[str, Any]]" = deque(maxlen=maxlen)

    def emit(self, event: Dict[str, Any]) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[Dict[str, Any]]:
        """Retained events, oldest first (snapshot copy)."""
        return list(self._events)

    def of_type(self, kind: str) -> List[Dict[str, Any]]:
        """Retained events of one type (``"span"``, ``"counters"``...)."""
        return [e for e in self._events if e.get("type") == kind]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class JsonLinesSink:
    """Append every event as one JSON line to a file (or writable).

    ``path`` may be a filesystem path (opened lazily, truncated on the
    first write) or any text-mode writable object.  Lines are written
    eagerly so a crashed run still leaves a parseable prefix.
    """

    def __init__(self, path: Union[str, Path, io.TextIOBase]) -> None:
        self._own_handle = not hasattr(path, "write")
        self._path = Path(path) if self._own_handle else None
        self._handle: Optional[Any] = None if self._own_handle else path
        self.lines_written = 0

    def emit(self, event: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self._path, "w", encoding="utf-8")
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self.lines_written += 1

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._own_handle and self._handle is not None:
            self._handle.close()
            self._handle = None


def parse_jsonl(text: str) -> Iterable[Dict[str, Any]]:
    """Parse JSONL sink output back into event dicts (CI smoke helper)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]
