"""``repro.obs`` — zero-dependency observability for the whole system.

Span timers, monotonic counters, gauges, and pluggable sinks, threaded
through every runtime layer (delivery, analysis, simulation, SCORM
export).  Instrumentation is **off by default**: each helper checks one
flag and returns immediately, so the instrumented hot paths cost <5%
even at the 10k x 50 benchmark scale (see ``BENCH_obs.json``).

Usage, module-level (the default process registry)::

    from repro import obs

    obs.enable()                        # or enable(JsonLinesSink(path))
    with obs.span("analyze.columnar", exam_id="mid-1"):
        ...
    obs.count("lms.sittings.submitted")
    print(obs.render())                 # span tree + counter table
    obs.disable()

or with an explicit :class:`Registry` for isolation (tests, servers
running several tenants)::

    reg = obs.Registry(enabled=True)
    with reg.span("sim.shard", index=3):
        ...
    reg.counters()

The CLI exposes the same machinery as ``--profile[=PATH]`` on every
subcommand.  See ``docs/observability.md`` for the model and the sink
protocol.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.registry import NOOP_SPAN, Registry, SpanRecord
from repro.obs.render import render_counters, render_profile, render_span_tree
from repro.obs.sinks import JsonLinesSink, RingBufferSink, parse_jsonl

__all__ = [
    "Registry",
    "SpanRecord",
    "RingBufferSink",
    "JsonLinesSink",
    "parse_jsonl",
    "span",
    "count",
    "gauge",
    "enable",
    "disable",
    "enabled",
    "reset",
    "flush",
    "snapshot",
    "render",
    "render_span_tree",
    "render_counters",
    "render_profile",
    "get_registry",
    "set_registry",
]

#: The process-default registry every module-level helper records into.
_registry = Registry(enabled=False)


def get_registry() -> Registry:
    """The current default registry."""
    return _registry


def set_registry(registry: Registry) -> Registry:
    """Swap the default registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def span(name: str, **tags: Any):
    """Time a region against the default registry (no-op when disabled)."""
    registry = _registry
    if not registry.enabled:
        return NOOP_SPAN
    return registry.span(name, **tags)


def count(name: str, value: float = 1, **tags: Any) -> None:
    """Bump a counter on the default registry (no-op when disabled)."""
    registry = _registry
    if not registry.enabled:
        return
    registry.count(name, value, **tags)


def gauge(name: str, value: float, **tags: Any) -> None:
    """Set a gauge on the default registry (no-op when disabled)."""
    registry = _registry
    if not registry.enabled:
        return
    registry.gauge(name, value, **tags)


def enable(*sinks: Any, sample_every: int = 1) -> Registry:
    """Switch the default registry on, attaching any given sinks."""
    registry = _registry
    registry.enabled = True
    registry.sample_every = sample_every
    for sink in sinks:
        registry.add_sink(sink)
    return registry


def disable() -> None:
    """Switch the default registry off (recorded state is kept)."""
    _registry.enabled = False


def enabled() -> bool:
    """Whether the default registry is recording."""
    return _registry.enabled


def reset() -> None:
    """Clear the default registry's spans, counters, and gauges."""
    _registry.reset()


def flush() -> None:
    """Flush the default registry's sinks (counter snapshots included)."""
    _registry.flush()


def snapshot() -> Dict[str, Any]:
    """Counters, gauges, and span trees of the default registry."""
    return _registry.snapshot()


def render(registry: Optional[Registry] = None) -> str:
    """The human-readable profile (span tree + counters) of a registry."""
    return render_profile(registry if registry is not None else _registry)
