"""The HTTP application: :class:`ExamServer` over ``http.server``.

A dependency-free threaded REST service wrapping one
:class:`~repro.lms.lms.Lms` (which is itself concurrency-safe — every
public method takes its coarse lock).  The app layer adds what the
in-process API doesn't have:

* **routing + JSON** via :mod:`repro.server.router` /
  :mod:`repro.server.serialize`, with library errors mapped to 4xx JSON
  bodies (:mod:`repro.server.errors`) — a stack trace never reaches the
  wire;
* **backpressure** — a bounded in-flight budget; when ``max_in_flight``
  requests are already being served, new ones are rejected immediately
  with ``503`` + ``Retry-After`` instead of queueing without bound;
* **observability** — every request runs under a per-route
  :mod:`repro.obs` span (``http.<route>``) with request / error /
  rejected counters and an in-flight gauge, rendered by ``/metrics``;
* **graceful shutdown** — :meth:`ExamServer.shutdown` stops accepting,
  then drains requests already in flight before returning;
* **snapshotting** — optional periodic (and on-demand, via
  ``POST /admin/snapshot``) atomic :func:`~repro.lms.persistence.
  save_lms` of the LMS state;
* **durability** — with ``wal_dir`` set, every LMS mutation is appended
  to a :class:`~repro.store.journal.Journal` before its response is
  acknowledged; boot recovers the pre-crash state from the newest
  checkpoint plus the WAL suffix (:func:`repro.store.recover`), a
  background :class:`~repro.store.checkpoint.Checkpointer` (and
  ``POST /admin/checkpoint``) compacts the log, and shutdown takes a
  final checkpoint before closing the journal.

Usage::

    server = ExamServer(lms)           # port=0 → ephemeral port
    server.start()                     # background accept loop
    print(server.url)                  # http://127.0.0.1:<port>
    ...
    server.shutdown()                  # drain + close

or ``server.serve_forever()`` to own the calling thread (the CLI's
``mine-assess serve`` does this).
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple

from repro import obs
from repro.lms.lms import Lms
from repro.server.errors import ApiError, api_error_from_exception
from repro.server.handlers import ServerContext, build_router
from repro.server.serialize import parse_json_body

__all__ = ["ExamServer"]

#: requests concurrently in service before 503s start (default)
DEFAULT_MAX_IN_FLIGHT = 64
#: what a 503 tells the client to wait before retrying (seconds)
RETRY_AFTER_SECONDS = 1


class _InFlightBudget:
    """A bounded in-flight request counter with an idle-drain wait."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {limit}")
        self.limit = limit
        self._count = 0
        self._condition = threading.Condition()

    def try_acquire(self) -> bool:
        """Claim a slot; False when the budget is exhausted."""
        with self._condition:
            if self._count >= self.limit:
                return False
            self._count += 1
            return True

    def release(self) -> None:
        with self._condition:
            self._count -= 1
            self._condition.notify_all()

    def current(self) -> int:
        """Requests being served right now."""
        with self._condition:
            return self._count

    def wait_idle(self, timeout: Optional[float]) -> bool:
        """Block until nothing is in flight; False on timeout."""
        with self._condition:
            return self._condition.wait_for(
                lambda: self._count == 0, timeout=timeout
            )


class _RequestHandler(BaseHTTPRequestHandler):
    """Glue between ``http.server`` and the router/handler layer."""

    protocol_version = "HTTP/1.1"  # keep-alive: one connection, many requests
    server_version = "mine-assess"
    sys_version = ""
    # headers and body go out as separate writes; without TCP_NODELAY,
    # Nagle holds the second one for the client's delayed ACK (~40 ms
    # per request)
    disable_nagle_algorithm = True
    #: idle keep-alive connections are dropped after this many seconds,
    #: so a drained shutdown is never held hostage by a quiet client
    timeout = 10

    # the ExamServer injects itself here via the HTTPServer instance
    @property
    def app(self) -> "ExamServer":
        return self.server.app  # type: ignore[attr-defined]

    def handle_one_request(self) -> None:  # pragma: no cover - socket glue
        try:
            super().handle_one_request()
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            self.close_connection = True

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_PUT(self) -> None:
        self._dispatch("PUT")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        """Per-request stderr chatter is replaced by obs counters."""

    def _read_body(self) -> bytes:
        self._body_consumed = True
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return b""
        if length > self.app.max_body_bytes:
            # refusing to read it leaves the bytes on the socket, so
            # this connection cannot serve another request
            self.close_connection = True
            raise ApiError(
                413,
                "payload_too_large",
                f"request body of {length} bytes exceeds the "
                f"{self.app.max_body_bytes}-byte limit",
            )
        return self.rfile.read(length)

    def _drain_body(self) -> None:
        """Consume an unread request body before an early rejection.

        A response sent while the body still sits in the socket buffer
        poisons the keep-alive connection: the stale bytes parse as the
        next request line.  Bodies too large to swallow force a close
        instead.
        """
        if getattr(self, "_body_consumed", False):
            return
        self._body_consumed = True
        length = int(self.headers.get("Content-Length") or 0)
        if 0 < length <= self.app.max_body_bytes:
            self.rfile.read(length)
        elif length > self.app.max_body_bytes:
            self.close_connection = True

    def _send_json(
        self,
        status: int,
        payload: object,
        retry_after: Optional[int] = None,
    ) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, method: str) -> None:
        app = self.app
        registry = app.context.registry
        # one handler instance serves every request of a keep-alive
        # connection: the drain bookkeeping is per-request state
        self._body_consumed = False
        if not app.in_flight.try_acquire():
            # saturated: shed load *now* rather than queueing unboundedly
            registry.count("server.rejected")
            self._drain_body()
            self._send_json(
                503,
                ApiError(
                    503,
                    "overloaded",
                    f"server is at its in-flight limit "
                    f"({app.in_flight.limit}); retry shortly",
                ).body(),
                retry_after=RETRY_AFTER_SECONDS,
            )
            return
        try:
            registry.gauge("server.in_flight", app.in_flight.current())
            self._handle_routed(method, registry)
        finally:
            app.in_flight.release()

    def _handle_routed(self, method: str, registry) -> None:
        path, _, query = self.path.partition("?")
        route_name = "unrouted"
        try:
            match = self.app.router.resolve(method, path)
            route_name = match.route.name
            raw_body = self._read_body()
            body = parse_json_body(raw_body)
            cluster = self.app.cluster
            if cluster is not None:
                owner = cluster.owner_for(route_name, match.params, body)
                if owner is not None and owner != cluster.shard:
                    # this learner's state lives on another shard:
                    # proxy the request verbatim to its owner
                    status, payload, retry_after = cluster.forward(
                        owner, method, self.path, raw_body
                    )
                    registry.count("server.proxied", route=route_name)
                    registry.count("server.requests", route=route_name)
                    self._send_json(status, payload, retry_after)
                    return
            with registry.span(f"http.{route_name}", method=method):
                result = match.route.handler(
                    self.app.context, match.params, body, query
                )
            status, payload = _normalize_result(result)
            registry.count("server.requests", route=route_name)
            self._send_json(status, payload)
        except Exception as exc:  # noqa: BLE001 - the service boundary
            error = api_error_from_exception(exc)
            if error.status >= 500:
                # internals stay out of the response body; surface them
                # to the operator through the registry instead
                registry.count(
                    "server.internal_errors", type=type(exc).__name__
                )
            registry.count(
                "server.errors", route=route_name, status=error.status
            )
            self._drain_body()  # errors before the body read (404/405)
            self._send_json(error.status, error.body(), error.retry_after)


def _normalize_result(result: object) -> Tuple[int, object]:
    """Handlers may return ``payload`` or ``(status, payload)``."""
    if (
        isinstance(result, tuple)
        and len(result) == 2
        and isinstance(result[0], int)
    ):
        return result[0], result[1]
    return 200, result


class _Http(ThreadingHTTPServer):
    """ThreadingHTTPServer tuned for many short keep-alive requests."""

    daemon_threads = True
    block_on_close = False  # drain is handled by the in-flight budget
    # socketserver's default backlog of 5 overflows when a burst of
    # clients connects at once (every loadgen thread's first request);
    # an overflowed SYN is silently dropped and costs the client a full
    # ~1 s retransmission timeout
    request_queue_size = 128

    def __init__(
        self, address, app: "ExamServer", reuse_port: bool = False
    ) -> None:
        self._reuse_port = reuse_port
        super().__init__(address, _RequestHandler)
        self.app = app

    def server_bind(self) -> None:
        if self._reuse_port:
            # sharded tier: several worker processes share one front
            # port; the kernel load-balances accepted connections
            self.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
        super().server_bind()


class ExamServer:
    """The exam-delivery and analysis service over one LMS."""

    def __init__(
        self,
        lms: Optional[Lms] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        snapshot_path: Optional["str | Path"] = None,
        snapshot_interval_seconds: Optional[float] = None,
        registry: Optional["obs.Registry"] = None,
        max_body_bytes: int = 8 * 1024 * 1024,
        sample_every: int = 1,
        wal_dir: Optional["str | Path"] = None,
        fsync: str = "interval",
        wal_format: int = 2,
        group_commit: bool = False,
        checkpoint_interval_seconds: Optional[float] = None,
        max_batch_answers: int = 500,
        cluster: Optional[object] = None,
        reuse_port: bool = False,
        readmodel: bool = False,
    ) -> None:
        if registry is None:
            # the server records even when global profiling is off:
            # /metrics must always have data
            registry = obs.Registry(enabled=True, sample_every=sample_every)
        self.wal_dir = Path(wal_dir) if wal_dir is not None else None
        self.journal = None
        self.checkpointer = None
        #: the boot-time :class:`~repro.store.recovery.RecoveryReport`
        #: (None when the server was handed a live LMS or has no WAL)
        self.recovery_report = None
        if self.wal_dir is not None:
            from repro.store import Checkpointer, Journal, recover

            if lms is None:
                # crashed-or-clean restart: rebuild from checkpoint + WAL
                self.recovery_report = recover(self.wal_dir)
                lms = self.recovery_report.lms
            # Journal.open also repairs the torn tail recover() tolerated
            self.journal = Journal.open(
                self.wal_dir,
                fsync=fsync,
                format=wal_format,
                group_commit=group_commit,
                registry=registry,
            )
            lms.attach_journal(self.journal)
            self.checkpointer = Checkpointer(lms, self.journal)
        #: the analytics follower behind /admin/analytics (``--readmodel``)
        self.readmodel = None
        if readmodel:
            if self.journal is None:
                raise ValueError(
                    "readmodel=True needs a WAL to tail; pass wal_dir"
                )
            from repro.readmodel import ReadModelService

            self.readmodel = ReadModelService(
                self.wal_dir, journal=self.journal
            )
        self.lms = lms if lms is not None else Lms()
        self.router = build_router()
        self.in_flight = _InFlightBudget(max_in_flight)
        self.max_body_bytes = max_body_bytes
        #: the worker's :class:`~repro.cluster.context.ClusterContext`
        #: in a sharded deployment; None for the classic single process
        self.cluster = cluster
        self.context = ServerContext(
            lms=self.lms,
            registry=registry,
            max_batch_answers=max_batch_answers,
            cluster=cluster,
        )
        self.context.in_flight = self.in_flight.current
        #: where ``mine-assess calibrate`` drops parameter snapshots for
        #: this store (scanned at boot and on demand, see
        #: :meth:`reload_calibration`)
        self.calibration_dir = (
            self.wal_dir / "calibration" if self.wal_dir is not None else None
        )
        if self.calibration_dir is not None:
            self.context.calibration = self.reload_calibration
            self.reload_calibration()
        self.snapshot_path = (
            Path(snapshot_path) if snapshot_path is not None else None
        )
        self.snapshot_interval_seconds = snapshot_interval_seconds
        self.checkpoint_interval_seconds = checkpoint_interval_seconds
        if self.snapshot_path is not None:
            self.context.snapshot = self.snapshot_now
        if self.checkpointer is not None:
            self.context.checkpoint = self.checkpoint_now
            self.context.store_info = self.store_info
        if self.readmodel is not None:
            self.context.readmodel = self.readmodel
        self._httpd = _Http((host, port), self, reuse_port=reuse_port)
        self._extra_httpds: list = []
        self._extra_threads: list = []
        self._thread: Optional[threading.Thread] = None
        self._snapshot_stop = threading.Event()
        self._snapshot_thread: Optional[threading.Thread] = None
        self._checkpoint_thread: Optional[threading.Thread] = None
        self._shut_down = False

    # -- addresses -----------------------------------------------------------

    @property
    def host(self) -> str:
        """The bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The service's base URL."""
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------

    def add_front_listener(self, port: int, host: Optional[str] = None) -> None:
        """Listen on an additional (``SO_REUSEPORT``) port for the same app.

        The sharded tier calls this with the cluster's shared front
        port: every worker binds it, the kernel spreads incoming
        connections across them, and requests that land on the wrong
        worker are proxied by the cluster hook in the dispatch path.
        Must be called before :meth:`start` / :meth:`serve_forever`.
        """
        if self._thread is not None:
            raise RuntimeError("server already started")
        front = _Http(
            (host if host is not None else self.host, port),
            self,
            reuse_port=True,
        )
        self._extra_httpds.append(front)

    def _start_extra_listeners(self) -> None:
        for index, httpd in enumerate(self._extra_httpds):
            thread = threading.Thread(
                target=httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name=f"mine-assess-front-{index}",
                daemon=True,
            )
            thread.start()
            self._extra_threads.append(thread)

    def start(self) -> "ExamServer":
        """Serve in a background thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="mine-assess-server",
            daemon=True,
        )
        self._thread.start()
        self._start_extra_listeners()
        self._start_snapshotting()
        self._start_checkpointing()
        if self.readmodel is not None:
            self.readmodel.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path); blocks."""
        self._start_extra_listeners()
        self._start_snapshotting()
        self._start_checkpointing()
        if self.readmodel is not None:
            self.readmodel.start()
        try:
            self._httpd.serve_forever(poll_interval=0.05)
        finally:
            self._stop_snapshotting()
            self._stop_checkpointing()
            if self.readmodel is not None:
                self.readmodel.close()

    def shutdown(self, drain_timeout: Optional[float] = 10.0) -> bool:
        """Stop accepting, drain in-flight requests, release the socket.

        Returns True when the drain completed within ``drain_timeout``
        (False means requests were still running when time ran out; the
        worker threads are daemons and cannot outlive the process).  A
        final snapshot is taken when snapshotting is configured.
        """
        if self._shut_down:
            return True
        self._shut_down = True
        self._httpd.shutdown()  # stops the accept loop, new conns refused
        for httpd in self._extra_httpds:
            httpd.shutdown()
        drained = self.in_flight.wait_idle(drain_timeout)
        self._stop_snapshotting()
        self._stop_checkpointing()
        if self.snapshot_path is not None:
            self.snapshot_now()
        if self.checkpointer is not None:
            # a clean exit leaves a checkpoint covering the whole log,
            # so the next boot replays (almost) nothing
            self.checkpoint_now()
        if self.readmodel is not None:
            self.readmodel.close()
        if self.journal is not None:
            self.journal.close()
        self._httpd.server_close()
        for httpd in self._extra_httpds:
            httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        for thread in self._extra_threads:
            thread.join(timeout=5.0)
        return drained

    # -- snapshotting ---------------------------------------------------------

    def snapshot_now(self) -> Path:
        """Write an atomic LMS snapshot immediately; returns the path."""
        if self.snapshot_path is None:
            raise RuntimeError("no snapshot_path configured")
        from repro.lms.persistence import save_lms

        save_lms(self.lms, self.snapshot_path)
        self.context.registry.count("server.snapshots")
        return self.snapshot_path

    def _start_snapshotting(self) -> None:
        if (
            self.snapshot_path is None
            or self.snapshot_interval_seconds is None
            or self._snapshot_thread is not None
        ):
            return
        interval = float(self.snapshot_interval_seconds)

        def loop() -> None:
            while not self._snapshot_stop.wait(interval):
                try:
                    self.snapshot_now()
                except Exception:  # noqa: BLE001 - keep the beat going
                    self.context.registry.count("server.snapshot_errors")

        self._snapshot_thread = threading.Thread(
            target=loop, name="mine-assess-snapshots", daemon=True
        )
        self._snapshot_thread.start()

    def _stop_snapshotting(self) -> None:
        self._snapshot_stop.set()
        if self._snapshot_thread is not None:
            self._snapshot_thread.join(timeout=5.0)
            self._snapshot_thread = None

    # -- durability ------------------------------------------------------------

    def checkpoint_now(self):
        """Run one checkpoint pass (snapshot + compaction) immediately."""
        if self.checkpointer is None:
            raise RuntimeError("no wal_dir configured")
        if self.readmodel is not None:
            # sync the follower past everything this checkpoint may
            # retire *before* compaction runs: retire_covered never
            # removes the active segment, so a caught-up follower can
            # never be truncated by the pass below
            self.readmodel.sync()
        result = self.checkpointer.checkpoint()
        if self.readmodel is not None:
            # persist the fold at (at least) the covered LSN, so a
            # restarted follower resumes above the retired history
            self.readmodel.checkpoint()
        self.context.registry.count("server.checkpoints")
        return result

    def reload_calibration(self) -> dict:
        """Pick up newer calibration snapshots from the store directory.

        Scans ``<wal_dir>/calibration`` for ``mine-assess calibrate``
        output and applies, per offered adaptive exam, the newest
        snapshot whose version is above the LMS's current one (so a
        restart — which replays journaled ``calibrate`` events — never
        re-applies a swap it already owns).  Exams with open adaptive
        sittings refuse the hot-swap (:class:`~repro.core.errors.
        SessionStateError`); they are reported as skipped and retried on
        the next call.  Also the handler behind
        ``POST /admin/calibration/reload``.
        """
        if self.calibration_dir is None:
            raise RuntimeError("no wal_dir configured")
        from repro.adaptive.online import latest_calibration_snapshot
        from repro.core.errors import SessionStateError

        applied, skipped = [], []
        for exam_id in self.lms.offered_exams():
            if self.lms.exam(exam_id).adaptive is None:
                continue
            snapshot = latest_calibration_snapshot(
                self.calibration_dir, exam_id
            )
            if snapshot is None:
                continue
            version, pool = snapshot
            if version <= self.lms.calibration_version(exam_id):
                continue
            try:
                self.lms.apply_calibration(exam_id, version, pool)
            except SessionStateError as exc:
                skipped.append(
                    {"exam_id": exam_id, "version": version,
                     "reason": str(exc)}
                )
                continue
            applied.append({"exam_id": exam_id, "version": version})
        self.context.registry.count("server.calibration_reloads")
        return {
            "calibration_dir": str(self.calibration_dir),
            "applied": applied,
            "skipped": skipped,
        }

    def store_info(self) -> dict:
        """Journal and checkpoint stats for the ``/metrics`` payload."""
        journal = self.journal
        return {
            "wal_dir": str(self.wal_dir),
            "fsync_policy": journal.fsync_policy,
            "format": journal.format,
            "group_commit": journal.group_commit,
            "last_lsn": journal.last_lsn,
            "durable_lsn": journal.durable_lsn,
            "records_appended": journal.records_appended,
            "bytes_appended": journal.bytes_appended,
            "fsyncs": journal.fsyncs,
            "batch_appends": journal.batch_appends,
            "group_commits": journal.group_commits,
            "rotations": journal.rotations,
            "segments": len(journal.segments()),
            "checkpoints_taken": self.checkpointer.checkpoints_taken,
            "last_covered_lsn": self.checkpointer.last_covered_lsn,
        }

    def _start_checkpointing(self) -> None:
        if (
            self.checkpointer is None
            or self.checkpoint_interval_seconds is None
            or self._checkpoint_thread is not None
        ):
            return
        interval = float(self.checkpoint_interval_seconds)

        def loop() -> None:
            # shares the snapshot stop event: both beats end at shutdown
            while not self._snapshot_stop.wait(interval):
                try:
                    # the quiet-log skip of Checkpointer.maybe_checkpoint,
                    # but through checkpoint_now so the read-model
                    # follower is synced before compaction retires
                    # anything it has not folded yet
                    if (
                        self.journal.last_lsn
                        > self.checkpointer.last_covered_lsn
                    ):
                        self.checkpoint_now()
                except Exception:  # noqa: BLE001 - keep the beat going
                    self.context.registry.count("server.checkpoint_errors")

        self._checkpoint_thread = threading.Thread(
            target=loop, name="mine-assess-checkpoints", daemon=True
        )
        self._checkpoint_thread.start()

    def _stop_checkpointing(self) -> None:
        self._snapshot_stop.set()
        if self._checkpoint_thread is not None:
            self._checkpoint_thread.join(timeout=5.0)
            self._checkpoint_thread = None

    # -- context-manager sugar ------------------------------------------------

    def __enter__(self) -> "ExamServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
