"""A tiny method + path-template router for :mod:`repro.server`.

Routes are declared as ``METHOD /path/{param}/...`` templates.  Matching
extracts the ``{param}`` segments as strings and hands them to the
handler; an unknown path 404s, a known path with the wrong method 405s
(with an ``Allow`` set in the error message).  No regexes in route
declarations, no dependencies — the template is split into literal and
parameter segments once at registration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.server.errors import ApiError

__all__ = ["Route", "RouteMatch", "Router"]

#: handler(ctx, params, body, query) -> (status, payload) | payload
Handler = Callable[..., object]


def _split(path: str) -> List[str]:
    """Path -> non-empty segments ('/exams/e1/' -> ['exams', 'e1'])."""
    return [segment for segment in path.split("/") if segment]


@dataclass(frozen=True)
class Route:
    """One registered route: a method, a parsed template, its handler."""

    method: str
    template: str
    segments: Tuple[str, ...]  # literal text or '{param}' markers
    handler: Handler
    name: str

    def match(self, parts: List[str]) -> Optional[Dict[str, str]]:
        """Path params when ``parts`` fits this template, else None."""
        if len(parts) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for segment, part in zip(self.segments, parts):
            if segment.startswith("{") and segment.endswith("}"):
                params[segment[1:-1]] = part
            elif segment != part:
                return None
        return params


@dataclass(frozen=True)
class RouteMatch:
    """A resolved request: the route plus its extracted path params."""

    route: Route
    params: Dict[str, str]


class Router:
    """Holds the route table and resolves (method, path) pairs."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(
        self,
        method: str,
        template: str,
        handler: Handler,
        name: Optional[str] = None,
    ) -> Route:
        """Register a route; ``name`` defaults to the handler's name."""
        route = Route(
            method=method.upper(),
            template=template,
            segments=tuple(_split(template)),
            handler=handler,
            name=name or handler.__name__.lstrip("_"),
        )
        self._routes.append(route)
        return route

    def routes(self) -> List[Route]:
        """Every registered route, in registration order."""
        return list(self._routes)

    def resolve(self, method: str, path: str) -> RouteMatch:
        """The matching route, or ApiError 404/405."""
        parts = _split(path)
        allowed: List[str] = []
        for route in self._routes:
            params = route.match(parts)
            if params is None:
                continue
            if route.method == method.upper():
                return RouteMatch(route=route, params=params)
            allowed.append(route.method)
        if allowed:
            raise ApiError(
                405,
                "method_not_allowed",
                f"{method} not allowed on {path}; "
                f"allowed: {', '.join(sorted(set(allowed)))}",
            )
        raise ApiError(404, "not_found", f"no route for {method} {path}")
