"""Typed request parsing and response serialization for the service.

Request side: :func:`parse_json_body` plus the :class:`BodySpec` field
validator — handlers declare the fields they accept with expected types
and get one 400 ``bad_request`` shape for every malformed payload
(invalid JSON, non-object bodies, missing/mistyped/unknown fields).

Response side: plain functions turning the library's dataclasses
(:class:`~repro.core.question_analysis.CohortAnalysis`,
:class:`~repro.delivery.scoring.GradedSitting`, …) into JSON-compatible
dicts.  :func:`analysis_to_dict` is intentionally field-complete and
deterministic — the loadgen differential test compares the server's
rendering of ``live_analysis`` against a local ``analyze_cohort`` run
through this same function, so any drift between the two fails CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Type

from repro.core.question_analysis import CohortAnalysis
from repro.delivery.scoring import GradedSitting
from repro.items.responses import ScoredResponse
from repro.lms.learners import Learner
from repro.server.errors import ApiError

__all__ = [
    "parse_json_body",
    "BodySpec",
    "analysis_to_dict",
    "graded_to_dict",
    "scored_to_dict",
    "learner_to_dict",
]


def parse_json_body(raw: bytes) -> Dict[str, object]:
    """Decode a request body as a JSON object; ApiError 400 otherwise."""
    if not raw:
        return {}
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ApiError(
            400, "bad_request", f"request body is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ApiError(
            400,
            "bad_request",
            f"request body must be a JSON object, "
            f"got {type(payload).__name__}",
        )
    return payload


@dataclass(frozen=True)
class BodySpec:
    """Declares a handler's accepted JSON fields with expected types.

    ``required``/``optional`` map field name -> expected python type
    (``object`` accepts anything, e.g. free-form item responses).
    Unknown fields are rejected unless ``allow_extra`` — typos like
    ``"learner"`` for ``"learner_id"`` fail loudly instead of silently
    doing nothing.

    ``elements`` maps a list-typed field name to the :class:`BodySpec`
    each of its elements must satisfy.  Violations inside an element —
    including a non-object element, which used to escape as an opaque
    500 when the handler indexed into it — surface as the same 400
    ``bad_request`` shape with a JSON pointer locating the offender
    (e.g. ``/answers/3/item_id``).
    """

    required: Dict[str, Type] = field(default_factory=dict)
    optional: Dict[str, Type] = field(default_factory=dict)
    allow_extra: bool = False
    elements: Dict[str, "BodySpec"] = field(default_factory=dict)

    def validate(
        self, body: Dict[str, object], pointer: str = ""
    ) -> Dict[str, object]:
        """The validated body; raises ApiError 400 on any violation.

        ``pointer`` is the JSON pointer of ``body`` within the request
        ("" at the top level); it prefixes the paths in error messages
        when validating nested elements.
        """
        at = f" at {pointer}" if pointer else ""
        for name, expected in self.required.items():
            if name not in body:
                raise ApiError(
                    400,
                    "bad_request",
                    f"missing required field {name!r}{at}",
                )
        if not self.allow_extra:
            known = set(self.required) | set(self.optional)
            extra = sorted(set(body) - known)
            if extra:
                raise ApiError(
                    400,
                    "bad_request",
                    f"unknown field(s){at}: {', '.join(extra)}",
                )
        for name, expected in {**self.required, **self.optional}.items():
            if name not in body or expected is object:
                continue
            value = body[name]
            if expected is float and isinstance(value, int):
                continue  # JSON has one number type
            if not isinstance(value, expected) or (
                expected is not bool and isinstance(value, bool)
            ):
                raise ApiError(
                    400,
                    "bad_request",
                    f"field {name!r}{at} must be {expected.__name__}, "
                    f"got {type(value).__name__}",
                )
        for name, spec in self.elements.items():
            value = body.get(name)
            if not isinstance(value, list):
                continue  # absence/type already reported above
            for index, element in enumerate(value):
                child = f"{pointer}/{name}/{index}"
                if not isinstance(element, dict):
                    raise ApiError(
                        400,
                        "bad_request",
                        f"element at {child} must be an object, "
                        f"got {type(element).__name__}",
                    )
                spec.validate(element, pointer=child)
        return body


# -- response serialization --------------------------------------------------


def analysis_to_dict(cohort: CohortAnalysis) -> Dict[str, object]:
    """A :class:`CohortAnalysis` as a JSON-compatible dict."""
    questions: List[Dict[str, object]] = []
    for question in cohort.questions:
        questions.append(
            {
                "number": question.number,
                "p_high": question.p_high,
                "p_low": question.p_low,
                "difficulty": question.difficulty,
                "discrimination": question.discrimination,
                "signal": question.signal.value,
                "rules_fired": list(question.rules.fired_rules),
                "statuses": [
                    str(status) for status in question.rules.statuses
                ],
                "advice": question.advice.render(),
                "distraction": (
                    question.distraction.describe()
                    if question.distraction is not None
                    else None
                ),
                "option_matrix": {
                    "options": list(question.matrix.options),
                    "high": dict(question.matrix.high),
                    "low": dict(question.matrix.low),
                    "correct": question.matrix.correct,
                },
            }
        )
    return {
        "questions": questions,
        "high_group": list(cohort.high_group),
        "low_group": list(cohort.low_group),
        "scores": dict(cohort.scores),
    }


def scored_to_dict(score: ScoredResponse) -> Dict[str, object]:
    """A :class:`ScoredResponse` as a JSON-compatible dict."""
    return {
        "points": score.points,
        "max_points": score.max_points,
        "correct": score.correct,
        "needs_manual_grading": score.needs_manual_grading,
        "selected": score.selected,
    }


def graded_to_dict(graded: GradedSitting) -> Dict[str, object]:
    """A :class:`GradedSitting` as a JSON-compatible dict."""
    return {
        "exam_id": graded.exam_id,
        "learner_id": graded.learner_id,
        "total_points": graded.total_points,
        "max_points": graded.max_points,
        "percent": graded.percent,
        "duration_seconds": graded.duration_seconds,
        "answer_times": list(graded.answer_times),
        "pending_items": graded.pending_items(),
        "scores": {
            item_id: scored_to_dict(score)
            for item_id, score in graded.scores.items()
        },
    }


def learner_to_dict(learner: Learner) -> Dict[str, object]:
    """A :class:`Learner` record as a JSON-compatible dict."""
    return {
        "learner_id": learner.learner_id,
        "name": learner.name,
        "email": learner.email,
        "course_status": dict(learner.course_status),
        "course_scores": dict(learner.course_scores),
    }
