"""Load generation: seeded simulated cohorts over the HTTP API.

:func:`run_loadgen` is the client side of the serving story: it takes
the same learner population and 3PL response model the in-process
simulation uses (:mod:`repro.sim`), and drives every simulated learner
through the *wire* protocol — enroll, start, answer item by item,
submit — from a pool of worker threads with keep-alive connections.
The run is fully seeded: the selections each learner posts are
reproducible, and they are returned in the report so callers can prove
the server-side ``live_analysis`` equals an in-process
``analyze_cohort`` over the exact same responses (the differential
test in ``tests/server/test_loadgen_e2e.py`` does exactly that).

Timing: every request's wall latency is recorded per route;
:class:`LoadgenReport` summarizes throughput and p50/p90/p99 latency —
the numbers ``BENCH_server.json`` tracks.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.bank.exambank import exam_to_record
from repro.core.errors import AssessmentError
from repro.core.question_analysis import ExamineeResponses
from repro.exams.exam import Exam
from repro.sim.learner_model import (
    ItemParameters,
    SimulatedLearner,
    sample_selection,
)
from repro.sim.population import make_population
from repro.sim.workloads import (
    classroom_adaptive_exam,
    classroom_exam,
    classroom_parameters,
)

__all__ = [
    "LoadgenError",
    "LoadgenReport",
    "RouteTimings",
    "discover_topology",
    "run_loadgen",
]

#: ceiling on one 503 backoff sleep (seconds): the Retry-After hint is
#: honoured up to this bound so a bench run is never hostage to a
#: pessimistic server hint
MAX_RETRY_SLEEP = 0.5


class LoadgenError(AssessmentError):
    """The load generator hit an unexpected server response."""


def _backoff_seconds(
    retry_after: Optional[str], rng: random.Random
) -> float:
    """How long to sleep before retrying a 503, with jitter.

    The server's ``Retry-After`` is the ceiling (bounded by
    :data:`MAX_RETRY_SLEEP`); the actual sleep is drawn uniformly from
    the upper three quarters of it, **per worker**.  Without the
    jitter every worker that got shed by a saturated or recovering
    shard wakes on the same tick and stampedes it back down — the
    classic thundering herd; spreading the wakeups lets the shard
    absorb the returning load gradually.
    """
    try:
        hint = float(retry_after) if retry_after else 0.1
    except ValueError:
        hint = 0.1
    ceiling = min(max(hint, 0.02), MAX_RETRY_SLEEP)
    return rng.uniform(ceiling * 0.25, ceiling)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending series (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


@dataclass
class RouteTimings:
    """Latency summary for one route (milliseconds)."""

    count: int
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def of(cls, latencies_seconds: List[float]) -> "RouteTimings":
        ordered = sorted(latencies_seconds)
        to_ms = 1000.0
        return cls(
            count=len(ordered),
            mean_ms=(sum(ordered) / len(ordered)) * to_ms if ordered else 0.0,
            p50_ms=_percentile(ordered, 0.50) * to_ms,
            p90_ms=_percentile(ordered, 0.90) * to_ms,
            p99_ms=_percentile(ordered, 0.99) * to_ms,
            max_ms=ordered[-1] * to_ms if ordered else 0.0,
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p90_ms": round(self.p90_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
        }


@dataclass
class LoadgenReport:
    """What a load-generation run produced and how fast it went."""

    learners: int
    questions: int
    requests: int
    errors: int
    retries_503: int
    duration_seconds: float
    routes: Dict[str, RouteTimings]
    #: answers per batched request (0 = one request per answer)
    batch: int = 0
    #: total answers delivered (across single and batched requests)
    answers_posted: int = 0
    #: the selections every learner posted, in learner order — the raw
    #: material for differential checks against the server's analysis
    responses: List[ExamineeResponses] = field(default_factory=list)
    #: True when the run drove the server-chosen ``next-item`` loop
    adaptive: bool = False
    #: adaptive runs only: the server-chosen item order per learner —
    #: the raw material for the crash-recovery item-order assertion
    item_sequences: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Sustained requests per second over the whole run."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests / self.duration_seconds

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (responses excluded — they are inputs)."""
        return {
            "learners": self.learners,
            "questions": self.questions,
            "requests": self.requests,
            "errors": self.errors,
            "retries_503": self.retries_503,
            "batch": self.batch,
            "adaptive": self.adaptive,
            "answers_posted": self.answers_posted,
            "duration_seconds": round(self.duration_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "routes": {
                name: timings.to_dict()
                for name, timings in sorted(self.routes.items())
            },
        }

    def render(self) -> str:
        """A terminal-friendly summary table."""
        batched = f", batch={self.batch}" if self.batch else ""
        if self.adaptive:
            batched += ", adaptive"
        lines = [
            f"loadgen: {self.learners} learners x {self.questions} "
            f"questions -> {self.requests} requests in "
            f"{self.duration_seconds:.2f}s "
            f"({self.throughput_rps:.0f} req/s, {self.errors} errors, "
            f"{self.retries_503} x 503 retried{batched})",
            f"{'route':<10} {'count':>7} {'mean':>8} {'p50':>8} "
            f"{'p90':>8} {'p99':>8} {'max':>8}  (ms)",
        ]
        for name, timing in sorted(self.routes.items()):
            lines.append(
                f"{name:<10} {timing.count:>7} {timing.mean_ms:>8.2f} "
                f"{timing.p50_ms:>8.2f} {timing.p90_ms:>8.2f} "
                f"{timing.p99_ms:>8.2f} {timing.max_ms:>8.2f}"
            )
        return "\n".join(lines)


class _Client:
    """A keep-alive JSON client bound to one worker thread."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._connection.connect()
            # without TCP_NODELAY, Nagle on this side + delayed ACK on
            # the server turns every small POST into a ~40 ms stall
            self._connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, dict, Dict[str, str]]:
        """One round trip; reconnects once on a dropped keep-alive."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (1, 2):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                TimeoutError,
                OSError,
            ):
                self.close()
                if attempt == 2:
                    raise
        data = json.loads(raw.decode("utf-8")) if raw else {}
        return response.status, data, dict(response.headers.items())


@dataclass
class _Recorder:
    """Thread-safe latency + error accumulation across workers."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    requests: int = 0
    errors: int = 0
    retries_503: int = 0

    def note(
        self, route: str, elapsed: float, status: int, expected: bool = False
    ) -> None:
        with self.lock:
            self.requests += 1
            self.latencies.setdefault(route, []).append(elapsed)
            if status >= 400 and not expected:
                self.errors += 1

    def note_retry(self) -> None:
        with self.lock:
            self.requests += 1
            self.retries_503 += 1


def _timed(
    client: _Client,
    recorder: _Recorder,
    route: str,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    expect: Tuple[int, ...] = (200, 201),
    max_retries_503: int = 50,
    rng: Optional[random.Random] = None,
) -> dict:
    """One request with timing; backs off (jittered) on 503 and retries."""
    if rng is None:
        rng = random.Random()
    for _ in range(max_retries_503 + 1):
        began = time.perf_counter()
        status, data, headers = client.request(method, path, payload)
        elapsed = time.perf_counter() - began
        if status == 503:
            recorder.note_retry()
            time.sleep(_backoff_seconds(headers.get("Retry-After"), rng))
            continue
        recorder.note(route, elapsed, status, expected=status in expect)
        if status not in expect:
            raise LoadgenError(
                f"{method} {path} -> {status}: {data!r} "
                f"(expected one of {expect})"
            )
        return data
    raise LoadgenError(
        f"{method} {path} still 503 after {max_retries_503} retries"
    )


def _split_netloc(url: str) -> Tuple[str, int]:
    pieces = urlsplit(url if "//" in url else f"http://{url}")
    if pieces.hostname is None or pieces.port is None:
        raise LoadgenError(f"need host:port in the url, got {url!r}")
    return pieces.hostname, pieces.port


def discover_topology(url: str, timeout: float = 10.0):
    """Ask a cluster worker for the topology; returns ``(ring, addrs)``.

    ``ring`` is a client-side :class:`~repro.cluster.ring.HashRing`
    rebuilt from the server's shard names and replica count — it routes
    identically to the workers' own rings, so a topology-aware client
    can send each learner's traffic straight to the owning shard and
    skip the proxy hop.  ``addrs`` maps shard name to its direct
    ``(host, port)``.
    """
    from repro.cluster.ring import HashRing

    host, port = _split_netloc(url)
    client = _Client(host, port, timeout)
    try:
        status, topology, _ = client.request("GET", "/cluster/topology")
    finally:
        client.close()
    if status != 200:
        raise LoadgenError(
            f"GET /cluster/topology -> {status}: not a cluster worker? "
            f"({topology!r})"
        )
    ring = HashRing(
        [entry["shard"] for entry in topology["shards"]],
        replicas=int(topology["replicas"]),
    )
    addrs = {
        entry["shard"]: _split_netloc(entry["url"])
        for entry in topology["shards"]
    }
    return ring, addrs


class _ClientPool:
    """One keep-alive client per target shard, owned by one thread.

    In single-server mode the pool holds exactly one client; in
    topology-aware cluster mode it holds one per shard and
    :meth:`for_learner` picks the owner, so per-learner traffic never
    pays the cross-shard proxy hop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float,
        ring=None,
        addrs: Optional[Dict[str, Tuple[str, int]]] = None,
    ) -> None:
        self._ring = ring
        if ring is None:
            self._clients = {None: _Client(host, port, timeout)}
        else:
            self._clients = {
                shard: _Client(shard_host, shard_port, timeout)
                for shard, (shard_host, shard_port) in (addrs or {}).items()
            }

    def for_learner(self, learner_id: str) -> _Client:
        if self._ring is None:
            return self._clients[None]
        return self._clients[self._ring.route(learner_id)]

    def any(self) -> _Client:
        return next(iter(self._clients.values()))

    def close(self) -> None:
        for client in self._clients.values():
            client.close()


def _sample_learner_selections(
    exam: Exam,
    parameters: Dict[str, ItemParameters],
    learner: SimulatedLearner,
    seed: int,
    omit_rate: float,
) -> List[Tuple[str, Optional[str]]]:
    """(item_id, selection) per analyzable item, deterministically.

    Seeding is per-learner (not positional in a shared stream), so any
    worker can run any learner and the cohort's selections stay
    byte-identical run to run regardless of scheduling.
    """
    rng = random.Random(f"{seed}:{learner.learner_id}")
    default = ItemParameters()
    pairs: List[Tuple[str, Optional[str]]] = []
    for item, spec in zip(exam.analyzable_items(), exam.question_specs()):
        selection = sample_selection(
            rng,
            learner,
            parameters.get(item.item_id, default),
            spec.options,
            spec.correct,
            omit_rate=omit_rate,
        )
        pairs.append((item.item_id, selection))
    return pairs


def run_loadgen(
    url: str,
    learners: int = 200,
    questions: int = 20,
    seed: int = 0,
    workers: int = 8,
    omit_rate: float = 0.0,
    exam: Optional[Exam] = None,
    parameters: Optional[Dict[str, ItemParameters]] = None,
    setup: bool = True,
    timeout: float = 30.0,
    batch: int = 0,
    cluster: bool = False,
    population: Optional[Sequence[SimulatedLearner]] = None,
    adaptive: bool = False,
) -> LoadgenReport:
    """Drive a simulated cohort through a running server; measure it.

    ``url`` — the server base URL (e.g. ``http://127.0.0.1:8321``).
    With ``setup=True`` (default) the exam is offered and every learner
    registered + enrolled first (setup traffic is timed under its own
    routes).  ``exam``/``parameters`` default to the classroom scenario
    of :mod:`repro.sim.workloads` at ``questions`` items.

    Every learner's sitting is start → answer (one request per item,
    omitted items skipped) → submit.  With ``batch=K`` the answers go
    up K at a time through ``POST .../answers:batch`` instead (route
    ``answer_batch``), and the final chunk carries ``"submit": true``
    so the grade rides the same request — the whole-sitting variant.
    Work is spread over ``workers`` threads, each with its own
    keep-alive connection; 503 backpressure responses are honoured
    (``Retry-After``-bounded sleep with per-worker jitter, then retry)
    and counted separately rather than treated as failures.

    Sharded tiers: with ``cluster=True`` the generator first fetches
    ``/cluster/topology`` from ``url``, rebuilds the consistent-hash
    ring client-side, and drives every learner's sitting *directly* at
    the shard that owns it — one keep-alive connection per (thread,
    shard) — so no request pays the cross-shard proxy hop.
    ``population`` substitutes an explicit learner subset for the
    default seeded cohort (e.g. only the learners one shard owns, for
    per-shard capacity runs); re-offering an exam a previous run
    already offered is tolerated (409 = already there).

    ``adaptive=True`` drives the CAT loop instead: the *server* picks
    each item (``GET .../next-item``, route ``next_item``), the worker
    posts the learner's pre-sampled selection for whatever item came
    back, and submits when the policy says ``done``.  Selections stay
    deterministic despite the server choosing the order because every
    (learner, item) pair is pre-sampled up front.  The default exam
    becomes :func:`~repro.sim.workloads.classroom_adaptive_exam`;
    ``batch`` is rejected (adaptive sittings take one answer at a time)
    and the server-chosen item order per learner is returned in
    ``report.item_sequences``.
    """
    if batch < 0:
        raise LoadgenError(f"batch must be >= 0, got {batch}")
    if adaptive and batch > 0:
        raise LoadgenError(
            "adaptive sittings take one answer at a time; "
            "batch cannot be combined with adaptive"
        )
    host, port = _split_netloc(url)
    if exam is None:
        exam = classroom_adaptive_exam(questions) if adaptive \
            else classroom_exam(questions)
    if adaptive and exam.adaptive is None:
        raise LoadgenError(
            f"exam {exam.exam_id!r} has no adaptive policy; "
            f"attach one or drop adaptive=True"
        )
    if parameters is None:
        parameters = classroom_parameters(questions)
    if population is None:
        population = make_population(learners, seed=seed)
    else:
        population = list(population)
        learners = len(population)
    ring = addrs = None
    if cluster:
        ring, addrs = discover_topology(url, timeout=timeout)
    recorder = _Recorder()

    if setup:
        pool = _ClientPool(host, port, timeout, ring, addrs)
        setup_rng = random.Random(f"{seed}:backoff:setup")
        try:
            _timed(
                pool.any(),
                recorder,
                "offer",
                "POST",
                "/exams",
                exam_to_record(exam),
                # 409 = a previous run (or another shard driver) already
                # offered it; idempotent setup, not a failure
                expect=(201, 409),
                rng=setup_rng,
            )
            for learner in population:
                client = pool.for_learner(learner.learner_id)
                _timed(
                    client,
                    recorder,
                    "register",
                    "POST",
                    "/learners",
                    {"learner_id": learner.learner_id},
                    expect=(201,),
                    rng=setup_rng,
                )
                _timed(
                    client,
                    recorder,
                    "enroll",
                    "POST",
                    f"/exams/{exam.exam_id}/enrollments",
                    {"learner_id": learner.learner_id},
                    expect=(201,),
                    rng=setup_rng,
                )
        finally:
            pool.close()

    # pre-sample every learner's selections so worker threads only do I/O
    scripts = {
        learner.learner_id: _sample_learner_selections(
            exam, parameters, learner, seed, omit_rate
        )
        for learner in population
    }

    queue: List[SimulatedLearner] = list(population)
    queue_lock = threading.Lock()
    failures: List[BaseException] = []
    sequences: Dict[str, List[str]] = {}

    def worker(index: int) -> None:
        pool = _ClientPool(host, port, timeout, ring, addrs)
        # per-worker jitter stream: seeded (reproducible runs) but
        # distinct per thread, so 503 backoffs never synchronize
        rng = random.Random(f"{seed}:backoff:{index}")
        try:
            while True:
                with queue_lock:
                    if not queue:
                        return
                    learner = queue.pop()
                client = pool.for_learner(learner.learner_id)
                base = f"/exams/{exam.exam_id}/sittings/{learner.learner_id}"
                _timed(
                    client, recorder, "start", "POST", base + "/start",
                    expect=(201,), rng=rng,
                )
                if adaptive:
                    # the server drives: ask what to answer next, post
                    # the pre-sampled selection for whatever came back
                    selections = dict(scripts[learner.learner_id])
                    sequence: List[str] = []
                    for _ in range(len(selections) + 1):
                        status = _timed(
                            client, recorder, "next_item", "GET",
                            base + "/next-item", expect=(200,), rng=rng,
                        )
                        if status["done"]:
                            break
                        item_id = status["item_id"]
                        sequence.append(item_id)
                        _timed(
                            client,
                            recorder,
                            "answer",
                            "POST",
                            base + "/answer",
                            {
                                "item_id": item_id,
                                "response": selections[item_id],
                            },
                            rng=rng,
                        )
                    else:  # pragma: no cover - a server-side policy bug
                        raise LoadgenError(
                            f"adaptive sitting for "
                            f"{learner.learner_id!r} never reported "
                            f"done after {len(selections)} answers"
                        )
                    _timed(
                        client, recorder, "submit", "POST",
                        base + "/submit", rng=rng,
                    )
                    with queue_lock:
                        sequences[learner.learner_id] = sequence
                    continue
                pairs = [
                    (item_id, selection)
                    for item_id, selection in scripts[learner.learner_id]
                    if selection is not None  # omitted: no request at all
                ]
                if batch > 0:
                    for begin in range(0, len(pairs), batch):
                        chunk = pairs[begin: begin + batch]
                        payload = {
                            "answers": [
                                {"item_id": item_id, "response": selection}
                                for item_id, selection in chunk
                            ]
                        }
                        if begin + batch >= len(pairs):
                            payload["submit"] = True
                        _timed(
                            client,
                            recorder,
                            "answer_batch",
                            "POST",
                            base + "/answers:batch",
                            payload,
                            rng=rng,
                        )
                    if not pairs:
                        # an all-omitted sitting still has to close
                        _timed(
                            client, recorder, "submit", "POST",
                            base + "/submit", rng=rng,
                        )
                else:
                    for item_id, selection in pairs:
                        _timed(
                            client,
                            recorder,
                            "answer",
                            "POST",
                            base + "/answer",
                            {"item_id": item_id, "response": selection},
                            rng=rng,
                        )
                    _timed(
                        client, recorder, "submit", "POST", base + "/submit",
                        rng=rng,
                    )
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with queue_lock:
                failures.append(exc)
        finally:
            pool.close()

    began = time.perf_counter()
    threads = [
        threading.Thread(
            target=worker, args=(index,),
            name=f"loadgen-{index}", daemon=True,
        )
        for index in range(max(1, workers))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - began
    if failures:
        raise failures[0]

    if adaptive:
        # only administered items carry a selection; the rest are
        # missing (None), matching the calibration-matrix semantics
        order = [item.item_id for item in exam.analyzable_items()]
        responses = []
        for learner in population:
            administered = set(sequences.get(learner.learner_id, ()))
            selections = dict(scripts[learner.learner_id])
            responses.append(
                ExamineeResponses.of(
                    learner.learner_id,
                    [
                        selections[item_id]
                        if item_id in administered
                        else None
                        for item_id in order
                    ],
                )
            )
        answers_posted = sum(len(seq) for seq in sequences.values())
    else:
        responses = [
            ExamineeResponses.of(
                learner.learner_id,
                [selection for _, selection in scripts[learner.learner_id]],
            )
            for learner in population
        ]
        answers_posted = sum(
            1
            for script in scripts.values()
            for _, selection in script
            if selection is not None
        )
    return LoadgenReport(
        learners=learners,
        questions=len(exam.analyzable_items()),
        requests=recorder.requests,
        errors=recorder.errors,
        retries_503=recorder.retries_503,
        batch=batch,
        adaptive=adaptive,
        answers_posted=answers_posted,
        duration_seconds=duration,
        routes={
            name: RouteTimings.of(values)
            for name, values in recorder.latencies.items()
        },
        responses=responses,
        item_sequences=sequences,
    )
